//! Delta propagation through expression DAGs: [`DeltaPlan`].
//!
//! [`crate::expr::ExprPlan`] re-executes a whole pipeline when any
//! input changes. For dynamic-graph workloads the change is a handful
//! of rows, and every node kind admits a *dirty-set transfer
//! function* mapping input deltas to output deltas:
//!
//! | node | rows out | cols out |
//! |------|----------|----------|
//! | `Multiply` | `rows(A) ∪ consumers of rows(B)` (via the plan's [`crate::delta::ConsumerIndex`]) | changed entries' columns |
//! | `Transpose` | `cols(child)` | `rows(child)` |
//! | `Add` / `Hadamard` | union of operand rows | union of operand cols |
//! | `ScaleRows` / `ScaleCols` / `Map` | pass-through | pass-through |
//! | `NormalizeCols` | `rows(child) ∪ rows intersecting cols(child)` | `cols(child)` |
//!
//! A [`DeltaPlan`] holds every needed node's value (and per-`Multiply`
//! [`SpgemmPlan`]s); [`DeltaPlan::update`] applies a [`RowPatch`] to
//! one input slot and walks the DAG once, recomputing **only** each
//! node's dirty rows and splicing them into the cached value — so a
//! k-row edit costs `O(k · fanout)` recomputed rows instead of the
//! whole pipeline. Every spliced value is byte-for-byte what
//! [`DeltaPlan::bind`] would produce from scratch on the patched
//! inputs; the `tests/` differential oracle pins exactly that.

use crate::delta::{splice_rows, DirtyRows, RowPatch};
use crate::expr::{ExprGraph, ExprOp, NodeId};
use crate::{Algorithm, OutputOrder, SpgemmPlan};
use spgemm_obs as obs;
use spgemm_par::Pool;
use spgemm_sparse::{ops, ColIdx, Csr, PlusTimes, SparseError};

/// The dirty footprint of one node's value: which rows changed, and
/// which columns hold at least one changed entry. Both are sound
/// over-approximations (supersets of the truly-changed sets).
#[derive(Clone, Debug)]
pub struct NodeDelta {
    /// Rows of the node's value that may differ from before the edit.
    pub rows: DirtyRows,
    /// Columns holding at least one changed entry.
    pub cols: DirtyRows,
}

/// What one [`DeltaPlan::update`] recomputed, against the size of the
/// pipeline — the "k-row edit touches O(k·fanout) rows" claim in
/// numbers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeltaReport {
    /// Rows recomputed across all non-input nodes this update.
    pub rows_recomputed: usize,
    /// Total rows across all non-input nodes (the full-recompute
    /// cost this update avoided paying).
    pub rows_total: usize,
}

impl DeltaReport {
    /// `rows_recomputed / rows_total` (0 for an empty pipeline).
    pub fn fraction(&self) -> f64 {
        if self.rows_total == 0 {
            0.0
        } else {
            self.rows_recomputed as f64 / self.rows_total as f64
        }
    }
}

/// The columns in `rows` where `old` and `new` differ (structurally
/// or in value bits). Both matrices must be sorted and equal-shaped;
/// rows outside `rows` are assumed identical (not inspected).
pub fn touched_cols(old: &Csr<f64>, new: &Csr<f64>, rows: &DirtyRows) -> DirtyRows {
    debug_assert_eq!(old.shape(), new.shape());
    debug_assert!(old.is_sorted() && new.is_sorted());
    let mut cols = DirtyRows::new(old.ncols());
    for i in rows.iter() {
        let (oc, ov) = (old.row_cols(i), old.row_vals(i));
        let (nc, nv) = (new.row_cols(i), new.row_vals(i));
        let (mut p, mut q) = (0usize, 0usize);
        while p < oc.len() && q < nc.len() {
            use std::cmp::Ordering::*;
            match oc[p].cmp(&nc[q]) {
                Less => {
                    cols.insert(oc[p] as usize);
                    p += 1;
                }
                Greater => {
                    cols.insert(nc[q] as usize);
                    q += 1;
                }
                Equal => {
                    if ov[p].to_bits() != nv[q].to_bits() {
                        cols.insert(oc[p] as usize);
                    }
                    p += 1;
                    q += 1;
                }
            }
        }
        for &c in &oc[p..] {
            cols.insert(c as usize);
        }
        for &c in &nc[q..] {
            cols.insert(c as usize);
        }
    }
    cols
}

/// An incrementally-updatable evaluation of one expression DAG.
///
/// Unlike the fused [`crate::expr::ExprPlan`], a `DeltaPlan`
/// materializes every needed node's value — that is the state delta
/// propagation splices into. Bind once with [`DeltaPlan::bind`], then
/// feed row patches to input slots with [`DeltaPlan::update`]; the
/// root (and every intermediate) is kept current at the cost of the
/// dirty rows only.
///
/// ```
/// use spgemm::delta::DeltaPlan;
/// use spgemm::expr::{ElemMap, ExprGraph};
/// use spgemm::Algorithm;
/// use spgemm_sparse::{Csr, RowPatch};
///
/// let mut g = ExprGraph::new();
/// let a = g.input();
/// let sq = g.multiply(a, a);
/// let root = g.normalize_cols(sq);
///
/// let m = Csr::<f64>::identity(64);
/// let mut plan = DeltaPlan::bind(&g, root, Algorithm::Hash, &[&m], &[])?;
///
/// let mut patch = RowPatch::new();
/// patch.insert(3, 9, 0.5);
/// let report = plan.update(0, &patch)?;
/// assert!(report.rows_recomputed < report.rows_total / 2);
/// assert!(plan.root().get(3, 9).is_some());
/// # Ok::<(), spgemm_sparse::SparseError>(())
/// ```
pub struct DeltaPlan {
    graph: ExprGraph,
    root: NodeId,
    algo: Algorithm,
    needed: Vec<bool>,
    inputs: Vec<Csr<f64>>,
    vecs: Vec<Vec<f64>>,
    outs: Vec<Option<Csr<f64>>>,
    plans: Vec<Option<SpgemmPlan<PlusTimes<f64>>>>,
}

impl DeltaPlan {
    /// Bind `graph`'s `root` against concrete inputs on the global
    /// pool, fully evaluating every needed node.
    pub fn bind(
        graph: &ExprGraph,
        root: NodeId,
        algo: Algorithm,
        inputs: &[&Csr<f64>],
        vecs: &[&[f64]],
    ) -> Result<Self, SparseError> {
        Self::bind_in(graph, root, algo, inputs, vecs, spgemm_par::global_pool())
    }

    /// [`DeltaPlan::bind`] on an explicit pool.
    pub fn bind_in(
        graph: &ExprGraph,
        root: NodeId,
        algo: Algorithm,
        inputs: &[&Csr<f64>],
        vecs: &[&[f64]],
        pool: &Pool,
    ) -> Result<Self, SparseError> {
        if inputs.len() != graph.num_inputs() || vecs.len() != graph.num_vec_inputs() {
            return Err(SparseError::PlanMismatch {
                detail: format!(
                    "DeltaPlan::bind: got {} inputs / {} vectors, graph declares {} / {}",
                    inputs.len(),
                    vecs.len(),
                    graph.num_inputs(),
                    graph.num_vec_inputs()
                ),
            });
        }
        if inputs.iter().any(|m| !m.is_sorted()) {
            return Err(SparseError::Unsorted {
                op: "DeltaPlan::bind",
            });
        }
        let mut plan = DeltaPlan {
            graph: graph.clone(),
            root,
            algo,
            needed: graph.reachable(root),
            inputs: inputs.iter().map(|m| (*m).clone()).collect(),
            vecs: vecs.iter().map(|v| v.to_vec()).collect(),
            outs: vec![None; graph.len()],
            plans: (0..graph.len()).map(|_| None).collect(),
        };
        for idx in 0..plan.graph.len() {
            if !plan.needed[idx] {
                continue;
            }
            let value = plan.eval_node(idx, pool)?;
            plan.outs[idx] = Some(value);
        }
        Ok(plan)
    }

    /// Fully evaluate node `idx` (operands already evaluated).
    fn eval_node(&mut self, idx: usize, pool: &Pool) -> Result<Csr<f64>, SparseError> {
        fn out(outs: &[Option<Csr<f64>>], id: NodeId) -> &Csr<f64> {
            outs[id.index()].as_ref().expect("topological order")
        }
        Ok(match self.graph.nodes()[idx] {
            ExprOp::Input { slot } => self.inputs[slot].clone(),
            ExprOp::Multiply { a, b } => {
                let (av, bv) = (out(&self.outs, a), out(&self.outs, b));
                let plan = SpgemmPlan::<PlusTimes<f64>>::new_in(
                    av,
                    bv,
                    self.algo,
                    OutputOrder::Sorted,
                    pool,
                )?;
                let c = plan.execute_in(av, bv, pool)?;
                self.plans[idx] = Some(plan);
                c
            }
            ExprOp::Transpose { a } => ops::transpose_in(out(&self.outs, a), pool),
            ExprOp::Add { a, b } => ops::add(out(&self.outs, a), out(&self.outs, b))?,
            ExprOp::Hadamard { a, b } => ops::hadamard(out(&self.outs, a), out(&self.outs, b))?,
            ExprOp::ScaleRows { a, v } => {
                ops::scale_rows(out(&self.outs, a), &self.vecs[v.index()])?
            }
            ExprOp::ScaleCols { a, v } => {
                ops::scale_cols(out(&self.outs, a), &self.vecs[v.index()])?
            }
            ExprOp::Map { a, f } => out(&self.outs, a).map(|v| f.apply(v)),
            ExprOp::NormalizeCols { a } => ops::normalize_columns(out(&self.outs, a)),
        })
    }

    /// The root node's current value.
    pub fn root(&self) -> &Csr<f64> {
        self.value(self.root).expect("root is always needed")
    }

    /// A needed node's current value (`None` for unneeded nodes).
    pub fn value(&self, node: NodeId) -> Option<&Csr<f64>> {
        self.outs[node.index()].as_ref()
    }

    /// The current value of input slot `slot`.
    pub fn input(&self, slot: usize) -> &Csr<f64> {
        &self.inputs[slot]
    }

    /// Apply `patch` to input slot `slot` and propagate the delta
    /// through the DAG on the global pool, recomputing only dirty
    /// rows of each node. Every node's value afterwards is
    /// byte-for-byte what a fresh [`DeltaPlan::bind`] on the patched
    /// inputs would hold.
    pub fn update(
        &mut self,
        slot: usize,
        patch: &RowPatch<f64>,
    ) -> Result<DeltaReport, SparseError> {
        self.update_in(slot, patch, spgemm_par::global_pool())
    }

    /// [`DeltaPlan::update`] on an explicit pool.
    pub fn update_in(
        &mut self,
        slot: usize,
        patch: &RowPatch<f64>,
        pool: &Pool,
    ) -> Result<DeltaReport, SparseError> {
        let _g = obs::span!("delta", "delta.expr_update");
        if slot >= self.inputs.len() {
            return Err(SparseError::PlanMismatch {
                detail: format!(
                    "DeltaPlan::update: slot {slot} out of {} inputs",
                    self.inputs.len()
                ),
            });
        }
        let (new_input, dirty) = self.inputs[slot].apply_patch(patch)?;
        let base_cols = touched_cols(&self.inputs[slot], &new_input, &dirty);
        self.inputs[slot] = new_input;

        let mut deltas: Vec<Option<NodeDelta>> = vec![None; self.graph.len()];
        let mut report = DeltaReport::default();
        for idx in 0..self.graph.len() {
            if !self.needed[idx] {
                continue;
            }
            let op = self.graph.nodes()[idx];
            if !matches!(op, ExprOp::Input { .. }) {
                report.rows_total += self.outs[idx].as_ref().expect("bound").nrows();
            }
            let delta = self.propagate_node(idx, op, slot, &dirty, &base_cols, &deltas, pool)?;
            if let Some(d) = &delta {
                if !matches!(op, ExprOp::Input { .. }) {
                    report.rows_recomputed += d.rows.count();
                }
            }
            deltas[idx] = delta;
        }
        if obs::enabled() {
            static ROWS: obs::CounterSite =
                obs::CounterSite::new("delta", "delta.expr_rows_recomputed");
            ROWS.add(report.rows_recomputed as u64);
        }
        Ok(report)
    }

    /// Recompute node `idx`'s dirty rows per its transfer function and
    /// return the node's output delta (`None` if untouched).
    #[allow(clippy::too_many_arguments)]
    fn propagate_node(
        &mut self,
        idx: usize,
        op: ExprOp,
        edited_slot: usize,
        input_rows: &DirtyRows,
        input_cols: &DirtyRows,
        deltas: &[Option<NodeDelta>],
        pool: &Pool,
    ) -> Result<Option<NodeDelta>, SparseError> {
        let d = |id: NodeId| deltas[id.index()].as_ref();
        match op {
            ExprOp::Input { slot } => {
                if slot != edited_slot {
                    return Ok(None);
                }
                self.outs[idx] = Some(self.inputs[slot].clone());
                Ok(Some(NodeDelta {
                    rows: input_rows.clone(),
                    cols: input_cols.clone(),
                }))
            }
            ExprOp::Multiply { a, b } => {
                let (da, db) = (d(a), d(b));
                if da.is_none() && db.is_none() {
                    return Ok(None);
                }
                let old = self.outs[idx].take().expect("bound");
                let (out_rows, c) = {
                    let av = self.outs[a.index()].as_ref().expect("topological order");
                    let bv = self.outs[b.index()].as_ref().expect("topological order");
                    let dirty_a = da
                        .map(|x| x.rows.clone())
                        .unwrap_or_else(|| DirtyRows::new(av.nrows()));
                    let dirty_b = db
                        .map(|x| x.rows.clone())
                        .unwrap_or_else(|| DirtyRows::new(bv.nrows()));
                    let plan = self.plans[idx].as_mut().expect("bound Multiply node");
                    let out_rows = plan.rebind_rows_in(av, bv, &dirty_a, &dirty_b, pool)?;
                    let mut c = old.clone();
                    plan.execute_rows_in(av, bv, &out_rows, &mut c, pool)?;
                    (out_rows, c)
                };
                let cols = touched_cols(&old, &c, &out_rows);
                self.outs[idx] = Some(c);
                Ok(Some(NodeDelta {
                    rows: out_rows,
                    cols,
                }))
            }
            ExprOp::Transpose { a } => {
                let Some(da) = d(a) else { return Ok(None) };
                let av = self.outs[a.index()].as_ref().expect("topological order");
                // A transpose relocates every entry; recompute in full
                // (and report it honestly) — but the *delta* it hands
                // downstream is the exact rows↔cols swap.
                let delta = NodeDelta {
                    rows: da.cols.clone(),
                    cols: da.rows.clone(),
                };
                self.outs[idx] = Some(ops::transpose_in(av, pool));
                Ok(Some(delta))
            }
            ExprOp::Add { a, b } => self.recompute_merge(idx, a, b, deltas, false),
            ExprOp::Hadamard { a, b } => self.recompute_merge(idx, a, b, deltas, true),
            ExprOp::ScaleRows { a, v } => {
                let Some(da) = d(a) else { return Ok(None) };
                let delta = NodeDelta {
                    rows: da.rows.clone(),
                    cols: da.cols.clone(),
                };
                let factors = &self.vecs[v.index()];
                let av = self.outs[a.index()].as_ref().expect("topological order");
                let rows: Vec<_> = delta
                    .rows
                    .iter()
                    .map(|i| {
                        let f = factors[i];
                        let cols = av.row_cols(i).to_vec();
                        let vals = av.row_vals(i).iter().map(|&x| x * f).collect();
                        (i, cols, vals)
                    })
                    .collect();
                self.splice(idx, &rows);
                Ok(Some(delta))
            }
            ExprOp::ScaleCols { a, v } => {
                let Some(da) = d(a) else { return Ok(None) };
                let delta = NodeDelta {
                    rows: da.rows.clone(),
                    cols: da.cols.clone(),
                };
                let factors = &self.vecs[v.index()];
                let av = self.outs[a.index()].as_ref().expect("topological order");
                let rows: Vec<_> = delta
                    .rows
                    .iter()
                    .map(|i| {
                        let cols = av.row_cols(i).to_vec();
                        let vals = av
                            .row_cols(i)
                            .iter()
                            .zip(av.row_vals(i))
                            .map(|(&c, &x)| x * factors[c as usize])
                            .collect();
                        (i, cols, vals)
                    })
                    .collect();
                self.splice(idx, &rows);
                Ok(Some(delta))
            }
            ExprOp::Map { a, f } => {
                let Some(da) = d(a) else { return Ok(None) };
                let delta = NodeDelta {
                    rows: da.rows.clone(),
                    cols: da.cols.clone(),
                };
                let av = self.outs[a.index()].as_ref().expect("topological order");
                let rows: Vec<_> = delta
                    .rows
                    .iter()
                    .map(|i| {
                        let cols = av.row_cols(i).to_vec();
                        let vals = av.row_vals(i).iter().map(|&x| f.apply(x)).collect();
                        (i, cols, vals)
                    })
                    .collect();
                self.splice(idx, &rows);
                Ok(Some(delta))
            }
            ExprOp::NormalizeCols { a } => {
                let Some(da) = d(a) else { return Ok(None) };
                let av = self.outs[a.index()].as_ref().expect("topological order");
                // A dirty column's sum changes, so every row holding
                // that column renormalizes — not just the edited rows.
                let mut rows = da.rows.clone();
                for i in 0..av.nrows() {
                    if rows.contains(i) {
                        continue;
                    }
                    if av.row_cols(i).iter().any(|&c| da.cols.contains(c as usize)) {
                        rows.insert(i);
                    }
                }
                // Column sums are recomputed from scratch in storage
                // order — clean columns sum identical bytes, dirty
                // ones get their fresh divisor — so every spliced
                // value matches `ops::normalize_columns` bit-for-bit.
                let mut colsum = vec![0.0f64; av.ncols()];
                for i in 0..av.nrows() {
                    for (&c, &x) in av.row_cols(i).iter().zip(av.row_vals(i)) {
                        colsum[c as usize] += x;
                    }
                }
                let spliced: Vec<_> = rows
                    .iter()
                    .map(|i| {
                        let cols = av.row_cols(i).to_vec();
                        let vals = av
                            .row_cols(i)
                            .iter()
                            .zip(av.row_vals(i))
                            .map(|(&c, &x)| {
                                let s = colsum[c as usize];
                                if s != 0.0 {
                                    x / s
                                } else {
                                    x
                                }
                            })
                            .collect();
                        (i, cols, vals)
                    })
                    .collect();
                self.splice(idx, &spliced);
                Ok(Some(NodeDelta {
                    rows,
                    cols: da.cols.clone(),
                }))
            }
        }
    }

    /// Recompute the dirty rows of an `Add` (`intersect == false`) or
    /// `Hadamard` (`intersect == true`) node with the exact per-row
    /// merge loop of [`ops::add`] / [`ops::hadamard`].
    fn recompute_merge(
        &mut self,
        idx: usize,
        a: NodeId,
        b: NodeId,
        deltas: &[Option<NodeDelta>],
        intersect: bool,
    ) -> Result<Option<NodeDelta>, SparseError> {
        let (da, db) = (deltas[a.index()].as_ref(), deltas[b.index()].as_ref());
        if da.is_none() && db.is_none() {
            return Ok(None);
        }
        let av = self.outs[a.index()].as_ref().expect("topological order");
        let bv = self.outs[b.index()].as_ref().expect("topological order");
        let mut rows = da
            .map(|x| x.rows.clone())
            .unwrap_or_else(|| DirtyRows::new(av.nrows()));
        if let Some(db) = db {
            rows.union_with(&db.rows);
        }
        let mut cols = da
            .map(|x| x.cols.clone())
            .unwrap_or_else(|| DirtyRows::new(av.ncols()));
        if let Some(db) = db {
            cols.union_with(&db.cols);
        }
        let spliced: Vec<_> = rows
            .iter()
            .map(|i| {
                let (ac, avals) = (av.row_cols(i), av.row_vals(i));
                let (bc, bvals) = (bv.row_cols(i), bv.row_vals(i));
                let mut c: Vec<ColIdx> = Vec::new();
                let mut v: Vec<f64> = Vec::new();
                let (mut p, mut q) = (0usize, 0usize);
                while p < ac.len() && q < bc.len() {
                    use std::cmp::Ordering::*;
                    match ac[p].cmp(&bc[q]) {
                        Less => {
                            if !intersect {
                                c.push(ac[p]);
                                v.push(avals[p]);
                            }
                            p += 1;
                        }
                        Greater => {
                            if !intersect {
                                c.push(bc[q]);
                                v.push(bvals[q]);
                            }
                            q += 1;
                        }
                        Equal => {
                            c.push(ac[p]);
                            v.push(if intersect {
                                avals[p] * bvals[q]
                            } else {
                                avals[p] + bvals[q]
                            });
                            p += 1;
                            q += 1;
                        }
                    }
                }
                if !intersect {
                    c.extend_from_slice(&ac[p..]);
                    v.extend_from_slice(&avals[p..]);
                    c.extend_from_slice(&bc[q..]);
                    v.extend_from_slice(&bvals[q..]);
                }
                (i, c, v)
            })
            .collect();
        self.splice(idx, &spliced);
        Ok(Some(NodeDelta { rows, cols }))
    }

    /// Replace node `idx`'s cached value with the given rows spliced in.
    fn splice(&mut self, idx: usize, rows: &[(usize, Vec<ColIdx>, Vec<f64>)]) {
        let old = self.outs[idx].take().expect("bound node");
        self.outs[idx] = Some(splice_rows(&old, rows));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::ElemMap;

    fn ring(n: usize) -> Csr<f64> {
        let triples: Vec<_> = (0..n)
            .map(|i| (i, ((i + 1) % n) as ColIdx, 1.0 + i as f64))
            .collect();
        Csr::from_triplets(n, n, &triples).unwrap()
    }

    #[test]
    fn touched_cols_flags_exact_differences() {
        let a = ring(6);
        let mut p = RowPatch::new();
        p.insert(2, 0, 7.0).update(2, 3, 9.0).delete(4, 5);
        let (b, dirty) = a.apply_patch(&p).unwrap();
        let cols = touched_cols(&a, &b, &dirty);
        assert_eq!(cols.iter().collect::<Vec<_>>(), vec![0, 3, 5]);
    }

    #[test]
    fn update_matches_fresh_bind_on_a_pipeline() {
        let mut g = ExprGraph::new();
        let a = g.input();
        let sq = g.multiply(a, a);
        let inflated = g.map(sq, ElemMap::AbsPow(2.0));
        let root = g.normalize_cols(inflated);

        let m = ring(32);
        let mut plan = DeltaPlan::bind(&g, root, Algorithm::Hash, &[&m], &[]).unwrap();

        let mut patch = RowPatch::new();
        patch.insert(5, 20, 0.25).delete(9, 10);
        let report = plan.update(0, &patch).unwrap();
        assert!(report.rows_recomputed < report.rows_total);

        let fresh =
            DeltaPlan::bind(&g, root, Algorithm::Hash, &[&plan.input(0).clone()], &[]).unwrap();
        assert_eq!(plan.root(), fresh.root());
    }

    #[test]
    fn untouched_branches_propagate_no_delta() {
        // root = (A·A) + B; editing B must not recompute the product.
        let mut g = ExprGraph::new();
        let a = g.input();
        let b = g.input();
        let sq = g.multiply(a, a);
        let root = g.add(sq, b);

        let ma = ring(16);
        let mb = Csr::<f64>::identity(16);
        let mut plan = DeltaPlan::bind(&g, root, Algorithm::Hash, &[&ma, &mb], &[]).unwrap();
        let mut patch = RowPatch::new();
        patch.insert(3, 3, 5.0);
        let report = plan.update(1, &patch).unwrap();
        // one row of Add recomputed; the 16-row Multiply untouched
        assert_eq!(report.rows_recomputed, 1);
        assert_eq!(report.rows_total, 32);
    }
}
