//! Algorithm and output-order selection.

/// The SpGEMM algorithm to run; see the crate-level table for each
/// entry's paper counterpart and contracts.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Two-phase hash-table SpGEMM (§4.2.1) — the paper's workhorse.
    Hash,
    /// Hash SpGEMM with SIMD-vectorized probing (§4.2.2).
    HashVec,
    /// One-phase heap SpGEMM (§4.2.3); requires sorted inputs and
    /// always emits sorted output.
    Heap,
    /// Dense sparse-accumulator SpGEMM (Gustavson/Gilbert); stands in
    /// for MKL in unsorted comparisons.
    Spa,
    /// Iterative sorted-row-merging SpGEMM (ViennaCL-style); stands in
    /// for MKL in sorted comparisons. Requires sorted inputs.
    Merge,
    /// One-phase hash SpGEMM without a symbolic pass, always unsorted;
    /// stands in for MKL-inspector.
    Inspector,
    /// Chained-hash-map SpGEMM after KokkosKernels' `kkmem`.
    KkHash,
    /// The IKJ baseline of Sulatycke & Ghose — `O(n² + flop)`; for
    /// small matrices and the background comparison only.
    Ikj,
    /// Row-class specialized kernels ([`crate::kgen`]): rows are
    /// bucketed by flop count at plan-bind time (tiny/short/medium/
    /// dense) and the numeric phase dispatches each bucket to a
    /// specialized accumulator — a SIMD insertion array for tiny and
    /// short rows, the hash table for medium rows, and a dense SPA for
    /// heavy rows — over plan-private u16-compressed column indices
    /// when the dimensions fit. Byte-for-byte identical output to
    /// [`Algorithm::Hash`].
    RowClass,
    /// Sequential `BTreeMap` oracle (tests, tiny inputs).
    Reference,
    /// Pick from the input structure: a tuned per-machine selector if
    /// one is installed ([`crate::recipe::set_auto_hook`], see the
    /// `spgemm-tune` crate), otherwise the paper's static Table-4
    /// recipe via [`crate::recipe`].
    Auto,
}

impl Algorithm {
    /// Every concrete algorithm (everything but `Auto`), in the order
    /// the evaluation harness reports them.
    pub const ALL: [Algorithm; 10] = [
        Algorithm::Hash,
        Algorithm::HashVec,
        Algorithm::Heap,
        Algorithm::Spa,
        Algorithm::Merge,
        Algorithm::Inspector,
        Algorithm::KkHash,
        Algorithm::Ikj,
        Algorithm::RowClass,
        Algorithm::Reference,
    ];

    /// Short display name used in benchmark output.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Hash => "Hash",
            Algorithm::HashVec => "HashVec",
            Algorithm::Heap => "Heap",
            Algorithm::Spa => "SPA",
            Algorithm::Merge => "Merge",
            Algorithm::Inspector => "Inspector",
            Algorithm::KkHash => "KkHash",
            Algorithm::Ikj => "IKJ",
            Algorithm::RowClass => "RowClass",
            Algorithm::Reference => "Reference",
            Algorithm::Auto => "Auto",
        }
    }

    /// Whether the algorithm needs both inputs sorted by column.
    pub fn requires_sorted_inputs(self) -> bool {
        matches!(self, Algorithm::Heap | Algorithm::Merge)
    }

    /// Whether the algorithm's kernel produces sorted rows natively
    /// when asked. Inspector does not: its single pass always emits
    /// rows in accumulator order, which is why Table 4a only
    /// recommends it for unsorted outputs. An explicit
    /// `Inspector`+`Sorted` request is still honoured by
    /// `multiply_in` via a post-sort, but selectors (static recipe,
    /// tuned profile) never pick it for sorted output — the extra
    /// sort forfeits exactly the work its one-phase design skips.
    /// RowClass honours sorted output because *every* class kernel
    /// does (insertion array, hash table, and SPA all emit ascending
    /// rows on request) — if a future class kernel cannot, this must
    /// become `false` for RowClass too.
    pub fn honours_sorted_output(self) -> bool {
        !matches!(self, Algorithm::Inspector)
    }

    /// Whether the algorithm can honour `OutputOrder::Unsorted` with a
    /// genuine sort-skip (the §5.4.4 optimization). Heap/Merge/
    /// Reference produce sorted output for free; Inspector is always
    /// unsorted.
    pub fn supports_sort_skip(self) -> bool {
        matches!(
            self,
            Algorithm::Hash
                | Algorithm::HashVec
                | Algorithm::Spa
                | Algorithm::KkHash
                | Algorithm::Ikj
                | Algorithm::RowClass
                | Algorithm::Inspector
        )
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Whether the output rows must be sorted by column index.
///
/// The paper's headline §5.4.4 finding is that skipping the per-row
/// output sort is worth a harmonic-mean 1.58–1.68× across SuiteSparse;
/// kernels that can, honour `Unsorted` by emitting rows in accumulator
/// order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OutputOrder {
    /// Rows ascending in column index (required by consumers that
    /// merge or binary-search rows).
    Sorted,
    /// Rows in whatever order the accumulator produces.
    Unsorted,
}

impl OutputOrder {
    /// `true` for [`OutputOrder::Sorted`].
    pub fn is_sorted(self) -> bool {
        matches!(self, OutputOrder::Sorted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_unique() {
        let mut names: Vec<&str> = Algorithm::ALL.iter().map(|a| a.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Algorithm::ALL.len());
    }

    #[test]
    fn contracts() {
        assert!(Algorithm::Heap.requires_sorted_inputs());
        assert!(Algorithm::Merge.requires_sorted_inputs());
        assert!(!Algorithm::Hash.requires_sorted_inputs());
        assert!(!Algorithm::Inspector.honours_sorted_output());
        assert!(Algorithm::Hash.honours_sorted_output());
        assert!(Algorithm::Heap.honours_sorted_output());
        assert!(Algorithm::Hash.supports_sort_skip());
        assert!(!Algorithm::Heap.supports_sort_skip());
        assert!(!Algorithm::RowClass.requires_sorted_inputs());
        assert!(Algorithm::RowClass.honours_sorted_output());
        assert!(Algorithm::RowClass.supports_sort_skip());
        assert!(OutputOrder::Sorted.is_sorted());
        assert!(!OutputOrder::Unsorted.is_sorted());
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(format!("{}", Algorithm::HashVec), "HashVec");
    }
}
