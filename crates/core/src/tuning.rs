//! Scheduling / memory-management variants of Heap SpGEMM, for the
//! Figure 9 experiment ("Advantage of Performance Optimization on
//! KNL for SpGEMM", §5.3.1).
//!
//! The paper compares five configurations of the same one-phase heap
//! kernel:
//!
//! * `static` / `dynamic` / `guided` — plain OpenMP row loops;
//! * `balanced single` — the §4.1 flop-balanced partition with one
//!   master-allocated staging buffer ("single" memory scheme, whose
//!   deallocation cost §3.2 blames for poor scaling);
//! * `balanced parallel` — flop-balanced partition with thread-private
//!   staging allocated inside the region (the production
//!   configuration, [`crate::algos::heap::multiply`]).
//!
//! These variants exist for measurement; library users want
//! [`crate::multiply_in`].

use crate::algos::heap::HeapKernel;
use crate::exec::{self, StagedRowKernel};
use spgemm_par::{scan, unsync::SharedMutSlice, Pool, Schedule};
use spgemm_sparse::{ColIdx, Csr, Semiring};

/// Row-scheduling policy for the tuned heap multiply.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RowSchedule {
    /// Equal-rows contiguous blocks (OpenMP `schedule(static)`).
    Static,
    /// OpenMP `schedule(dynamic, 1)`-style row claiming.
    Dynamic,
    /// OpenMP `schedule(guided)`-style row claiming.
    Guided,
    /// The paper's flop-balanced contiguous partition (§4.1).
    FlopBalanced,
}

impl RowSchedule {
    /// Display name matching the Figure 9 legend.
    pub fn name(self) -> &'static str {
        match self {
            RowSchedule::Static => "static",
            RowSchedule::Dynamic => "dynamic",
            RowSchedule::Guided => "guided",
            RowSchedule::FlopBalanced => "balanced",
        }
    }
}

/// Temporary-memory scheme for the staged output.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemScheme {
    /// One master-allocated staging buffer sized by the total flop
    /// bound; freed on the master after the copy (§3.2 "single").
    Single,
    /// Thread-private staging allocated inside the region ("parallel").
    Parallel,
}

impl MemScheme {
    /// Display name matching the Figure 9 legend.
    pub fn name(self) -> &'static str {
        match self {
            MemScheme::Single => "single",
            MemScheme::Parallel => "parallel",
        }
    }
}

/// Heap SpGEMM under an explicit scheduling and memory configuration.
///
/// `Dynamic`/`Guided` schedules imply per-worker staging (`Parallel`):
/// their row assignment is not contiguous, so a single pre-sliced
/// buffer cannot be handed out up front — the same reason the paper's
/// "single" series only appears with balanced scheduling.
pub fn heap_multiply_tuned<S: Semiring>(
    a: &Csr<S::Elem>,
    b: &Csr<S::Elem>,
    pool: &Pool,
    sched: RowSchedule,
    mem: MemScheme,
) -> Csr<S::Elem> {
    assert!(
        a.is_sorted() && b.is_sorted(),
        "heap requires sorted inputs"
    );
    match sched {
        RowSchedule::Static | RowSchedule::FlopBalanced => {
            contiguous_heap::<S>(a, b, pool, sched, mem)
        }
        RowSchedule::Dynamic => claimed_heap::<S>(a, b, pool, Schedule::Dynamic { chunk: 1 }),
        RowSchedule::Guided => claimed_heap::<S>(a, b, pool, Schedule::Guided { min_chunk: 1 }),
    }
}

/// Contiguous-blocks path: Static (equal rows) or FlopBalanced
/// offsets; staging either thread-private or one master buffer.
fn contiguous_heap<S: Semiring>(
    a: &Csr<S::Elem>,
    b: &Csr<S::Elem>,
    pool: &Pool,
    sched: RowSchedule,
    mem: MemScheme,
) -> Csr<S::Elem> {
    let n = a.nrows();
    let nt = pool.nthreads();
    let stats = exec::plan(a, b, pool);
    let offsets: Vec<usize> = match sched {
        RowSchedule::FlopBalanced => stats.offsets.clone(),
        _ => (0..=nt).map(|t| t * n / nt).collect(),
    };
    // flop prefix over rows for staging bounds
    let mut flop_prefix = vec![0u64; n + 1];
    for i in 0..n {
        flop_prefix[i + 1] = flop_prefix[i] + stats.row_flops[i];
    }

    let mut counts64 = vec![0u64; n + 1];
    // staging for Parallel: per-worker vectors; for Single: one buffer
    type Staged<E> = Vec<parking_lot::Mutex<(Vec<ColIdx>, Vec<E>)>>;
    let staged: Staged<S::Elem> = (0..nt)
        .map(|_| parking_lot::Mutex::new((Vec::new(), Vec::new())))
        .collect();
    let mut single_cols: Vec<ColIdx> = Vec::new();
    let mut single_vals: Vec<S::Elem> = Vec::new();
    if mem == MemScheme::Single {
        // master-side allocation of the full flop bound (the cost the
        // paper's "single" series pays)
        let bound = flop_prefix[n] as usize;
        single_cols = vec![0; bound];
        single_vals = vec![S::zero(); bound];
    }
    let single_cols_s = SharedMutSlice::new(&mut single_cols[..]);
    let single_vals_s = SharedMutSlice::new(&mut single_vals[..]);
    {
        let cnt = SharedMutSlice::new(&mut counts64[..]);
        pool.parallel_ranges(&offsets, |wid, range| {
            if range.is_empty() {
                return;
            }
            let mut kernel = HeapKernel::<S>::new();
            match mem {
                MemScheme::Parallel => {
                    let bound = (flop_prefix[range.end] - flop_prefix[range.start]) as usize;
                    let mut slot = staged[wid].lock();
                    let (cols, vals) = &mut *slot;
                    cols.clear();
                    vals.clear();
                    cols.reserve(bound);
                    vals.reserve(bound);
                    for i in range {
                        let c = kernel.stage_row(a, b, i, cols, vals) as u64;
                        // SAFETY: each row staged by exactly one thread.
                        unsafe { cnt.write(i + 1, c) };
                    }
                }
                MemScheme::Single => {
                    // write into the worker's disjoint slice of the
                    // master buffer, rows packed back-to-back
                    let base = flop_prefix[range.start] as usize;
                    let end = flop_prefix[range.end] as usize;
                    // SAFETY: flop-prefix slices are disjoint per range.
                    let mut cols = unsafe { single_cols_s.slice_mut(base..end) };
                    let mut vals = unsafe { single_vals_s.slice_mut(base..end) };
                    let mut tmp_c: Vec<ColIdx> = Vec::new();
                    let mut tmp_v: Vec<S::Elem> = Vec::new();
                    let mut written = 0usize;
                    for i in range {
                        tmp_c.clear();
                        tmp_v.clear();
                        let c = kernel.stage_row(a, b, i, &mut tmp_c, &mut tmp_v);
                        cols[written..written + c].copy_from_slice(&tmp_c);
                        vals[written..written + c].copy_from_slice(&tmp_v);
                        written += c;
                        // SAFETY: as above.
                        unsafe { cnt.write(i + 1, c as u64) };
                    }
                    let _ = (&mut cols, &mut vals);
                }
            }
        });
    }

    let total = scan::parallel_inclusive_scan(pool, &mut counts64) as usize;
    let rpts: Vec<usize> = counts64.iter().map(|&x| x as usize).collect();
    let mut cols = vec![0 as ColIdx; total];
    let mut vals = vec![S::zero(); total];
    {
        let cols_s = SharedMutSlice::new(&mut cols[..]);
        let vals_s = SharedMutSlice::new(&mut vals[..]);
        let rpts_ref = &rpts;
        pool.parallel_ranges(&offsets, |wid, range| {
            if range.is_empty() {
                return;
            }
            let dst = rpts_ref[range.start]..rpts_ref[range.end];
            match mem {
                MemScheme::Parallel => {
                    let slot = staged[wid].lock();
                    let (scols, svals) = &*slot;
                    // SAFETY: destination blocks disjoint per thread.
                    unsafe {
                        cols_s.slice_mut(dst.clone()).copy_from_slice(scols);
                        vals_s.slice_mut(dst).copy_from_slice(svals);
                    }
                }
                MemScheme::Single => {
                    let base = flop_prefix[range.start] as usize;
                    let len = dst.len();
                    // SAFETY: sources and destinations disjoint per thread.
                    unsafe {
                        let src_c = single_cols_s.slice_mut(base..base + len);
                        let src_v = single_vals_s.slice_mut(base..base + len);
                        cols_s.slice_mut(dst.clone()).copy_from_slice(src_c);
                        vals_s.slice_mut(dst).copy_from_slice(src_v);
                    }
                }
            }
        });
    }
    // "single" deallocation happens here, on the master — the cost the
    // paper measures in Figure 4.
    drop(single_cols);
    drop(single_vals);
    Csr::from_parts_unchecked(n, b.ncols(), rpts, cols, vals, true)
}

/// Dynamic/guided path: rows claimed from a shared counter; each
/// worker stages rows in claim order with a replay log.
fn claimed_heap<S: Semiring>(
    a: &Csr<S::Elem>,
    b: &Csr<S::Elem>,
    pool: &Pool,
    sched: Schedule,
) -> Csr<S::Elem> {
    let n = a.nrows();
    let nt = pool.nthreads();
    let mut counts64 = vec![0u64; n + 1];
    // (staging cols, staging vals, log of (row, len))
    type Slot<E> = (Vec<ColIdx>, Vec<E>, Vec<(u32, u32)>);
    let staged: Vec<parking_lot::Mutex<Slot<S::Elem>>> = (0..nt)
        .map(|_| parking_lot::Mutex::new((Vec::new(), Vec::new(), Vec::new())))
        .collect();
    {
        let cnt = SharedMutSlice::new(&mut counts64[..]);
        let next = std::sync::atomic::AtomicUsize::new(0);
        pool.broadcast(|wid| {
            let mut kernel = HeapKernel::<S>::new();
            let mut slot = staged[wid].lock();
            let (cols, vals, log) = &mut *slot;
            cols.clear();
            vals.clear();
            log.clear();
            // Claim rows with the same arithmetic as Pool::parallel_for
            // but inline, so the staging stays worker-local.
            claim_rows(&next, n, nt, sched, |i| {
                let c = kernel.stage_row(a, b, i, cols, vals);
                log.push((i as u32, c as u32));
                // SAFETY: each row claimed exactly once across workers.
                unsafe { cnt.write(i + 1, c as u64) };
            });
        });
    }
    let total = scan::parallel_inclusive_scan(pool, &mut counts64) as usize;
    let rpts: Vec<usize> = counts64.iter().map(|&x| x as usize).collect();
    let mut cols = vec![0 as ColIdx; total];
    let mut vals = vec![S::zero(); total];
    {
        let cols_s = SharedMutSlice::new(&mut cols[..]);
        let vals_s = SharedMutSlice::new(&mut vals[..]);
        let rpts_ref = &rpts;
        pool.broadcast(|wid| {
            let slot = staged[wid].lock();
            let (scols, svals, log) = &*slot;
            let mut src = 0usize;
            for &(row, len) in log {
                let len = len as usize;
                let dst = rpts_ref[row as usize]..rpts_ref[row as usize] + len;
                // SAFETY: rows are uniquely owned by their claiming worker.
                unsafe {
                    cols_s
                        .slice_mut(dst.clone())
                        .copy_from_slice(&scols[src..src + len]);
                    vals_s
                        .slice_mut(dst)
                        .copy_from_slice(&svals[src..src + len]);
                }
                src += len;
            }
        });
    }
    Csr::from_parts_unchecked(n, b.ncols(), rpts, cols, vals, true)
}

/// Row claiming shared by the workers of one [`claimed_heap`] region;
/// the counter lives in the region's frame, so concurrent multiplies
/// never interfere.
fn claim_rows(
    next: &std::sync::atomic::AtomicUsize,
    n: usize,
    nt: usize,
    sched: Schedule,
    mut body: impl FnMut(usize),
) {
    use std::sync::atomic::Ordering;
    loop {
        let (start, end) = match sched {
            Schedule::Dynamic { chunk } => {
                let c = chunk.max(1);
                let s = next.fetch_add(c, Ordering::Relaxed);
                (s, (s + c).min(n))
            }
            Schedule::Guided { min_chunk } => {
                let mut cur = next.load(Ordering::Relaxed);
                loop {
                    if cur >= n {
                        break (n, n);
                    }
                    let chunk = ((n - cur) / nt).max(min_chunk.max(1));
                    match next.compare_exchange_weak(
                        cur,
                        cur + chunk,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => break (cur, (cur + chunk).min(n)),
                        Err(seen) => cur = seen,
                    }
                }
            }
            Schedule::Static => unreachable!("contiguous path handles static"),
        };
        if start >= n {
            break;
        }
        for i in start..end {
            body(i);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algos::reference;
    use spgemm_sparse::{approx_eq_f64, PlusTimes};

    type P = PlusTimes<f64>;

    fn check_all_variants(a: &Csr<f64>) {
        let expect = reference::multiply::<P>(a, a);
        for nt in [1usize, 2, 3] {
            let pool = Pool::new(nt);
            for sched in [
                RowSchedule::Static,
                RowSchedule::Dynamic,
                RowSchedule::Guided,
                RowSchedule::FlopBalanced,
            ] {
                for mem in [MemScheme::Single, MemScheme::Parallel] {
                    // dynamic/guided ignore the mem scheme (always parallel)
                    let got = heap_multiply_tuned::<P>(a, a, &pool, sched, mem);
                    assert!(
                        approx_eq_f64(&expect, &got, 1e-12),
                        "{}/{} nt={nt}",
                        sched.name(),
                        mem.name()
                    );
                    assert!(got.is_sorted());
                    assert!(got.validate().is_ok());
                }
            }
        }
    }

    #[test]
    fn all_variants_match_reference_small() {
        let a = Csr::from_triplets(
            6,
            6,
            &[
                (0, 1, 1.0),
                (0, 5, 2.0),
                (1, 2, 3.0),
                (2, 0, 4.0),
                (3, 3, 5.0),
                (4, 1, 6.0),
                (5, 4, 7.0),
                (5, 0, 8.0),
            ],
        )
        .unwrap();
        check_all_variants(&a);
    }

    #[test]
    fn all_variants_match_reference_rmat() {
        let a = spgemm_gen::rmat::generate_kind(
            spgemm_gen::RmatKind::G500,
            7,
            8,
            &mut spgemm_gen::rng(9),
        );
        check_all_variants(&a);
    }

    #[test]
    fn names_for_figure_legend() {
        assert_eq!(RowSchedule::FlopBalanced.name(), "balanced");
        assert_eq!(MemScheme::Single.name(), "single");
    }
}
