//! Analytic cost model for accumulator selection (§4.2.4).
//!
//! The paper estimates the two main accumulators as
//!
//! * Eq (1): `T_heap = Σ_i flop(c_i*) · log₂ nnz(a_i*)`
//! * Eq (2): `T_hash = flop · c + Σ_i nnz(c_i*) · log₂ nnz(c_i*)`
//!
//! where `c` is the average number of probes per hash access (the
//! *collision factor*; `c = 1` means no collisions) and the second
//! term of Eq (2) is the per-row output sort, dropped for unsorted
//! output. "Hash tends to win when `nnz(c_i*)` or
//! `flop(c_i*)/nnz(c_i*)` is large" — i.e. dense or regular inputs —
//! which is exactly what Table 4 encodes empirically.

use spgemm_sparse::Csr;

/// Cost estimates (in abstract operation counts) for one multiply.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostEstimate {
    /// Eq (1): heap accumulation cost.
    pub heap: f64,
    /// Eq (2) with the sort term: hash producing sorted output.
    pub hash_sorted: f64,
    /// Eq (2) without the sort term: hash producing unsorted output.
    pub hash_unsorted: f64,
    /// Total scalar multiplications.
    pub flop: u64,
}

impl CostEstimate {
    /// The cheaper of heap vs hash for the requested output order.
    pub fn prefers_hash(&self, sorted_output: bool) -> bool {
        let hash = if sorted_output {
            self.hash_sorted
        } else {
            self.hash_unsorted
        };
        hash <= self.heap
    }
}

#[inline]
fn log2_ceil(x: u64) -> f64 {
    if x <= 1 {
        // a 1-element heap/sort still does ~1 operation per item
        1.0
    } else {
        (x as f64).log2()
    }
}

/// Evaluate Eqs (1)–(2) given the *known* output structure (exact
/// per-row `nnz(c_i*)`). Useful post-hoc and in tests.
pub fn estimate_exact<A, B, C>(
    a: &Csr<A>,
    b: &Csr<B>,
    c: &Csr<C>,
    collision_factor: f64,
) -> CostEstimate
where
    A: Copy + Send + Sync,
    B: Copy + Send + Sync,
    C: Copy + Send + Sync,
{
    let row_flops = spgemm_sparse::stats::row_flops(a, b);
    let flop: u64 = row_flops.iter().sum();
    let mut heap = 0.0f64;
    let mut sort = 0.0f64;
    for (i, &rf) in row_flops.iter().enumerate() {
        heap += rf as f64 * log2_ceil(a.row_nnz(i) as u64);
        let nnz_ci = c.row_nnz(i) as u64;
        sort += nnz_ci as f64 * log2_ceil(nnz_ci);
    }
    let probe = flop as f64 * collision_factor;
    CostEstimate {
        heap,
        hash_sorted: probe + sort,
        hash_unsorted: probe,
        flop,
    }
}

/// Evaluate Eqs (1)–(2) *a priori*, before the output structure is
/// known, approximating `nnz(c_i*) ≈ min(flop(c_i*) / 2, ncols)` — the
/// compression-ratio-2 midpoint that separates Table 4a's regimes.
pub fn estimate_apriori<A, B>(a: &Csr<A>, b: &Csr<B>, collision_factor: f64) -> CostEstimate
where
    A: Copy + Send + Sync,
    B: Copy + Send + Sync,
{
    let row_flops = spgemm_sparse::stats::row_flops(a, b);
    let flop: u64 = row_flops.iter().sum();
    let mut heap = 0.0f64;
    let mut sort = 0.0f64;
    for (i, &rf) in row_flops.iter().enumerate() {
        heap += rf as f64 * log2_ceil(a.row_nnz(i) as u64);
        let est_nnz = ((rf / 2).min(b.ncols() as u64)).max(u64::from(rf > 0));
        sort += est_nnz as f64 * log2_ceil(est_nnz);
    }
    let probe = flop as f64 * collision_factor;
    CostEstimate {
        heap,
        hash_sorted: probe + sort,
        hash_unsorted: probe,
        flop,
    }
}

/// Empirically measure the collision factor `c` of Eq (2) for
/// `A · B`: run a sequential symbolic pass through the instrumented
/// hash accumulator and report probes per access.
///
/// On the paper's inputs this sits close to 1 (the multiply-and-mask
/// hash with a strictly-oversized power-of-two table collides rarely);
/// the ablation bench uses it to relate Eq (2) to measurements.
pub fn measure_collision_factor<S: spgemm_sparse::Semiring>(
    a: &Csr<S::Elem>,
    b: &Csr<S::Elem>,
) -> f64 {
    use crate::algos::hash::HashAccumulator;
    let row_flops = spgemm_sparse::stats::row_flops(a, b);
    let max_flop = row_flops.iter().copied().max().unwrap_or(0) as usize;
    let mut acc = HashAccumulator::<S>::new(max_flop, b.ncols());
    for i in 0..a.nrows() {
        for &k in a.row_cols(i) {
            for &j in b.row_cols(k as usize) {
                acc.insert_symbolic(j);
            }
        }
        acc.reset();
    }
    acc.collision_factor()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spgemm_gen::{rmat, suite, RmatKind};

    #[test]
    fn log2_ceil_monotone() {
        assert_eq!(log2_ceil(0), 1.0);
        assert_eq!(log2_ceil(1), 1.0);
        assert_eq!(log2_ceil(2), 1.0);
        assert!(log2_ceil(1024) > log2_ceil(512));
    }

    #[test]
    fn unsorted_hash_never_dearer_than_sorted() {
        let a = rmat::generate_kind(RmatKind::Er, 8, 8, &mut spgemm_gen::rng(1));
        let e = estimate_apriori(&a, &a, 1.2);
        assert!(e.hash_unsorted <= e.hash_sorted);
        assert!(e.flop > 0);
    }

    #[test]
    fn dense_regular_inputs_prefer_hash() {
        // A banded matrix has large flop(c_i*)/nnz(c_i*): Eq (1) pays
        // log(nnz(a_i*)) on every one of its many collapsing products,
        // while Eq (2)'s sort term only pays on the few survivors.
        // (The exact estimate sees the real nnz(C); the a-priori one
        // deliberately over-estimates it at CR = 2.)
        let band = suite::band_matrix(512, 32, &mut spgemm_gen::rng(2));
        let c = crate::algos::reference::multiply::<spgemm_sparse::PlusTimes<f64>>(&band, &band);
        let e = estimate_exact(&band, &band, &c, 1.0);
        assert!(
            e.prefers_hash(true),
            "band: hash {h} vs heap {p}",
            h = e.hash_sorted,
            p = e.heap
        );
    }

    #[test]
    fn exact_estimate_uses_output_structure() {
        let a = rmat::generate_kind(RmatKind::Er, 7, 4, &mut spgemm_gen::rng(3));
        let c = crate::algos::reference::multiply::<spgemm_sparse::PlusTimes<f64>>(&a, &a);
        let exact = estimate_exact(&a, &a, &c, 1.0);
        let apriori = estimate_apriori(&a, &a, 1.0);
        assert_eq!(exact.flop, apriori.flop);
        assert_eq!(exact.heap, apriori.heap);
        // sort terms differ because nnz(c) is estimated in apriori
        assert!(exact.hash_sorted > exact.hash_unsorted);
    }

    #[test]
    fn measured_collision_factor_is_small_on_rmat() {
        let a = rmat::generate_kind(RmatKind::G500, 9, 8, &mut spgemm_gen::rng(5));
        let c = measure_collision_factor::<spgemm_sparse::PlusTimes<f64>>(&a, &a);
        assert!(c >= 1.0, "by definition");
        assert!(c < 2.0, "oversized pow2 table keeps probing cheap: c = {c}");
    }

    #[test]
    fn collision_factor_scales_probe_cost() {
        let a = rmat::generate_kind(RmatKind::Er, 7, 4, &mut spgemm_gen::rng(4));
        let e1 = estimate_apriori(&a, &a, 1.0);
        let e2 = estimate_apriori(&a, &a, 2.0);
        assert!((e2.hash_unsorted - 2.0 * e1.hash_unsorted).abs() < 1e-6);
    }
}
