//! One-phase hash SpGEMM without a symbolic pass — the MKL-inspector
//! stand-in (Table 1: one phase, any input, *unsorted* output).
//!
//! MKL's inspector-executor API performs a single pass and never sorts
//! its output; our stand-in reproduces that contract with the same
//! hash accumulator as [`crate::algos::hash`], staging rows into
//! thread-private flop-bound buffers instead of running symbolic
//! first. It trades the symbolic pass for the staging memory — the
//! same trade the paper's Figure 7 two-phase structure avoids.

use crate::algos::hash::HashAccumulator;
use crate::exec::{
    self, AccumReq, ReusableAccumulator, RowAccumulator, StagedKernelFactory, StagedRowKernel,
};
use spgemm_par::Pool;
use spgemm_sparse::{ColIdx, Csr, Semiring};

/// Per-thread state: the shared hash accumulator driven in staged mode.
pub struct InspectorKernel<S: Semiring> {
    acc: HashAccumulator<S>,
}

impl<S: Semiring> InspectorKernel<S> {
    /// Kernel whose table holds rows of at most `max_row_flop`
    /// products into `ncols_b` output columns.
    pub fn new(max_row_flop: usize, ncols_b: usize) -> Self {
        InspectorKernel {
            acc: HashAccumulator::new(max_row_flop, ncols_b),
        }
    }
}

impl<S: Semiring> RowAccumulator<S> for InspectorKernel<S> {
    fn symbolic_row(&mut self, a: &Csr<S::Elem>, b: &Csr<S::Elem>, i: usize) -> usize {
        self.acc.symbolic_row(a, b, i)
    }

    fn numeric_row(
        &mut self,
        a: &Csr<S::Elem>,
        b: &Csr<S::Elem>,
        i: usize,
        cols: &mut [ColIdx],
        vals: &mut [S::Elem],
        sorted: bool,
    ) {
        self.acc.numeric_row(a, b, i, cols, vals, sorted);
    }
}

impl<S: Semiring> ReusableAccumulator<S> for InspectorKernel<S> {
    fn ensure(&mut self, req: &AccumReq) {
        self.acc.ensure(req);
    }

    fn scrub(&mut self) {
        self.acc.scrub();
    }
}

impl<S: Semiring> StagedRowKernel<S> for InspectorKernel<S> {
    fn stage_row(
        &mut self,
        a: &Csr<S::Elem>,
        b: &Csr<S::Elem>,
        i: usize,
        cols: &mut Vec<ColIdx>,
        vals: &mut Vec<S::Elem>,
    ) -> usize {
        self.acc.accumulate_row(a, b, i);
        let n = self.acc.len();
        let start = cols.len();
        cols.resize(start + n, 0);
        vals.resize(start + n, S::zero());
        self.acc
            .extract_into(&mut cols[start..], &mut vals[start..], false);
        n
    }
}

struct InspectorFactory;

impl<S: Semiring> StagedKernelFactory<S> for InspectorFactory {
    type Kernel = InspectorKernel<S>;
    fn make(&self, max_row_flop: usize, _inner: usize, ncols_b: usize) -> Self::Kernel {
        InspectorKernel::new(max_row_flop, ncols_b)
    }
}

/// Inspector-style one-phase SpGEMM; output is always unsorted.
pub fn multiply<S: Semiring>(a: &Csr<S::Elem>, b: &Csr<S::Elem>, pool: &Pool) -> Csr<S::Elem> {
    exec::one_phase_staged::<S, _>(a, b, pool, &InspectorFactory, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algos::reference;
    use spgemm_sparse::{approx_eq_f64, PlusTimes};

    type P = PlusTimes<f64>;

    #[test]
    fn matches_reference_up_to_order() {
        let a = Csr::from_triplets(
            5,
            5,
            &[
                (0, 1, 1.0),
                (1, 2, 2.0),
                (1, 4, 3.0),
                (2, 0, 4.0),
                (3, 3, 5.0),
                (4, 1, 6.0),
            ],
        )
        .unwrap();
        let expect = reference::multiply::<P>(&a, &a);
        for nt in [1usize, 2, 4] {
            let pool = Pool::new(nt);
            let got = multiply::<P>(&a, &a, &pool);
            assert!(approx_eq_f64(&expect, &got, 1e-12), "nt={nt}");
            assert!(got.validate().is_ok());
        }
    }

    #[test]
    fn single_pass_handles_empty_output() {
        let z = Csr::<f64>::zero(4, 4);
        let got = multiply::<P>(&z, &z, &Pool::new(2));
        assert_eq!(got.nnz(), 0);
        assert!(got.validate().is_ok());
    }

    #[test]
    fn output_flagged_unsorted() {
        // even if rows happen to be ascending, the kernel does not
        // promise order, so the flag must be conservative
        let a = Csr::from_triplets(2, 2, &[(0, 0, 1.0), (1, 1, 1.0)]).unwrap();
        let got = multiply::<P>(&a, &a, &Pool::new(1));
        assert!(!got.is_sorted());
    }
}
