//! Sequential `BTreeMap` oracle.
//!
//! The slowest, most obviously-correct Gustavson implementation:
//! accumulate each output row in an ordered map. Every other kernel's
//! tests compare against this one.

use spgemm_sparse::{ColIdx, Csr, Semiring};
use std::collections::BTreeMap;

/// Sequential reference SpGEMM; output rows sorted.
pub fn multiply<S: Semiring>(a: &Csr<S::Elem>, b: &Csr<S::Elem>) -> Csr<S::Elem> {
    assert_eq!(a.ncols(), b.nrows(), "inner dimension mismatch");
    let n = a.nrows();
    let mut rpts = Vec::with_capacity(n + 1);
    rpts.push(0usize);
    let mut cols: Vec<ColIdx> = Vec::new();
    let mut vals: Vec<S::Elem> = Vec::new();
    let mut row: BTreeMap<ColIdx, S::Elem> = BTreeMap::new();
    for i in 0..n {
        row.clear();
        for (&k, &aval) in a.row_cols(i).iter().zip(a.row_vals(i)) {
            let kr = k as usize;
            for (&j, &bval) in b.row_cols(kr).iter().zip(b.row_vals(kr)) {
                let prod = S::mul(aval, bval);
                row.entry(j)
                    .and_modify(|acc| *acc = S::add(*acc, prod))
                    .or_insert(prod);
            }
        }
        for (&c, &v) in &row {
            cols.push(c);
            vals.push(v);
        }
        rpts.push(cols.len());
    }
    Csr::from_parts_unchecked(n, b.ncols(), rpts, cols, vals, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spgemm_sparse::{OrAnd, PlusTimes};

    #[test]
    fn two_by_two_by_hand() {
        // A = [1 2; 0 3], B = [4 0; 5 6]  =>  C = [14 12; 15 18]
        let a = Csr::from_triplets(2, 2, &[(0, 0, 1.0), (0, 1, 2.0), (1, 1, 3.0)]).unwrap();
        let b = Csr::from_triplets(2, 2, &[(0, 0, 4.0), (1, 0, 5.0), (1, 1, 6.0)]).unwrap();
        let c = multiply::<PlusTimes<f64>>(&a, &b);
        assert_eq!(c.get(0, 0), Some(&14.0));
        assert_eq!(c.get(0, 1), Some(&12.0));
        assert_eq!(c.get(1, 0), Some(&15.0));
        assert_eq!(c.get(1, 1), Some(&18.0));
        assert!(c.is_sorted());
    }

    #[test]
    fn identity_is_neutral() {
        let a = Csr::from_triplets(3, 3, &[(0, 2, 5.0), (2, 0, -1.0), (1, 1, 2.0)]).unwrap();
        let i = Csr::<f64>::identity(3);
        let ai = multiply::<PlusTimes<f64>>(&a, &i);
        let ia = multiply::<PlusTimes<f64>>(&i, &a);
        assert!(spgemm_sparse::approx_eq_f64(&a, &ai, 0.0));
        assert!(spgemm_sparse::approx_eq_f64(&a, &ia, 0.0));
    }

    #[test]
    fn rectangular_shapes() {
        let a = Csr::from_triplets(2, 3, &[(0, 0, 1.0), (1, 2, 2.0)]).unwrap();
        let b = Csr::from_triplets(3, 4, &[(0, 3, 3.0), (2, 1, 4.0)]).unwrap();
        let c = multiply::<PlusTimes<f64>>(&a, &b);
        assert_eq!(c.shape(), (2, 4));
        assert_eq!(c.get(0, 3), Some(&3.0));
        assert_eq!(c.get(1, 1), Some(&8.0));
        assert_eq!(c.nnz(), 2);
    }

    #[test]
    fn boolean_semiring_reachability() {
        // path graph 0 -> 1 -> 2: A² gives the 2-hop edge 0 -> 2
        let a = Csr::from_triplets(3, 3, &[(0, 1, true), (1, 2, true)]).unwrap();
        let c = multiply::<OrAnd>(&a, &a);
        assert_eq!(c.nnz(), 1);
        assert_eq!(c.get(0, 2), Some(&true));
    }

    #[test]
    fn zero_times_anything_is_empty() {
        let z = Csr::<f64>::zero(3, 3);
        let a = Csr::from_triplets(3, 3, &[(1, 1, 2.0)]).unwrap();
        assert_eq!(multiply::<PlusTimes<f64>>(&z, &a).nnz(), 0);
        assert_eq!(multiply::<PlusTimes<f64>>(&a, &z).nnz(), 0);
    }

    #[test]
    #[should_panic(expected = "inner dimension")]
    fn shape_mismatch_panics() {
        let a = Csr::<f64>::zero(2, 3);
        let b = Csr::<f64>::zero(2, 3);
        let _ = multiply::<PlusTimes<f64>>(&a, &b);
    }
}
