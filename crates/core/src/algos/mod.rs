//! The SpGEMM algorithm implementations.
//!
//! Each submodule is one accumulator strategy plugged into the shared
//! drivers of `crate::exec`; see the crate-level table for the mapping
//! to the paper's codes.

pub mod hash;
pub mod hashvec;
pub mod heap;
pub mod ikj;
pub mod inspector;
pub mod kkhash;
pub mod masked;
pub mod merge;
pub mod reference;
pub mod simd;
pub mod spa;
