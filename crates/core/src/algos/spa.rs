//! SPA (sparse accumulator) SpGEMM — Gustavson's original accumulator
//! as formalized by Gilbert, Moler & Schreiber (§2 of the paper).
//!
//! Each thread owns a dense, `ncols(B)`-sized value array plus an
//! epoch-stamped occupancy array and a list of touched columns — the
//! `O(n · t)` memory the paper contrasts against hash (`O(flop)`) and
//! heap (`O(nnz(a_i*))`) accumulators. Rows reset in `O(touched)` by
//! bumping the epoch. Stands in for MKL in the unsorted comparisons.

use crate::exec::{self, AccumReq, AccumulatorFactory, ReusableAccumulator, RowAccumulator};
use crate::OutputOrder;
use spgemm_par::Pool;
use spgemm_sparse::{ColIdx, Csr, Semiring};

/// Dense sparse-accumulator for one thread.
pub struct SpaAccumulator<S: Semiring> {
    /// `stamp[j] == epoch` ⇔ column `j` is occupied in the current row.
    stamp: Vec<u32>,
    epoch: u32,
    vals: Vec<S::Elem>,
    touched: Vec<ColIdx>,
}

impl<S: Semiring> SpaAccumulator<S> {
    /// Accumulator over `ncols_b` output columns.
    pub fn new(ncols_b: usize) -> Self {
        SpaAccumulator {
            stamp: vec![0; ncols_b],
            epoch: 0,
            vals: vec![S::zero(); ncols_b],
            touched: Vec::new(),
        }
    }

    /// Begin a new row (O(1) — epoch bump).
    pub fn begin_row(&mut self) {
        self.touched.clear();
        if self.epoch == u32::MAX {
            // epoch wrap: one full clear every 2^32 - 1 rows
            self.stamp.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
    }

    /// Distinct columns accumulated in the current row.
    pub fn len(&self) -> usize {
        self.touched.len()
    }

    /// Whether the current row is empty so far.
    pub fn is_empty(&self) -> bool {
        self.touched.is_empty()
    }

    /// Accumulate `value` into column `col`.
    #[inline]
    pub fn insert_numeric(&mut self, col: ColIdx, value: S::Elem) {
        let j = col as usize;
        if self.stamp[j] == self.epoch {
            self.vals[j] = S::add(self.vals[j], value);
        } else {
            self.stamp[j] = self.epoch;
            self.vals[j] = value;
            self.touched.push(col);
        }
    }

    /// Mark column `col` (symbolic phase).
    #[inline]
    pub fn insert_symbolic(&mut self, col: ColIdx) {
        let j = col as usize;
        if self.stamp[j] != self.epoch {
            self.stamp[j] = self.epoch;
            self.touched.push(col);
        }
    }

    /// Emit the current row (sorted on request — touched order is
    /// insertion order otherwise).
    pub fn extract_into(&mut self, cols: &mut [ColIdx], vals: &mut [S::Elem], sorted: bool) {
        debug_assert_eq!(cols.len(), self.touched.len());
        if sorted {
            self.touched.sort_unstable();
        }
        for (idx, &c) in self.touched.iter().enumerate() {
            cols[idx] = c;
            vals[idx] = self.vals[c as usize];
        }
    }
}

impl<S: Semiring> ReusableAccumulator<S> for SpaAccumulator<S> {
    fn ensure(&mut self, req: &AccumReq) {
        if req.ncols_b > self.stamp.len() {
            // Fresh slots stamped 0 read as unoccupied (epoch ≥ 1
            // after the first `begin_row`), so growth needs no rescan.
            self.stamp.resize(req.ncols_b, 0);
            self.vals.resize(req.ncols_b, S::zero());
        }
    }

    fn scrub(&mut self) {
        self.touched.clear();
    }
}

impl<S: Semiring> RowAccumulator<S> for SpaAccumulator<S> {
    fn symbolic_row(&mut self, a: &Csr<S::Elem>, b: &Csr<S::Elem>, i: usize) -> usize {
        self.begin_row();
        for &k in a.row_cols(i) {
            for &j in b.row_cols(k as usize) {
                self.insert_symbolic(j);
            }
        }
        self.touched.len()
    }

    fn numeric_row(
        &mut self,
        a: &Csr<S::Elem>,
        b: &Csr<S::Elem>,
        i: usize,
        cols: &mut [ColIdx],
        vals: &mut [S::Elem],
        sorted: bool,
    ) {
        self.begin_row();
        for (&k, &aval) in a.row_cols(i).iter().zip(a.row_vals(i)) {
            let kr = k as usize;
            for (&j, &bval) in b.row_cols(kr).iter().zip(b.row_vals(kr)) {
                self.insert_numeric(j, S::mul(aval, bval));
            }
        }
        self.extract_into(cols, vals, sorted);
    }
}

struct SpaFactory;

impl<S: Semiring> AccumulatorFactory<S> for SpaFactory {
    type Acc = SpaAccumulator<S>;
    fn make(&self, _max_row_flop: usize, _inner: usize, ncols_b: usize) -> Self::Acc {
        SpaAccumulator::new(ncols_b)
    }
}

/// SPA SpGEMM: `C = A · B` over semiring `S`.
pub fn multiply<S: Semiring>(
    a: &Csr<S::Elem>,
    b: &Csr<S::Elem>,
    order: OutputOrder,
    pool: &Pool,
) -> Csr<S::Elem> {
    exec::two_phase::<S, _>(a, b, order, pool, &SpaFactory)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algos::reference;
    use spgemm_sparse::{approx_eq_f64, PlusTimes};

    type P = PlusTimes<f64>;

    #[test]
    fn accumulator_epoch_isolation() {
        let mut acc = SpaAccumulator::<P>::new(10);
        acc.begin_row();
        acc.insert_numeric(3, 1.0);
        acc.insert_numeric(3, 2.0);
        assert_eq!(acc.len(), 1);
        let mut c = vec![0; 1];
        let mut v = vec![0.0; 1];
        acc.extract_into(&mut c, &mut v, true);
        assert_eq!((c[0], v[0]), (3, 3.0));
        // next row must not see the previous row's value
        acc.begin_row();
        assert!(acc.is_empty());
        acc.insert_numeric(3, 5.0);
        let mut c = vec![0; 1];
        let mut v = vec![0.0; 1];
        acc.extract_into(&mut c, &mut v, true);
        assert_eq!(v[0], 5.0, "stale value leaked across rows");
    }

    #[test]
    fn epoch_wrap_recovers() {
        let mut acc = SpaAccumulator::<P>::new(4);
        acc.epoch = u32::MAX - 1;
        acc.begin_row(); // -> MAX
        acc.insert_numeric(1, 1.0);
        acc.begin_row(); // wraps: full clear, epoch 1
        assert!(acc.is_empty());
        acc.insert_numeric(1, 9.0);
        let mut c = vec![0; 1];
        let mut v = vec![0.0; 1];
        acc.extract_into(&mut c, &mut v, true);
        assert_eq!(v[0], 9.0);
    }

    #[test]
    fn matches_reference() {
        let a = Csr::from_triplets(
            4,
            4,
            &[
                (0, 0, 1.0),
                (0, 2, 2.0),
                (1, 3, 3.0),
                (2, 1, 4.0),
                (3, 0, 5.0),
                (3, 2, 6.0),
            ],
        )
        .unwrap();
        let expect = reference::multiply::<P>(&a, &a);
        for nt in [1usize, 2] {
            let pool = Pool::new(nt);
            for order in [OutputOrder::Sorted, OutputOrder::Unsorted] {
                let got = multiply::<P>(&a, &a, order, &pool);
                assert!(approx_eq_f64(&expect, &got, 1e-12), "nt={nt} {order:?}");
                assert!(got.validate().is_ok());
            }
        }
    }

    #[test]
    fn unsorted_extraction_is_insertion_order() {
        let mut acc = SpaAccumulator::<P>::new(100);
        acc.begin_row();
        for c in [50u32, 2, 30] {
            acc.insert_numeric(c, c as f64);
        }
        let mut cols = vec![0; 3];
        let mut vals = vec![0.0; 3];
        acc.extract_into(&mut cols, &mut vals, false);
        assert_eq!(cols, vec![50, 2, 30]);
        assert_eq!(vals, vec![50.0, 2.0, 30.0]);
    }
}
