//! Chained-hash-map SpGEMM modeled on KokkosKernels' `kkmem`
//! accumulator (Deveci, Trott & Rajamanickam, IPDPSW 2017 — reference
//! \[14\] of the paper; evaluated with the `kkmem` option in §5).
//!
//! Unlike the open-addressing table of [`crate::algos::hash`], `kkmem`
//! resolves collisions by *separate chaining* into preallocated
//! arrays: `begins[bin]` heads a linked list threaded through
//! `nexts`, and inserted keys/values sit densely in insertion order —
//! which is why KokkosKernels naturally emits unsorted output
//! (Table 1: Any/Unsorted).

use crate::exec::{self, AccumReq, AccumulatorFactory, ReusableAccumulator, RowAccumulator};
use crate::OutputOrder;
use spgemm_par::Pool;
use spgemm_sparse::{ColIdx, Csr, Semiring};

const HASH_SCALE: u32 = 107;
const NIL: i32 = -1;

/// Chained hash accumulator for one thread.
pub struct KkHashAccumulator<S: Semiring> {
    /// Head of each bin's chain (index into `keys`/`nexts`), or `NIL`.
    begins: Vec<i32>,
    /// Next pointer per inserted entry.
    nexts: Vec<i32>,
    /// Inserted keys, dense in insertion order.
    keys: Vec<ColIdx>,
    vals: Vec<S::Elem>,
    /// Bins dirtied by the current row (for O(row) reset).
    used_bins: Vec<u32>,
    used: usize,
    bin_mask: u32,
    sort_buf: Vec<(ColIdx, S::Elem)>,
}

impl<S: Semiring> KkHashAccumulator<S> {
    /// Accumulator for rows with at most `max_row_flop` products into
    /// `ncols_b` columns.
    pub fn new(max_row_flop: usize, ncols_b: usize) -> Self {
        let cap = max_row_flop.min(ncols_b).max(1);
        let bins = exec::lowest_p2_above(cap / 2); // ~2 entries/bin target
        KkHashAccumulator {
            begins: vec![NIL; bins],
            nexts: vec![NIL; cap],
            keys: vec![0; cap],
            vals: vec![S::zero(); cap],
            used_bins: Vec::with_capacity(cap.min(bins)),
            used: 0,
            bin_mask: (bins - 1) as u32,
            sort_buf: Vec::new(),
        }
    }

    /// Entries inserted for the current row.
    pub fn len(&self) -> usize {
        self.used
    }

    /// Whether the current row has no entries.
    pub fn is_empty(&self) -> bool {
        self.used == 0
    }

    /// Find or insert `col`; returns `(entry_index, inserted)`.
    #[inline]
    pub fn probe_insert(&mut self, col: ColIdx) -> (usize, bool) {
        let bin = (col.wrapping_mul(HASH_SCALE) & self.bin_mask) as usize;
        let mut j = self.begins[bin];
        while j != NIL {
            let idx = j as usize;
            if self.keys[idx] == col {
                return (idx, false);
            }
            j = self.nexts[idx];
        }
        let idx = self.used;
        debug_assert!(idx < self.keys.len(), "kkmem capacity is the flop bound");
        self.keys[idx] = col;
        if self.begins[bin] == NIL {
            self.used_bins.push(bin as u32);
        }
        self.nexts[idx] = self.begins[bin];
        self.begins[bin] = idx as i32;
        self.used += 1;
        (idx, true)
    }

    /// Symbolic insert (count-only).
    #[inline]
    pub fn insert_symbolic(&mut self, col: ColIdx) -> bool {
        self.probe_insert(col).1
    }

    /// Numeric insert: accumulate `value` at `col`.
    #[inline]
    pub fn insert_numeric(&mut self, col: ColIdx, value: S::Elem) {
        let (idx, inserted) = self.probe_insert(col);
        self.vals[idx] = if inserted {
            value
        } else {
            S::add(self.vals[idx], value)
        };
    }

    /// O(touched) reset keeping all allocations.
    pub fn reset(&mut self) {
        for &b in &self.used_bins {
            self.begins[b as usize] = NIL;
        }
        self.used_bins.clear();
        self.used = 0;
    }

    /// Emit the row (insertion order, or sorted on request) and reset.
    pub fn extract_into(&mut self, cols: &mut [ColIdx], vals: &mut [S::Elem], sorted: bool) {
        debug_assert_eq!(cols.len(), self.used);
        if sorted {
            self.sort_buf.clear();
            self.sort_buf.extend(
                self.keys[..self.used]
                    .iter()
                    .copied()
                    .zip(self.vals[..self.used].iter().copied()),
            );
            self.sort_buf.sort_unstable_by_key(|&(c, _)| c);
            for (idx, &(c, v)) in self.sort_buf.iter().enumerate() {
                cols[idx] = c;
                vals[idx] = v;
            }
        } else {
            cols.copy_from_slice(&self.keys[..self.used]);
            vals.copy_from_slice(&self.vals[..self.used]);
        }
        self.reset();
    }
}

impl<S: Semiring> ReusableAccumulator<S> for KkHashAccumulator<S> {
    fn ensure(&mut self, req: &AccumReq) {
        let cap = req.max_row_flop.min(req.ncols_b).max(1);
        let bins = exec::lowest_p2_above(cap / 2);
        if cap > self.keys.len() || bins > self.begins.len() {
            let cap = cap.max(self.keys.len());
            let bins = bins.max(self.begins.len());
            self.begins.clear();
            self.begins.resize(bins, NIL);
            self.nexts.clear();
            self.nexts.resize(cap, NIL);
            self.keys.clear();
            self.keys.resize(cap, 0);
            self.vals.clear();
            self.vals.resize(cap, S::zero());
            self.bin_mask = (bins - 1) as u32;
            self.used_bins.clear();
            self.used = 0;
        }
    }

    fn scrub(&mut self) {
        self.reset();
    }
}

impl<S: Semiring> RowAccumulator<S> for KkHashAccumulator<S> {
    fn symbolic_row(&mut self, a: &Csr<S::Elem>, b: &Csr<S::Elem>, i: usize) -> usize {
        for &k in a.row_cols(i) {
            for &j in b.row_cols(k as usize) {
                self.insert_symbolic(j);
            }
        }
        let n = self.used;
        self.reset();
        n
    }

    fn numeric_row(
        &mut self,
        a: &Csr<S::Elem>,
        b: &Csr<S::Elem>,
        i: usize,
        cols: &mut [ColIdx],
        vals: &mut [S::Elem],
        sorted: bool,
    ) {
        for (&k, &aval) in a.row_cols(i).iter().zip(a.row_vals(i)) {
            let kr = k as usize;
            for (&j, &bval) in b.row_cols(kr).iter().zip(b.row_vals(kr)) {
                self.insert_numeric(j, S::mul(aval, bval));
            }
        }
        self.extract_into(cols, vals, sorted);
    }
}

struct KkFactory;

impl<S: Semiring> AccumulatorFactory<S> for KkFactory {
    type Acc = KkHashAccumulator<S>;
    fn make(&self, max_row_flop: usize, _inner: usize, ncols_b: usize) -> Self::Acc {
        KkHashAccumulator::new(max_row_flop, ncols_b)
    }
}

/// KokkosKernels-style chained-hash SpGEMM.
pub fn multiply<S: Semiring>(
    a: &Csr<S::Elem>,
    b: &Csr<S::Elem>,
    order: OutputOrder,
    pool: &Pool,
) -> Csr<S::Elem> {
    exec::two_phase::<S, _>(a, b, order, pool, &KkFactory)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algos::reference;
    use spgemm_sparse::{approx_eq_f64, PlusTimes};

    type P = PlusTimes<f64>;

    #[test]
    fn chains_resolve_collisions() {
        let mut acc = KkHashAccumulator::<P>::new(64, 10_000);
        // keys engineered into few bins
        let bins = acc.begins.len() as u32;
        for k in 0..32u32 {
            acc.insert_numeric(k * bins, 1.0);
        }
        assert_eq!(acc.len(), 32);
        for k in 0..32u32 {
            acc.insert_numeric(k * bins, 1.0);
        }
        assert_eq!(acc.len(), 32, "re-inserts accumulate, not duplicate");
        let mut cols = vec![0; 32];
        let mut vals = vec![0.0; 32];
        acc.extract_into(&mut cols, &mut vals, true);
        assert!(vals.iter().all(|&v| v == 2.0));
        assert!(cols.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn reset_reuses_cleanly() {
        let mut acc = KkHashAccumulator::<P>::new(8, 100);
        acc.insert_numeric(5, 1.0);
        acc.insert_numeric(6, 2.0);
        acc.reset();
        assert!(acc.is_empty());
        acc.insert_numeric(5, 7.0);
        let mut c = vec![0; 1];
        let mut v = vec![0.0; 1];
        acc.extract_into(&mut c, &mut v, false);
        assert_eq!((c[0], v[0]), (5, 7.0));
    }

    #[test]
    fn matches_reference() {
        let a = Csr::from_triplets(
            5,
            5,
            &[
                (0, 0, 1.0),
                (0, 2, 2.0),
                (1, 4, 3.0),
                (2, 1, 4.0),
                (3, 3, 5.0),
                (4, 0, 6.0),
            ],
        )
        .unwrap();
        let expect = reference::multiply::<P>(&a, &a);
        for nt in [1usize, 2] {
            let pool = Pool::new(nt);
            for order in [OutputOrder::Sorted, OutputOrder::Unsorted] {
                let got = multiply::<P>(&a, &a, order, &pool);
                assert!(approx_eq_f64(&expect, &got, 1e-12), "nt={nt} {order:?}");
                assert!(got.validate().is_ok());
            }
        }
    }

    #[test]
    fn capacity_exactly_at_flop_bound() {
        // a row whose flop equals its unique-column count fills the
        // dense arrays completely — the `used < cap` invariant holds
        // because capacity is the flop bound.
        let mut acc = KkHashAccumulator::<P>::new(4, 100);
        for k in 0..4u32 {
            acc.insert_numeric(k, 1.0);
        }
        assert_eq!(acc.len(), 4);
    }
}
