//! HashVector SpGEMM: hash probing vectorized with AVX-512/AVX2
//! (§4.2.2, Figure 8b).
//!
//! Identical structure to [`crate::algos::hash`] except the table is
//! chunked one vector register wide and probed with the primitives of
//! [`crate::algos::simd`]: the hash selects a *chunk*; a vector
//! comparison checks all of its keys at once; insertion takes the
//! first empty lane; a full chunk advances to the next (linear probing
//! at chunk granularity). Fewer probe steps per collision, a few more
//! instructions per step — the paper's Haswell/KNL trade-off.

use crate::algos::simd::{self, ChunkProbe, SimdLevel};
use crate::exec::{self, AccumReq, AccumulatorFactory, ReusableAccumulator, RowAccumulator};
use crate::OutputOrder;
use spgemm_par::Pool;
use spgemm_sparse::{ColIdx, Csr, Semiring};

/// Chunk-selection hash constant (same multiplicative scheme as the
/// scalar kernel).
const HASH_SCALE: u32 = 107;

/// A chunked, SIMD-probed hash accumulator for one thread.
pub struct HashVecAccumulator<S: Semiring> {
    keys: Vec<i32>,
    vals: Vec<S::Elem>,
    /// Flat slot indices filled by the current row.
    occupied: Vec<u32>,
    chunk_mask: u32,
    level: SimdLevel,
    width: usize,
    sort_buf: Vec<(ColIdx, S::Elem)>,
}

impl<S: Semiring> HashVecAccumulator<S> {
    /// Accumulator for rows of at most `max_row_flop` products into
    /// `ncols_b` output columns, probing with `level`.
    pub fn with_level(max_row_flop: usize, ncols_b: usize, level: SimdLevel) -> Self {
        let width = level.width();
        let size_t = max_row_flop.min(ncols_b);
        // capacity: smallest power-of-two multiple of the chunk width
        // strictly above size_t (same "always one free slot" rule).
        let cap = exec::lowest_p2_above(size_t).max(width);
        let nchunks = cap / width;
        HashVecAccumulator {
            keys: vec![-1; cap],
            vals: vec![S::zero(); cap],
            occupied: Vec::with_capacity(size_t.min(cap)),
            chunk_mask: (nchunks - 1) as u32,
            level,
            width,
            sort_buf: Vec::new(),
        }
    }

    /// Accumulator probing at the best level the CPU supports.
    pub fn new(max_row_flop: usize, ncols_b: usize) -> Self {
        Self::with_level(max_row_flop, ncols_b, simd::detect())
    }

    /// Table capacity in keys.
    pub fn capacity(&self) -> usize {
        self.keys.len()
    }

    /// Distinct keys inserted for the current row.
    pub fn len(&self) -> usize {
        self.occupied.len()
    }

    /// Whether the current row has no entries yet.
    pub fn is_empty(&self) -> bool {
        self.occupied.is_empty()
    }

    /// The SIMD level in use.
    pub fn level(&self) -> SimdLevel {
        self.level
    }

    /// Find or insert `col`; returns `(flat_slot, inserted)`.
    #[inline]
    pub fn probe_insert(&mut self, col: ColIdx) -> (usize, bool) {
        let mut chunk = col.wrapping_mul(HASH_SCALE) & self.chunk_mask;
        loop {
            let base = chunk as usize * self.width;
            let lanes = &self.keys[base..base + self.width];
            match simd::probe_chunk(self.level, lanes, col as i32) {
                ChunkProbe::Found(lane) => return (base + lane, false),
                ChunkProbe::Empty(lane) => {
                    let slot = base + lane;
                    self.keys[slot] = col as i32;
                    self.occupied.push(slot as u32);
                    return (slot, true);
                }
                ChunkProbe::Full => chunk = (chunk + 1) & self.chunk_mask,
            }
        }
    }

    /// Symbolic insert (count-only).
    #[inline]
    pub fn insert_symbolic(&mut self, col: ColIdx) -> bool {
        self.probe_insert(col).1
    }

    /// Numeric insert: accumulate `value` at `col`.
    #[inline]
    pub fn insert_numeric(&mut self, col: ColIdx, value: S::Elem) {
        let (slot, inserted) = self.probe_insert(col);
        self.vals[slot] = if inserted {
            value
        } else {
            S::add(self.vals[slot], value)
        };
    }

    /// Clear the current row's slots, keeping the allocation.
    pub fn reset(&mut self) {
        for &s in &self.occupied {
            self.keys[s as usize] = -1;
        }
        self.occupied.clear();
    }

    /// Emit the accumulated row and reset; see
    /// [`crate::algos::hash::HashAccumulator::extract_into`].
    pub fn extract_into(&mut self, cols: &mut [ColIdx], vals: &mut [S::Elem], sorted: bool) {
        debug_assert_eq!(cols.len(), self.occupied.len());
        if sorted {
            self.sort_buf.clear();
            self.sort_buf.extend(
                self.occupied
                    .iter()
                    .map(|&s| (self.keys[s as usize] as ColIdx, self.vals[s as usize])),
            );
            self.sort_buf.sort_unstable_by_key(|&(c, _)| c);
            for (idx, &(c, v)) in self.sort_buf.iter().enumerate() {
                cols[idx] = c;
                vals[idx] = v;
            }
        } else {
            for (idx, &s) in self.occupied.iter().enumerate() {
                cols[idx] = self.keys[s as usize] as ColIdx;
                vals[idx] = self.vals[s as usize];
            }
        }
        self.reset();
    }
}

impl<S: Semiring> ReusableAccumulator<S> for HashVecAccumulator<S> {
    fn ensure(&mut self, req: &AccumReq) {
        let size_t = req.max_row_flop.min(req.ncols_b);
        let cap = exec::lowest_p2_above(size_t).max(self.width);
        if cap > self.keys.len() {
            self.keys.clear();
            self.keys.resize(cap, -1);
            self.vals.clear();
            self.vals.resize(cap, S::zero());
            self.chunk_mask = (cap / self.width - 1) as u32;
            self.occupied.clear();
        }
    }

    fn scrub(&mut self) {
        self.reset();
    }
}

impl<S: Semiring> RowAccumulator<S> for HashVecAccumulator<S> {
    fn symbolic_row(&mut self, a: &Csr<S::Elem>, b: &Csr<S::Elem>, i: usize) -> usize {
        for &k in a.row_cols(i) {
            for &j in b.row_cols(k as usize) {
                self.insert_symbolic(j);
            }
        }
        let n = self.occupied.len();
        self.reset();
        n
    }

    fn numeric_row(
        &mut self,
        a: &Csr<S::Elem>,
        b: &Csr<S::Elem>,
        i: usize,
        cols: &mut [ColIdx],
        vals: &mut [S::Elem],
        sorted: bool,
    ) {
        for (&k, &aval) in a.row_cols(i).iter().zip(a.row_vals(i)) {
            let kr = k as usize;
            for (&j, &bval) in b.row_cols(kr).iter().zip(b.row_vals(kr)) {
                self.insert_numeric(j, S::mul(aval, bval));
            }
        }
        self.extract_into(cols, vals, sorted);
    }
}

struct HashVecFactory {
    level: SimdLevel,
}

impl<S: Semiring> AccumulatorFactory<S> for HashVecFactory {
    type Acc = HashVecAccumulator<S>;
    fn make(&self, max_row_flop: usize, _inner: usize, ncols_b: usize) -> Self::Acc {
        HashVecAccumulator::with_level(max_row_flop, ncols_b, self.level)
    }
}

/// HashVector SpGEMM at the best SIMD level the CPU supports.
pub fn multiply<S: Semiring>(
    a: &Csr<S::Elem>,
    b: &Csr<S::Elem>,
    order: OutputOrder,
    pool: &Pool,
) -> Csr<S::Elem> {
    multiply_with_level::<S>(a, b, order, pool, simd::detect())
}

/// HashVector SpGEMM with an explicit SIMD level (tests, ablations).
pub fn multiply_with_level<S: Semiring>(
    a: &Csr<S::Elem>,
    b: &Csr<S::Elem>,
    order: OutputOrder,
    pool: &Pool,
    level: SimdLevel,
) -> Csr<S::Elem> {
    exec::two_phase::<S, _>(a, b, order, pool, &HashVecFactory { level })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algos::reference;
    use spgemm_sparse::{approx_eq_f64, PlusTimes};

    type P = PlusTimes<f64>;

    fn levels() -> Vec<SimdLevel> {
        let mut v = vec![SimdLevel::Scalar];
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                v.push(SimdLevel::Avx2);
            }
            if std::arch::is_x86_feature_detected!("avx512f") {
                v.push(SimdLevel::Avx512);
            }
        }
        v
    }

    #[test]
    fn accumulator_roundtrip_all_levels() {
        for level in levels() {
            let mut acc = HashVecAccumulator::<P>::with_level(32, 1000, level);
            for c in [500u32, 3, 500, 77, 3] {
                acc.insert_numeric(c, 1.0);
            }
            assert_eq!(acc.len(), 3, "{level:?}");
            let mut cols = vec![0; 3];
            let mut vals = vec![0.0; 3];
            acc.extract_into(&mut cols, &mut vals, true);
            assert_eq!(cols, vec![3, 77, 500], "{level:?}");
            assert_eq!(vals, vec![2.0, 1.0, 2.0], "{level:?}");
        }
    }

    #[test]
    fn capacity_is_chunk_aligned_pow2() {
        for level in levels() {
            let acc = HashVecAccumulator::<P>::with_level(5, 1000, level);
            assert_eq!(acc.capacity() % level.width(), 0);
            assert!(acc.capacity().is_power_of_two());
            assert!(acc.capacity() > 5);
        }
    }

    #[test]
    fn collision_heavy_inserts_survive_chunk_overflow() {
        for level in levels() {
            // enough keys to overflow several chunks
            let mut acc = HashVecAccumulator::<P>::with_level(64, 10_000, level);
            for c in 0..64u32 {
                acc.insert_numeric(c * 128, 1.0); // same low bits → clustered chunks
            }
            assert_eq!(acc.len(), 64, "{level:?}");
            let mut cols = vec![0; 64];
            let mut vals = vec![0.0; 64];
            acc.extract_into(&mut cols, &mut vals, true);
            assert!(cols.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn matches_reference_all_levels() {
        let a = Csr::from_triplets(
            5,
            5,
            &[
                (0, 0, 1.0),
                (0, 4, 2.0),
                (1, 2, 3.0),
                (2, 1, -1.0),
                (2, 3, 4.0),
                (3, 0, 5.0),
                (4, 4, 0.5),
            ],
        )
        .unwrap();
        let expect = reference::multiply::<P>(&a, &a);
        let pool = Pool::new(2);
        for level in levels() {
            for order in [OutputOrder::Sorted, OutputOrder::Unsorted] {
                let got = multiply_with_level::<P>(&a, &a, order, &pool, level);
                assert!(approx_eq_f64(&expect, &got, 1e-12), "{level:?} {order:?}");
                assert!(got.validate().is_ok());
            }
        }
    }

    #[test]
    fn default_level_multiply_works() {
        let a = Csr::from_triplets(3, 3, &[(0, 1, 2.0), (1, 2, 3.0), (2, 0, 4.0)]).unwrap();
        let pool = Pool::new(1);
        let c = multiply::<P>(&a, &a, OutputOrder::Sorted, &pool);
        let expect = reference::multiply::<P>(&a, &a);
        assert!(approx_eq_f64(&expect, &c, 1e-12));
    }
}
