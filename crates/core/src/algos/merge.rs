//! Iterative sorted-row-merging SpGEMM — the MKL stand-in for sorted
//! comparisons (two phases, sorted inputs, sorted output).
//!
//! The row computation follows the iterative row-merging scheme of
//! Gremse et al. (and ViennaCL, §2 of the paper): the `nnz(a_i*)`
//! scaled rows of `B` are merged pairwise, round by round (like merge
//! sort on lists), combining duplicate columns as they meet. Each
//! round is `O(flop)`, with `⌈log₂ nnz(a_i*)⌉` rounds. Thread scratch
//! is two flop-bound ping-pong buffers — allocated per thread inside
//! the region, per the paper's "parallel" memory scheme.

use crate::exec::{self, AccumReq, AccumulatorFactory, ReusableAccumulator, RowAccumulator};
use crate::OutputOrder;
use spgemm_par::Pool;
use spgemm_sparse::{ColIdx, Csr, Semiring};

/// Per-thread merge state: ping/pong buffers and segment boundaries.
pub struct MergeAccumulator<S: Semiring> {
    ping: Vec<(ColIdx, S::Elem)>,
    pong: Vec<(ColIdx, S::Elem)>,
    segs: Vec<usize>,
    segs_next: Vec<usize>,
}

impl<S: Semiring> MergeAccumulator<S> {
    /// Accumulator with flop-bound scratch capacity.
    pub fn new(max_row_flop: usize) -> Self {
        MergeAccumulator {
            ping: Vec::with_capacity(max_row_flop),
            pong: Vec::with_capacity(max_row_flop),
            segs: Vec::new(),
            segs_next: Vec::new(),
        }
    }

    /// Merge the scaled B-rows selected by row `i` of `A`; afterwards
    /// `self.ping` holds the combined row (ascending, deduplicated).
    fn merge_row(&mut self, a: &Csr<S::Elem>, b: &Csr<S::Elem>, i: usize) {
        // Load phase: one segment per (non-empty) scaled B-row.
        self.ping.clear();
        self.segs.clear();
        self.segs.push(0);
        for (&k, &aval) in a.row_cols(i).iter().zip(a.row_vals(i)) {
            let kr = k as usize;
            let r = b.row_range(kr);
            if r.is_empty() {
                continue;
            }
            self.ping.extend(
                b.cols()[r.clone()]
                    .iter()
                    .zip(&b.vals()[r])
                    .map(|(&c, &v)| (c, S::mul(aval, v))),
            );
            self.segs.push(self.ping.len());
        }
        // Merge rounds: pairwise-merge adjacent segments until one.
        while self.segs.len() > 2 {
            self.pong.clear();
            self.segs_next.clear();
            self.segs_next.push(0);
            let mut s = 0;
            while s + 2 < self.segs.len() {
                let (a0, a1, a2) = (self.segs[s], self.segs[s + 1], self.segs[s + 2]);
                merge_two::<S>(&self.ping[a0..a1], &self.ping[a1..a2], &mut self.pong);
                self.segs_next.push(self.pong.len());
                s += 2;
            }
            if s + 1 < self.segs.len() {
                // odd segment carried to the next round
                self.pong
                    .extend_from_slice(&self.ping[self.segs[s]..self.segs[s + 1]]);
                self.segs_next.push(self.pong.len());
            }
            std::mem::swap(&mut self.ping, &mut self.pong);
            std::mem::swap(&mut self.segs, &mut self.segs_next);
        }
    }
}

/// Merge two ascending runs, combining equal columns with `S::add`.
fn merge_two<S: Semiring>(
    x: &[(ColIdx, S::Elem)],
    y: &[(ColIdx, S::Elem)],
    out: &mut Vec<(ColIdx, S::Elem)>,
) {
    let (mut p, mut q) = (0usize, 0usize);
    while p < x.len() && q < y.len() {
        use std::cmp::Ordering::*;
        match x[p].0.cmp(&y[q].0) {
            Less => {
                out.push(x[p]);
                p += 1;
            }
            Greater => {
                out.push(y[q]);
                q += 1;
            }
            Equal => {
                out.push((x[p].0, S::add(x[p].1, y[q].1)));
                p += 1;
                q += 1;
            }
        }
    }
    out.extend_from_slice(&x[p..]);
    out.extend_from_slice(&y[q..]);
}

impl<S: Semiring> ReusableAccumulator<S> for MergeAccumulator<S> {
    fn ensure(&mut self, req: &AccumReq) {
        // The ping/pong buffers grow on demand (`Vec::extend`), so
        // reuse is always *correct*; reserving up front just keeps the
        // steady state allocation-free.
        if self.ping.capacity() < req.max_row_flop {
            self.ping.reserve(req.max_row_flop - self.ping.len());
        }
        if self.pong.capacity() < req.max_row_flop {
            self.pong.reserve(req.max_row_flop - self.pong.len());
        }
    }

    fn scrub(&mut self) {
        self.ping.clear();
        self.pong.clear();
        self.segs.clear();
        self.segs_next.clear();
    }
}

impl<S: Semiring> RowAccumulator<S> for MergeAccumulator<S> {
    fn symbolic_row(&mut self, a: &Csr<S::Elem>, b: &Csr<S::Elem>, i: usize) -> usize {
        // Symbolic = the same merge (values along for the ride keeps
        // one code path; MKL's symbolic phase is likewise a full
        // structural pass).
        self.merge_row(a, b, i);
        self.ping.len()
    }

    fn numeric_row(
        &mut self,
        a: &Csr<S::Elem>,
        b: &Csr<S::Elem>,
        i: usize,
        cols: &mut [ColIdx],
        vals: &mut [S::Elem],
        _sorted: bool,
    ) {
        self.merge_row(a, b, i);
        debug_assert_eq!(cols.len(), self.ping.len());
        for (idx, &(c, v)) in self.ping.iter().enumerate() {
            cols[idx] = c;
            vals[idx] = v;
        }
    }
}

struct MergeFactory;

impl<S: Semiring> AccumulatorFactory<S> for MergeFactory {
    type Acc = MergeAccumulator<S>;
    fn make(&self, max_row_flop: usize, _inner: usize, _ncols_b: usize) -> Self::Acc {
        MergeAccumulator::new(max_row_flop)
    }
}

/// Merge SpGEMM. Inputs must be sorted (checked by
/// [`crate::multiply_in`]); output is sorted by construction.
pub fn multiply<S: Semiring>(a: &Csr<S::Elem>, b: &Csr<S::Elem>, pool: &Pool) -> Csr<S::Elem> {
    debug_assert!(
        a.is_sorted() && b.is_sorted(),
        "merge requires sorted inputs"
    );
    exec::two_phase::<S, _>(a, b, OutputOrder::Sorted, pool, &MergeFactory)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algos::reference;
    use spgemm_sparse::{approx_eq_f64, PlusTimes};

    type P = PlusTimes<f64>;

    #[test]
    fn merge_two_combines_duplicates() {
        let x = vec![(1u32, 1.0), (5, 2.0)];
        let y = vec![(0u32, 3.0), (5, 4.0), (9, 5.0)];
        let mut out = Vec::new();
        merge_two::<P>(&x, &y, &mut out);
        assert_eq!(out, vec![(0, 3.0), (1, 1.0), (5, 6.0), (9, 5.0)]);
    }

    #[test]
    fn merge_two_empty_cases() {
        let mut out = Vec::new();
        merge_two::<P>(&[], &[], &mut out);
        assert!(out.is_empty());
        merge_two::<P>(&[(2, 1.0)], &[], &mut out);
        assert_eq!(out, vec![(2, 1.0)]);
    }

    fn check(a: &Csr<f64>, b: &Csr<f64>) {
        let expect = reference::multiply::<P>(a, b);
        for nt in [1usize, 2] {
            let pool = Pool::new(nt);
            let got = multiply::<P>(a, b, &pool);
            assert!(approx_eq_f64(&expect, &got, 1e-12), "nt={nt}");
            assert!(got.is_sorted());
            assert!(got.validate().is_ok());
        }
    }

    #[test]
    fn matches_reference() {
        let a = Csr::from_triplets(
            4,
            4,
            &[
                (0, 0, 1.0),
                (0, 1, 2.0),
                (0, 3, 3.0),
                (1, 2, 4.0),
                (2, 0, 5.0),
                (3, 1, 6.0),
            ],
        )
        .unwrap();
        check(&a, &a);
    }

    #[test]
    fn single_segment_rows_skip_rounds() {
        // rows of A with exactly one entry: the merged row is just the
        // scaled B row, no rounds run
        let a = Csr::from_triplets(3, 3, &[(0, 1, 2.0), (1, 2, 3.0), (2, 0, 4.0)]).unwrap();
        check(&a, &a);
    }

    #[test]
    fn many_segments_exercise_odd_carry() {
        // 5 entries in a row → segments 5, 3, 2, 1: odd carries happen
        let mut trips = vec![];
        for k in 0..5usize {
            trips.push((0usize, k as u32, 1.0 + k as f64));
        }
        for k in 0..5usize {
            trips.push((k, ((k + 1) % 5) as u32, 2.0));
            trips.push((k, ((k + 3) % 5) as u32, -1.0));
        }
        let a = Csr::from_triplets(5, 5, &trips).unwrap();
        check(&a, &a);
    }

    #[test]
    fn empty_matrices() {
        let z = Csr::<f64>::zero(3, 3);
        check(&z, &z);
    }
}
