//! One-phase heap SpGEMM (§4.2.3, after Azad et al.).
//!
//! For each output row, a binary min-heap indexed by column holds one
//! cursor per nonzero of `a_i*` into the corresponding (sorted) row of
//! `B`. Repeatedly extracting the minimum column merges the scaled
//! `B`-rows in ascending column order, accumulating equal columns on
//! the fly — `O(flop · log nnz(a_i*))` per Eq (1), but only
//! `O(nnz(a_i*))` accumulator space.
//!
//! Contracts (paper Table 1): inputs sorted, output sorted. One-phase:
//! no symbolic pass — every thread stages its rows into a flop-bound
//! private buffer, then the driver copies them into place.

use crate::exec::{
    self, AccumReq, ReusableAccumulator, RowAccumulator, StagedKernelFactory, StagedRowKernel,
};
use spgemm_par::Pool;
use spgemm_sparse::{ColIdx, Csr, Semiring};

/// One cursor in the per-row merge: the current entry `b.cols[pos]` of
/// a `B`-row being merged, scaled by the `A` value that selected it.
struct Cursor<V> {
    col: ColIdx,
    pos: usize,
    end: usize,
    aval: V,
}

/// The per-thread heap state, reused across rows.
pub struct HeapKernel<S: Semiring> {
    heap: Vec<Cursor<S::Elem>>,
}

impl<S: Semiring> HeapKernel<S> {
    /// Empty kernel; the heap grows to `nnz(a_i*)` lazily.
    pub fn new() -> Self {
        HeapKernel { heap: Vec::new() }
    }

    #[inline]
    fn sift_down(&mut self, mut at: usize) {
        let len = self.heap.len();
        loop {
            let l = 2 * at + 1;
            if l >= len {
                break;
            }
            let r = l + 1;
            let smallest = if r < len && self.heap[r].col < self.heap[l].col {
                r
            } else {
                l
            };
            if self.heap[smallest].col < self.heap[at].col {
                self.heap.swap(at, smallest);
                at = smallest;
            } else {
                break;
            }
        }
    }

    fn heapify(&mut self) {
        let len = self.heap.len();
        for i in (0..len / 2).rev() {
            self.sift_down(i);
        }
    }

    /// Fill the heap with one cursor per non-empty scaled `B`-row
    /// selected by row `i` of `A`.
    fn load_row(&mut self, a: &Csr<S::Elem>, b: &Csr<S::Elem>, i: usize) {
        self.heap.clear();
        for (&k, &aval) in a.row_cols(i).iter().zip(a.row_vals(i)) {
            let r = b.row_range(k as usize);
            if !r.is_empty() {
                self.heap.push(Cursor {
                    col: b.cols()[r.start],
                    pos: r.start,
                    end: r.end,
                    aval,
                });
            }
        }
        self.heapify();
    }

    /// Pop the minimum-column cursor's current entry and advance it.
    #[inline]
    fn advance_top(&mut self, b: &Csr<S::Elem>) {
        let next = self.heap[0].pos + 1;
        if next < self.heap[0].end {
            self.heap[0].pos = next;
            self.heap[0].col = b.cols()[next];
            self.sift_down(0);
        } else {
            let last = self.heap.len() - 1;
            self.heap.swap(0, last);
            self.heap.pop();
            self.sift_down(0);
        }
    }
}

impl<S: Semiring> Default for HeapKernel<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S: Semiring> StagedRowKernel<S> for HeapKernel<S> {
    fn stage_row(
        &mut self,
        a: &Csr<S::Elem>,
        b: &Csr<S::Elem>,
        i: usize,
        cols: &mut Vec<ColIdx>,
        vals: &mut Vec<S::Elem>,
    ) -> usize {
        self.load_row(a, b, i);
        let mut emitted = 0usize;
        let mut last_col = ColIdx::MAX;
        while let Some(top) = self.heap.first() {
            let col = top.col;
            let contrib = S::mul(top.aval, b.vals()[top.pos]);
            if col == last_col {
                // accumulate into the entry emitted for this column
                let v = vals.last_mut().expect("last_col implies an emitted entry");
                *v = S::add(*v, contrib);
            } else {
                cols.push(col);
                vals.push(contrib);
                last_col = col;
                emitted += 1;
            }
            self.advance_top(b);
        }
        emitted
    }
}

impl<S: Semiring> RowAccumulator<S> for HeapKernel<S> {
    fn symbolic_row(&mut self, a: &Csr<S::Elem>, b: &Csr<S::Elem>, i: usize) -> usize {
        self.load_row(a, b, i);
        let mut count = 0usize;
        let mut last_col = ColIdx::MAX;
        while let Some(top) = self.heap.first() {
            if top.col != last_col {
                last_col = top.col;
                count += 1;
            }
            self.advance_top(b);
        }
        count
    }

    /// The heap merge emits ascending columns by construction, so
    /// `sorted` is ignored (the output is always sorted — Table 1).
    fn numeric_row(
        &mut self,
        a: &Csr<S::Elem>,
        b: &Csr<S::Elem>,
        i: usize,
        cols: &mut [ColIdx],
        vals: &mut [S::Elem],
        _sorted: bool,
    ) {
        self.load_row(a, b, i);
        let mut pos = 0usize;
        let mut last_col = ColIdx::MAX;
        while let Some(top) = self.heap.first() {
            let col = top.col;
            let contrib = S::mul(top.aval, b.vals()[top.pos]);
            if col == last_col {
                vals[pos - 1] = S::add(vals[pos - 1], contrib);
            } else {
                cols[pos] = col;
                vals[pos] = contrib;
                last_col = col;
                pos += 1;
            }
            self.advance_top(b);
        }
        debug_assert_eq!(pos, cols.len(), "row {i}: symbolic/numeric count mismatch");
    }
}

impl<S: Semiring> ReusableAccumulator<S> for HeapKernel<S> {
    fn ensure(&mut self, _req: &AccumReq) {
        // The heap grows to nnz(a_i*) lazily; nothing to pre-size.
    }

    fn scrub(&mut self) {
        self.heap.clear();
    }
}

struct HeapFactory;

impl<S: Semiring> StagedKernelFactory<S> for HeapFactory {
    type Kernel = HeapKernel<S>;
    fn make(&self, _max_row_flop: usize, _inner: usize, _ncols_b: usize) -> Self::Kernel {
        HeapKernel::new()
    }
}

/// Heap SpGEMM. Inputs must have sorted rows (checked by the caller,
/// [`crate::multiply_in`]); output rows are sorted by construction.
pub fn multiply<S: Semiring>(a: &Csr<S::Elem>, b: &Csr<S::Elem>, pool: &Pool) -> Csr<S::Elem> {
    debug_assert!(
        a.is_sorted() && b.is_sorted(),
        "heap requires sorted inputs"
    );
    exec::one_phase_staged::<S, _>(a, b, pool, &HeapFactory, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algos::reference;
    use spgemm_sparse::{approx_eq_f64, PlusTimes};

    type P = PlusTimes<f64>;

    fn check(a: &Csr<f64>, b: &Csr<f64>) {
        let expect = reference::multiply::<P>(a, b);
        for nt in [1usize, 2, 3] {
            let pool = Pool::new(nt);
            let got = multiply::<P>(a, b, &pool);
            assert!(approx_eq_f64(&expect, &got, 1e-12), "nt={nt}");
            assert!(got.is_sorted(), "heap output always sorted");
            assert!(got.validate().is_ok());
        }
    }

    #[test]
    fn small_square() {
        let a = Csr::from_triplets(
            4,
            4,
            &[
                (0, 1, 1.0),
                (0, 2, 2.0),
                (1, 0, 3.0),
                (2, 3, 4.0),
                (3, 0, 5.0),
                (3, 3, 6.0),
            ],
        )
        .unwrap();
        check(&a, &a);
    }

    #[test]
    fn accumulation_across_cursors() {
        // two A-entries hitting the same B column must merge:
        // A row 0 = {0, 1}; B rows 0 and 1 both have column 2.
        let a = Csr::from_triplets(2, 2, &[(0, 0, 2.0), (0, 1, 3.0)]).unwrap();
        let b = Csr::from_triplets(2, 3, &[(0, 2, 10.0), (1, 2, 100.0)]).unwrap();
        let c = multiply::<P>(&a, &b, &Pool::new(1));
        assert_eq!(c.nnz(), 1);
        assert_eq!(c.get(0, 2), Some(&320.0));
    }

    #[test]
    fn rectangular_and_empty_rows() {
        let a = Csr::from_triplets(3, 5, &[(0, 0, 1.0), (2, 4, 2.0)]).unwrap();
        let b = Csr::from_triplets(5, 2, &[(0, 1, 3.0), (4, 0, 4.0)]).unwrap();
        check(&a, &b);
        let z = Csr::<f64>::zero(3, 3);
        check(&z, &z);
    }

    #[test]
    fn duplicate_heavy_merge() {
        // dense-ish 8x8 exercise: every row of A hits every B row
        let mut trips = Vec::new();
        for i in 0..8usize {
            for j in 0..8usize {
                if (i + j) % 2 == 0 {
                    trips.push((i, j as u32, (i * 8 + j) as f64 * 0.25));
                }
            }
        }
        let a = Csr::from_triplets(8, 8, &trips).unwrap();
        check(&a, &a);
    }

    #[test]
    fn heap_property_maintained_under_long_rows() {
        // one row of A with many entries → heap of that many cursors
        let n = 64usize;
        let mut trips: Vec<(usize, u32, f64)> = (0..n).map(|k| (0usize, k as u32, 1.0)).collect();
        for k in 0..n {
            trips.push((k, ((k * 7) % n) as u32, 1.0));
            trips.push((k, ((k * 13 + 1) % n) as u32, 2.0));
        }
        let a = Csr::from_triplets(n, n, &trips).unwrap();
        check(&a, &a);
    }
}
