//! The IKJ baseline of Sulatycke & Ghose (IPPS/SPDP 1998) — the first
//! shared-memory parallel SpGEMM (§2 of the paper).
//!
//! Its signature property is the dense inner loop over `k`: for every
//! output row the algorithm scans *all* `n` potential columns of
//! `a_i*`, giving work `O(n² + flop)`. The paper includes it as the
//! historical baseline that is "only competitive when `flop ≥ n²`";
//! reproducing that crossover is the point of keeping the dense scan.

use crate::algos::spa::SpaAccumulator;
use crate::exec::{self, AccumReq, AccumulatorFactory, ReusableAccumulator, RowAccumulator};
use crate::OutputOrder;
use spgemm_par::Pool;
use spgemm_sparse::{ColIdx, Csr, Semiring};

/// Per-thread state: a dense image of the current `A` row (the IKJ
/// dense-`k` scan) plus a SPA for the output row.
pub struct IkjKernel<S: Semiring> {
    /// `a_stamp[k] == epoch` ⇔ `a_ik ≠ 0` for the current row.
    a_stamp: Vec<u32>,
    a_dense: Vec<S::Elem>,
    epoch: u32,
    spa: SpaAccumulator<S>,
}

impl<S: Semiring> IkjKernel<S> {
    /// Kernel for inner dimension `inner_dim` and output width
    /// `ncols_b`.
    pub fn new(inner_dim: usize, ncols_b: usize) -> Self {
        IkjKernel {
            a_stamp: vec![0; inner_dim],
            a_dense: vec![S::zero(); inner_dim],
            epoch: 0,
            spa: SpaAccumulator::new(ncols_b),
        }
    }

    fn densify_a_row(&mut self, a: &Csr<S::Elem>, i: usize) {
        if self.epoch == u32::MAX {
            self.a_stamp.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
        for (&k, &v) in a.row_cols(i).iter().zip(a.row_vals(i)) {
            self.a_stamp[k as usize] = self.epoch;
            self.a_dense[k as usize] = v;
        }
    }
}

impl<S: Semiring> ReusableAccumulator<S> for IkjKernel<S> {
    fn ensure(&mut self, req: &AccumReq) {
        if req.inner_dim > self.a_stamp.len() {
            // New slots stamped 0 read as empty (epoch ≥ 1 after the
            // first `densify_a_row`).
            self.a_stamp.resize(req.inner_dim, 0);
            self.a_dense.resize(req.inner_dim, S::zero());
        }
        self.spa.ensure(req);
    }

    fn scrub(&mut self) {
        self.spa.scrub();
    }
}

impl<S: Semiring> RowAccumulator<S> for IkjKernel<S> {
    fn symbolic_row(&mut self, a: &Csr<S::Elem>, b: &Csr<S::Elem>, i: usize) -> usize {
        self.densify_a_row(a, i);
        self.spa.begin_row();
        // The defining dense loop: scan every k.
        for k in 0..self.a_stamp.len() {
            if self.a_stamp[k] == self.epoch {
                for &j in b.row_cols(k) {
                    self.spa.insert_symbolic(j);
                }
            }
        }
        self.spa.len()
    }

    fn numeric_row(
        &mut self,
        a: &Csr<S::Elem>,
        b: &Csr<S::Elem>,
        i: usize,
        cols: &mut [ColIdx],
        vals: &mut [S::Elem],
        sorted: bool,
    ) {
        self.densify_a_row(a, i);
        self.spa.begin_row();
        for k in 0..self.a_stamp.len() {
            if self.a_stamp[k] == self.epoch {
                let aval = self.a_dense[k];
                for (&j, &bval) in b.row_cols(k).iter().zip(b.row_vals(k)) {
                    self.spa.insert_numeric(j, S::mul(aval, bval));
                }
            }
        }
        self.spa.extract_into(cols, vals, sorted);
    }
}

struct IkjFactory;

impl<S: Semiring> AccumulatorFactory<S> for IkjFactory {
    type Acc = IkjKernel<S>;
    fn make(&self, _max_row_flop: usize, inner_dim: usize, ncols_b: usize) -> Self::Acc {
        IkjKernel::new(inner_dim, ncols_b)
    }
}

/// IKJ SpGEMM (baseline; `O(n² + flop)` — use on small matrices).
pub fn multiply<S: Semiring>(
    a: &Csr<S::Elem>,
    b: &Csr<S::Elem>,
    order: OutputOrder,
    pool: &Pool,
) -> Csr<S::Elem> {
    exec::two_phase::<S, _>(a, b, order, pool, &IkjFactory)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algos::reference;
    use spgemm_sparse::{approx_eq_f64, PlusTimes};

    type P = PlusTimes<f64>;

    #[test]
    fn matches_reference() {
        let a = Csr::from_triplets(
            4,
            4,
            &[
                (0, 3, 1.0),
                (1, 0, 2.0),
                (1, 2, 3.0),
                (2, 2, 4.0),
                (3, 1, 5.0),
            ],
        )
        .unwrap();
        let expect = reference::multiply::<P>(&a, &a);
        for nt in [1usize, 2] {
            let pool = Pool::new(nt);
            for order in [OutputOrder::Sorted, OutputOrder::Unsorted] {
                let got = multiply::<P>(&a, &a, order, &pool);
                assert!(approx_eq_f64(&expect, &got, 1e-12), "nt={nt} {order:?}");
                assert!(got.validate().is_ok());
            }
        }
    }

    #[test]
    fn rectangular() {
        let a = Csr::from_triplets(2, 6, &[(0, 5, 1.0), (1, 0, 2.0)]).unwrap();
        let b = Csr::from_triplets(6, 3, &[(0, 1, 3.0), (5, 2, 4.0)]).unwrap();
        let expect = reference::multiply::<P>(&a, &b);
        let got = multiply::<P>(&a, &b, OutputOrder::Sorted, &Pool::new(2));
        assert!(approx_eq_f64(&expect, &got, 1e-12));
    }

    #[test]
    fn epoch_wrap_in_densify() {
        let a = Csr::from_triplets(2, 2, &[(0, 0, 1.0), (1, 1, 2.0)]).unwrap();
        let mut k = IkjKernel::<P>::new(2, 2);
        k.epoch = u32::MAX - 1;
        let mut cols = vec![0; 1];
        let mut vals = vec![0.0; 1];
        k.numeric_row(&a, &a, 0, &mut cols, &mut vals, true);
        k.numeric_row(&a, &a, 1, &mut cols, &mut vals, true); // wraps here
        assert_eq!((cols[0], vals[0]), (1, 4.0));
    }
}
