//! Two-phase hash-table SpGEMM (§4.2.1, Figures 7 & 8a).
//!
//! Per-thread open-addressing table with linear probing:
//!
//! * table size is the smallest power of two strictly greater than
//!   `min(ncols(B), max flop of the thread's rows)`, allocated once
//!   per thread inside the parallel region and *reused* across rows
//!   (re-initialization touches only the slots used by the last row);
//! * the hash is `column · HASH_SCALE` masked to the table size, the
//!   paper's multiplicative scheme with its power-of-two modulus;
//! * empty slots hold `-1`, which is why column indices are `i32`-bound;
//! * symbolic phase inserts keys only; numeric phase accumulates
//!   values and finally emits the row — sorted by column on request,
//!   in insertion order otherwise (the §5.4.4 sort-skip).

use crate::exec::{self, AccumReq, AccumulatorFactory, ReusableAccumulator, RowAccumulator};
use crate::OutputOrder;
use spgemm_par::Pool;
use spgemm_sparse::{ColIdx, Csr, Semiring};

/// The multiplicative hashing constant. The reference implementation
/// accompanying the paper (nsparse) uses 107; the ablation bench
/// compares it against a golden-ratio constant.
pub const HASH_SCALE: u32 = 107;

/// Sentinel for an empty slot (column indices are non-negative).
const EMPTY: i32 = -1;

/// A linear-probing hash accumulator for one thread.
///
/// Exposed (as `pub`) so the accumulator microbenchmark can drive it
/// row-by-row outside the full kernel.
pub struct HashAccumulator<S: Semiring> {
    keys: Vec<i32>,
    vals: Vec<S::Elem>,
    /// Slots filled by the current row, for O(row) re-initialization
    /// and insertion-order extraction.
    occupied: Vec<u32>,
    mask: u32,
    /// Scratch for sorted extraction.
    sort_buf: Vec<(ColIdx, S::Elem)>,
    /// Lifetime probe counters backing [`HashAccumulator::collision_factor`]
    /// — the empirical `c` of the paper's Eq (2).
    probes: u64,
    accesses: u64,
}

impl<S: Semiring> HashAccumulator<S> {
    /// Table for rows of at most `max_row_flop` intermediate products
    /// into an output of `ncols_b` columns.
    pub fn new(max_row_flop: usize, ncols_b: usize) -> Self {
        // Figure 7 lines 10-12: size_t = min(Ncol, max flop), table is
        // the smallest 2^n strictly above it (≥1 slot always free).
        let size_t = max_row_flop.min(ncols_b);
        let cap = exec::lowest_p2_above(size_t);
        HashAccumulator {
            keys: vec![EMPTY; cap],
            vals: vec![S::zero(); cap],
            occupied: Vec::with_capacity(size_t.min(cap)),
            mask: (cap - 1) as u32,
            sort_buf: Vec::new(),
            probes: 0,
            accesses: 0,
        }
    }

    /// Current table capacity (a power of two).
    pub fn capacity(&self) -> usize {
        self.keys.len()
    }

    /// Number of distinct keys inserted for the current row.
    pub fn len(&self) -> usize {
        self.occupied.len()
    }

    /// Whether the current row is empty.
    pub fn is_empty(&self) -> bool {
        self.occupied.is_empty()
    }

    /// Find the slot for `col`, inserting it if absent. Returns
    /// `(slot, inserted)`.
    #[inline]
    pub fn probe_insert(&mut self, col: ColIdx) -> (usize, bool) {
        let mut h = col.wrapping_mul(HASH_SCALE) & self.mask;
        self.accesses += 1;
        loop {
            self.probes += 1;
            let slot = h as usize;
            let k = self.keys[slot];
            if k == col as i32 {
                return (slot, false);
            }
            if k == EMPTY {
                self.keys[slot] = col as i32;
                self.occupied.push(h);
                return (slot, true);
            }
            h = (h + 1) & self.mask; // linear probing (Figure 8a)
        }
    }

    /// Average probes per access since construction (or the last
    /// [`HashAccumulator::reset_stats`]) — the collision factor `c` of
    /// Eq (2). Exactly 1.0 when no probe ever collided.
    pub fn collision_factor(&self) -> f64 {
        if self.accesses == 0 {
            1.0
        } else {
            self.probes as f64 / self.accesses as f64
        }
    }

    /// Zero the probe counters.
    pub fn reset_stats(&mut self) {
        self.probes = 0;
        self.accesses = 0;
    }

    /// Symbolic insert: count-only.
    #[inline]
    pub fn insert_symbolic(&mut self, col: ColIdx) -> bool {
        self.probe_insert(col).1
    }

    /// Numeric insert: accumulate `value` at `col`.
    #[inline]
    pub fn insert_numeric(&mut self, col: ColIdx, value: S::Elem) {
        let (slot, inserted) = self.probe_insert(col);
        self.vals[slot] = if inserted {
            value
        } else {
            S::add(self.vals[slot], value)
        };
    }

    /// Clear only the slots used by the current row, keeping the
    /// allocation (the paper's per-row re-initialization).
    pub fn reset(&mut self) {
        for &h in &self.occupied {
            self.keys[h as usize] = EMPTY;
        }
        self.occupied.clear();
    }

    /// Emit the accumulated row into `cols`/`vals` (whose length must
    /// equal [`HashAccumulator::len`]) and reset. `sorted` selects
    /// ascending-column order vs raw insertion order.
    pub fn extract_into(&mut self, cols: &mut [ColIdx], vals: &mut [S::Elem], sorted: bool) {
        debug_assert_eq!(cols.len(), self.occupied.len());
        if sorted {
            self.sort_buf.clear();
            self.sort_buf.extend(
                self.occupied
                    .iter()
                    .map(|&h| (self.keys[h as usize] as ColIdx, self.vals[h as usize])),
            );
            self.sort_buf.sort_unstable_by_key(|&(c, _)| c);
            for (idx, &(c, v)) in self.sort_buf.iter().enumerate() {
                cols[idx] = c;
                vals[idx] = v;
            }
        } else {
            for (idx, &h) in self.occupied.iter().enumerate() {
                cols[idx] = self.keys[h as usize] as ColIdx;
                vals[idx] = self.vals[h as usize];
            }
        }
        self.reset();
    }

    /// Run one full row of `A · B` numerically (used by the staged
    /// one-phase Inspector kernel and the accumulator bench).
    #[inline]
    pub fn accumulate_row(&mut self, a: &Csr<S::Elem>, b: &Csr<S::Elem>, i: usize) {
        for (&k, &aval) in a.row_cols(i).iter().zip(a.row_vals(i)) {
            let kr = k as usize;
            for (&j, &bval) in b.row_cols(kr).iter().zip(b.row_vals(kr)) {
                self.insert_numeric(j, S::mul(aval, bval));
            }
        }
    }
}

impl<S: Semiring> ReusableAccumulator<S> for HashAccumulator<S> {
    fn ensure(&mut self, req: &AccumReq) {
        let size_t = req.max_row_flop.min(req.ncols_b);
        let cap = exec::lowest_p2_above(size_t);
        if cap > self.keys.len() {
            // Rebuild at the larger size (never shrink: a bigger table
            // stays correct and keeps the allocation amortized).
            self.keys.clear();
            self.keys.resize(cap, EMPTY);
            self.vals.clear();
            self.vals.resize(cap, S::zero());
            self.mask = (cap - 1) as u32;
            self.occupied.clear();
        }
    }

    fn scrub(&mut self) {
        self.reset();
    }
}

impl<S: Semiring> RowAccumulator<S> for HashAccumulator<S> {
    fn symbolic_row(&mut self, a: &Csr<S::Elem>, b: &Csr<S::Elem>, i: usize) -> usize {
        for &k in a.row_cols(i) {
            for &j in b.row_cols(k as usize) {
                self.insert_symbolic(j);
            }
        }
        let n = self.occupied.len();
        self.reset();
        n
    }

    fn numeric_row(
        &mut self,
        a: &Csr<S::Elem>,
        b: &Csr<S::Elem>,
        i: usize,
        cols: &mut [ColIdx],
        vals: &mut [S::Elem],
        sorted: bool,
    ) {
        self.accumulate_row(a, b, i);
        self.extract_into(cols, vals, sorted);
    }
}

struct HashFactory;

impl<S: Semiring> AccumulatorFactory<S> for HashFactory {
    type Acc = HashAccumulator<S>;
    fn make(&self, max_row_flop: usize, _inner: usize, ncols_b: usize) -> Self::Acc {
        HashAccumulator::new(max_row_flop, ncols_b)
    }
}

/// Hash SpGEMM: `C = A · B` over semiring `S`.
pub fn multiply<S: Semiring>(
    a: &Csr<S::Elem>,
    b: &Csr<S::Elem>,
    order: OutputOrder,
    pool: &Pool,
) -> Csr<S::Elem> {
    exec::two_phase::<S, _>(a, b, order, pool, &HashFactory)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algos::reference;
    use spgemm_sparse::{approx_eq_f64, PlusTimes};

    type P = PlusTimes<f64>;

    #[test]
    fn accumulator_insert_and_extract_sorted() {
        let mut acc = HashAccumulator::<P>::new(8, 100);
        acc.insert_numeric(42, 1.0);
        acc.insert_numeric(7, 2.0);
        acc.insert_numeric(42, 3.0);
        assert_eq!(acc.len(), 2);
        let mut cols = vec![0; 2];
        let mut vals = vec![0.0; 2];
        acc.extract_into(&mut cols, &mut vals, true);
        assert_eq!(cols, vec![7, 42]);
        assert_eq!(vals, vec![2.0, 4.0]);
        assert!(acc.is_empty(), "extract resets");
    }

    #[test]
    fn accumulator_unsorted_preserves_insertion_order() {
        let mut acc = HashAccumulator::<P>::new(8, 100);
        for c in [9u32, 3, 77] {
            acc.insert_numeric(c, c as f64);
        }
        let mut cols = vec![0; 3];
        let mut vals = vec![0.0; 3];
        acc.extract_into(&mut cols, &mut vals, false);
        assert_eq!(cols, vec![9, 3, 77]);
        assert_eq!(vals, vec![9.0, 3.0, 77.0]);
    }

    #[test]
    fn table_survives_full_load_without_livelock() {
        // capacity strictly above the insert count guarantees an empty
        // slot, so probing always terminates; verify at the boundary.
        let mut acc = HashAccumulator::<P>::new(16, 1000);
        let cap = acc.capacity();
        assert!(cap > 16);
        for c in 0..16u32 {
            acc.insert_numeric(c, 1.0);
        }
        assert_eq!(acc.len(), 16);
        // re-inserting existing keys must still terminate
        for c in 0..16u32 {
            acc.insert_numeric(c, 1.0);
        }
        assert_eq!(acc.len(), 16);
    }

    #[test]
    fn capacity_clamped_by_ncols() {
        let acc = HashAccumulator::<P>::new(1 << 20, 100);
        assert!(acc.capacity() <= 256, "min(Ncol, flop) bound applied");
    }

    #[test]
    fn reset_touches_only_occupied() {
        let mut acc = HashAccumulator::<P>::new(64, 1000);
        acc.insert_numeric(5, 1.0);
        acc.reset();
        assert!(acc.is_empty());
        // the table is fully reusable afterwards
        acc.insert_numeric(5, 2.0);
        let mut c = vec![0; 1];
        let mut v = vec![0.0; 1];
        acc.extract_into(&mut c, &mut v, true);
        assert_eq!(v, vec![2.0]);
    }

    #[test]
    fn collision_factor_tracks_probing() {
        let mut acc = HashAccumulator::<P>::new(64, 1 << 20);
        assert_eq!(acc.collision_factor(), 1.0, "no accesses yet");
        // distinct keys that all hash to different slots: with the
        // multiplicative hash and a 128-slot table, consecutive keys
        // spread — expect a factor near 1
        for k in 0..32u32 {
            acc.insert_symbolic(k);
        }
        let low = acc.collision_factor();
        assert!(low < 1.5, "spread keys should rarely collide: {low}");
        acc.reset();
        acc.reset_stats();
        // adversarial keys: all map to the same slot (multiples of
        // table_size / gcd pattern): k * 128 has the same low bits
        let cap = acc.capacity() as u32;
        for k in 0..32u32 {
            // HASH_SCALE is odd, so multiplying by cap-stride keys
            // keeps the masked hash constant
            acc.insert_symbolic(k * cap);
        }
        let high = acc.collision_factor();
        assert!(high > 4.0, "clustered keys must probe long chains: {high}");
    }

    fn check_against_reference(a: &Csr<f64>, b: &Csr<f64>) {
        let expect = reference::multiply::<P>(a, b);
        let pool = Pool::new(2);
        for order in [OutputOrder::Sorted, OutputOrder::Unsorted] {
            let got = multiply::<P>(a, b, order, &pool);
            assert!(
                approx_eq_f64(&expect, &got, 1e-12),
                "order {order:?}\nexpect {expect:?}\ngot {got:?}"
            );
            if order.is_sorted() {
                assert!(got.is_sorted());
            }
            assert!(got.validate().is_ok());
        }
    }

    #[test]
    fn matches_reference_on_small_matrices() {
        let a = Csr::from_triplets(
            4,
            4,
            &[
                (0, 0, 2.0),
                (0, 3, 1.0),
                (1, 1, -1.0),
                (2, 0, 4.0),
                (2, 2, 0.5),
                (3, 3, 3.0),
            ],
        )
        .unwrap();
        check_against_reference(&a, &a);
    }

    #[test]
    fn matches_reference_rectangular() {
        let a = Csr::from_triplets(3, 5, &[(0, 4, 1.0), (1, 0, 2.0), (2, 2, 3.0)]).unwrap();
        let b = Csr::from_triplets(5, 2, &[(0, 1, 1.0), (2, 0, 2.0), (4, 1, -1.0)]).unwrap();
        check_against_reference(&a, &b);
    }

    #[test]
    fn empty_rows_and_matrices() {
        let z = Csr::<f64>::zero(5, 5);
        check_against_reference(&z, &z);
        let a = Csr::from_triplets(5, 5, &[(2, 2, 1.0)]).unwrap();
        check_against_reference(&a, &z);
        check_against_reference(&z, &a);
    }

    #[test]
    fn unsorted_input_accepted() {
        // hash accepts any input order (Table 1: Any/Select)
        let a = Csr::from_parts(
            4,
            4,
            vec![0, 3, 4, 4, 6],
            vec![3, 0, 1, 2, 3, 1],
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
        )
        .unwrap();
        assert!(!a.is_sorted());
        let b = a.to_sorted();
        let pool = Pool::new(2);
        let c_unsorted_in = multiply::<P>(&a, &b, OutputOrder::Sorted, &pool);
        let c_sorted_in = multiply::<P>(&b, &b, OutputOrder::Sorted, &pool);
        assert!(approx_eq_f64(&c_unsorted_in, &c_sorted_in, 1e-12));
    }
}
