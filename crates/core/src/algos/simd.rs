//! SIMD chunk probing for HashVector SpGEMM (§4.2.2, Figure 8b).
//!
//! The hash table is organized as power-of-two *chunks* of 32-bit
//! keys, one vector register wide: 16 lanes under AVX-512, 8 under
//! AVX2, and an 8-lane scalar emulation everywhere else (used in tests
//! and on non-x86 targets — identical semantics, no intrinsics).
//!
//! A probe compares the whole chunk against the sought key with one
//! vector comparison (Ross, ICDE 2007); a miss then compares against
//! the empty marker `-1` to find the insertion point. Because
//! insertions always take the *first* empty lane, occupied lanes form
//! a prefix of each chunk, exactly as the paper describes ("new
//! element is pushed into the table in order from the beginning").

/// Result of probing one chunk for a key.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChunkProbe {
    /// Key present at this lane.
    Found(usize),
    /// Key absent; first empty lane (insertion point).
    Empty(usize),
    /// Key absent and the chunk is full — continue to the next chunk
    /// (linear probing at chunk granularity).
    Full,
}

/// Instruction set used for probing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimdLevel {
    /// 16-lane AVX-512F probing (KNL / Skylake-X and later).
    Avx512,
    /// 8-lane AVX2 probing (Haswell and later).
    Avx2,
    /// 8-lane portable scalar emulation.
    Scalar,
}

impl SimdLevel {
    /// Keys per chunk at this level.
    #[inline]
    pub fn width(self) -> usize {
        match self {
            SimdLevel::Avx512 => 16,
            SimdLevel::Avx2 | SimdLevel::Scalar => 8,
        }
    }

    /// Display name for benchmark output.
    pub fn name(self) -> &'static str {
        match self {
            SimdLevel::Avx512 => "avx512",
            SimdLevel::Avx2 => "avx2",
            SimdLevel::Scalar => "scalar",
        }
    }
}

/// Detect the best level supported by the running CPU (cached by the
/// standard library's feature-detection macro).
pub fn detect() -> SimdLevel {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f") {
            return SimdLevel::Avx512;
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            return SimdLevel::Avx2;
        }
    }
    SimdLevel::Scalar
}

/// Probe `chunk` (whose length must equal `level.width()`) for `key`.
///
/// `key` must be non-negative (column indices) and the chunk's
/// occupied lanes must precede its empty (`-1`) lanes.
#[inline]
pub fn probe_chunk(level: SimdLevel, chunk: &[i32], key: i32) -> ChunkProbe {
    debug_assert_eq!(chunk.len(), level.width());
    debug_assert!(key >= 0);
    match level {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx512 => unsafe { probe16_avx512(chunk.as_ptr(), key) },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { probe8_avx2(chunk.as_ptr(), key) },
        #[cfg(not(target_arch = "x86_64"))]
        SimdLevel::Avx512 | SimdLevel::Avx2 => probe_scalar(chunk, key),
        SimdLevel::Scalar => probe_scalar(chunk, key),
    }
}

/// Probe a flat *insertion array* for `key`: `keys` is a whole number
/// of chunks and its occupied lanes form one global prefix (the kgen
/// short-row accumulator appends at the first empty lane, so chunk
/// `c` only holds keys once chunks `0..c` are full). Returns the
/// global lane index. This reuses the hash-probe vector comparison
/// for a plain linear membership scan — for rows with at most a few
/// dozen distinct columns the whole search is a handful of vector
/// compares with no hashing, no modulo, and no table reset.
///
/// `ChunkProbe::Full` means every lane of `keys` is occupied and the
/// key is absent — the caller sized the array too small.
#[inline(always)]
pub fn probe_prefix(level: SimdLevel, keys: &[i32], key: i32) -> ChunkProbe {
    debug_assert_eq!(keys.len() % level.width(), 0);
    debug_assert!(key >= 0);
    // One level dispatch per *probe*, not per chunk: the whole chunk
    // loop lives inside the target-feature function so the vector
    // compare inlines into it — the hot path of the kgen short-row
    // kernel is a handful of straight-line vector ops.
    match level {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx512 => unsafe { prefix16_avx512(keys, key) },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { prefix8_avx2(keys, key) },
        #[cfg(not(target_arch = "x86_64"))]
        SimdLevel::Avx512 | SimdLevel::Avx2 => prefix_scalar(keys, key),
        SimdLevel::Scalar => prefix_scalar(keys, key),
    }
}

/// Scalar [`probe_prefix`] (any chunk width — the scan is flat).
#[inline]
fn prefix_scalar(keys: &[i32], key: i32) -> ChunkProbe {
    for (i, &k) in keys.iter().enumerate() {
        if k == key {
            return ChunkProbe::Found(i);
        }
        if k == EMPTY_LANE {
            return ChunkProbe::Empty(i);
        }
    }
    ChunkProbe::Full
}

const EMPTY_LANE: i32 = -1;

/// AVX-512F [`probe_prefix`]: the chunk loop with [`probe16_avx512`]
/// inlined (same target feature).
///
/// # Safety
/// `keys.len()` must be a multiple of 16 and the CPU must support
/// AVX-512F.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
#[inline]
unsafe fn prefix16_avx512(keys: &[i32], key: i32) -> ChunkProbe {
    for (c, chunk) in keys.chunks_exact(16).enumerate() {
        // SAFETY: chunks_exact yields 16 readable lanes.
        match unsafe { probe16_avx512(chunk.as_ptr(), key) } {
            ChunkProbe::Found(lane) => return ChunkProbe::Found(c * 16 + lane),
            ChunkProbe::Empty(lane) => return ChunkProbe::Empty(c * 16 + lane),
            ChunkProbe::Full => {}
        }
    }
    ChunkProbe::Full
}

/// AVX2 [`probe_prefix`]: the chunk loop with [`probe8_avx2`] inlined
/// (same target feature).
///
/// # Safety
/// `keys.len()` must be a multiple of 8 and the CPU must support AVX2.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[inline]
unsafe fn prefix8_avx2(keys: &[i32], key: i32) -> ChunkProbe {
    for (c, chunk) in keys.chunks_exact(8).enumerate() {
        // SAFETY: chunks_exact yields 8 readable lanes.
        match unsafe { probe8_avx2(chunk.as_ptr(), key) } {
            ChunkProbe::Found(lane) => return ChunkProbe::Found(c * 8 + lane),
            ChunkProbe::Empty(lane) => return ChunkProbe::Empty(c * 8 + lane),
            ChunkProbe::Full => {}
        }
    }
    ChunkProbe::Full
}

/// Portable probe with identical semantics to the vector paths.
#[inline]
pub fn probe_scalar(chunk: &[i32], key: i32) -> ChunkProbe {
    for (i, &k) in chunk.iter().enumerate() {
        if k == key {
            return ChunkProbe::Found(i);
        }
        if k == -1 {
            // occupied lanes are a prefix: the first -1 is the
            // insertion point and the key cannot appear later.
            return ChunkProbe::Empty(i);
        }
    }
    ChunkProbe::Full
}

/// AVX-512F probe over 16 lanes.
///
/// # Safety
/// `ptr` must point at 16 readable `i32`s and the CPU must support
/// AVX-512F (guaranteed by construction via [`detect`]).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
#[inline]
unsafe fn probe16_avx512(ptr: *const i32, key: i32) -> ChunkProbe {
    use std::arch::x86_64::*;
    // SAFETY: caller contract — 16 readable lanes at `ptr`.
    let v = unsafe { _mm512_loadu_si512(ptr as *const _) };
    let eq = _mm512_cmpeq_epi32_mask(v, _mm512_set1_epi32(key));
    if eq != 0 {
        return ChunkProbe::Found(eq.trailing_zeros() as usize);
    }
    let empty = _mm512_cmpeq_epi32_mask(v, _mm512_set1_epi32(-1));
    if empty != 0 {
        // __builtin_ctz of the comparison mask, as in the paper.
        ChunkProbe::Empty(empty.trailing_zeros() as usize)
    } else {
        ChunkProbe::Full
    }
}

/// AVX2 probe over 8 lanes.
///
/// # Safety
/// `ptr` must point at 8 readable `i32`s and the CPU must support
/// AVX2.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[inline]
unsafe fn probe8_avx2(ptr: *const i32, key: i32) -> ChunkProbe {
    use std::arch::x86_64::*;
    // SAFETY: caller contract — 8 readable lanes at `ptr`.
    let v = unsafe { _mm256_loadu_si256(ptr as *const _) };
    let eq = _mm256_cmpeq_epi32(v, _mm256_set1_epi32(key));
    let eq_mask = _mm256_movemask_ps(_mm256_castsi256_ps(eq)) as u32;
    if eq_mask != 0 {
        return ChunkProbe::Found(eq_mask.trailing_zeros() as usize);
    }
    let empty = _mm256_cmpeq_epi32(v, _mm256_set1_epi32(-1));
    let empty_mask = _mm256_movemask_ps(_mm256_castsi256_ps(empty)) as u32;
    if empty_mask != 0 {
        ChunkProbe::Empty(empty_mask.trailing_zeros() as usize)
    } else {
        ChunkProbe::Full
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn levels_available() -> Vec<SimdLevel> {
        let mut v = vec![SimdLevel::Scalar];
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                v.push(SimdLevel::Avx2);
            }
            if std::arch::is_x86_feature_detected!("avx512f") {
                v.push(SimdLevel::Avx512);
            }
        }
        v
    }

    fn chunk_of(level: SimdLevel, occupied: &[i32]) -> Vec<i32> {
        let mut c = vec![-1i32; level.width()];
        c[..occupied.len()].copy_from_slice(occupied);
        c
    }

    #[test]
    fn found_in_every_lane() {
        for level in levels_available() {
            let w = level.width();
            let full: Vec<i32> = (0..w as i32).map(|x| x * 10).collect();
            for lane in 0..w {
                let got = probe_chunk(level, &full, (lane as i32) * 10);
                assert_eq!(got, ChunkProbe::Found(lane), "{level:?} lane {lane}");
            }
        }
    }

    #[test]
    fn empty_lane_located() {
        for level in levels_available() {
            for occ in 0..level.width() {
                let occupied: Vec<i32> = (0..occ as i32).map(|x| x + 100).collect();
                let chunk = chunk_of(level, &occupied);
                let got = probe_chunk(level, &chunk, 7);
                assert_eq!(got, ChunkProbe::Empty(occ), "{level:?} occ {occ}");
            }
        }
    }

    #[test]
    fn full_chunk_reported() {
        for level in levels_available() {
            let w = level.width();
            let full: Vec<i32> = (0..w as i32).collect();
            assert_eq!(
                probe_chunk(level, &full, 999),
                ChunkProbe::Full,
                "{level:?}"
            );
        }
    }

    #[test]
    fn vector_paths_agree_with_scalar() {
        // exhaustive-ish cross-validation on random chunks
        let mut seed = 0x12345678u64;
        let mut next = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as i32
        };
        for level in levels_available() {
            if level == SimdLevel::Scalar {
                continue;
            }
            let w = level.width();
            for _ in 0..2000 {
                let occ = (next() as usize) % (w + 1);
                let mut chunk = vec![-1i32; w];
                for slot in chunk.iter_mut().take(occ) {
                    *slot = next().abs() % 64;
                }
                let key = next().abs() % 64;
                // scalar emulation at the same width is the oracle
                let expect = probe_scalar(&chunk, key);
                let got = probe_chunk(level, &chunk, key);
                assert_eq!(got, expect, "{level:?} chunk {chunk:?} key {key}");
            }
        }
    }

    #[test]
    fn prefix_probe_spans_chunks() {
        for level in levels_available() {
            let w = level.width();
            // two full chunks plus a partial third
            let occ = 2 * w + 3;
            let mut keys = vec![-1i32; 4 * w];
            for (i, k) in keys.iter_mut().take(occ).enumerate() {
                *k = (i as i32) * 7;
            }
            for i in 0..occ {
                assert_eq!(
                    probe_prefix(level, &keys, (i as i32) * 7),
                    ChunkProbe::Found(i),
                    "{level:?} idx {i}"
                );
            }
            assert_eq!(probe_prefix(level, &keys, 5), ChunkProbe::Empty(occ));
            // a completely full array reports Full
            let full: Vec<i32> = (0..(2 * w) as i32).collect();
            assert_eq!(probe_prefix(level, &full, 999), ChunkProbe::Full);
        }
    }

    #[test]
    fn detect_returns_a_supported_level() {
        let l = detect();
        // whatever it picks must actually probe correctly
        let chunk = chunk_of(l, &[5, 9]);
        assert_eq!(probe_chunk(l, &chunk, 9), ChunkProbe::Found(1));
        assert_eq!(probe_chunk(l, &chunk, 4), ChunkProbe::Empty(2));
    }

    #[test]
    fn widths() {
        assert_eq!(SimdLevel::Avx512.width(), 16);
        assert_eq!(SimdLevel::Avx2.width(), 8);
        assert_eq!(SimdLevel::Scalar.width(), 8);
    }
}
