//! Masked SpGEMM: `C = (A · B) ∘ M` computed *without materializing*
//! `A · B`.
//!
//! Triangle counting (§5.6) only ever reads the wedge product `L · U`
//! at the positions of the graph's own edges; masked SpGEMM exploits
//! that by rejecting every intermediate product that falls outside the
//! mask row, shrinking both the accumulator working set (≤ nnz(m_i*)
//! instead of flop(c_i*)) and the output. This is the natural
//! "future work" extension of the paper's kernels and matches the
//! masked primitives of the GraphBLAS ecosystem its applications come
//! from.

use crate::exec::{self, AccumulatorFactory, RowAccumulator};
use crate::OutputOrder;
use spgemm_par::Pool;
use spgemm_sparse::{ColIdx, Csr, Semiring, SparseError};

/// Dense, epoch-stamped accumulator restricted to the mask row.
struct MaskedSpa<'m, S: Semiring, M: Copy + Send + Sync> {
    mask: &'m Csr<M>,
    /// `allowed[j] == epoch` ⇔ `j ∈ m_i*` for the current row.
    allowed: Vec<u32>,
    /// `hit[j] == epoch` ⇔ column `j` accumulated a product.
    hit: Vec<u32>,
    epoch: u32,
    vals: Vec<S::Elem>,
    touched: Vec<ColIdx>,
}

impl<'m, S: Semiring, M: Copy + Send + Sync> MaskedSpa<'m, S, M> {
    fn new(mask: &'m Csr<M>, ncols: usize) -> Self {
        MaskedSpa {
            mask,
            allowed: vec![0; ncols],
            hit: vec![0; ncols],
            epoch: 0,
            vals: vec![S::zero(); ncols],
            touched: Vec::new(),
        }
    }

    fn begin_row(&mut self, i: usize) {
        self.touched.clear();
        if self.epoch == u32::MAX {
            self.allowed.fill(0);
            self.hit.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
        for &c in self.mask.row_cols(i) {
            self.allowed[c as usize] = self.epoch;
        }
    }

    #[inline]
    fn accumulate(&mut self, col: ColIdx, v: S::Elem) {
        let j = col as usize;
        if self.allowed[j] != self.epoch {
            return; // outside the mask: product rejected
        }
        if self.hit[j] == self.epoch {
            self.vals[j] = S::add(self.vals[j], v);
        } else {
            self.hit[j] = self.epoch;
            self.vals[j] = v;
            self.touched.push(col);
        }
    }
}

impl<'m, S: Semiring, M: Copy + Send + Sync> RowAccumulator<S> for MaskedSpa<'m, S, M> {
    fn symbolic_row(&mut self, a: &Csr<S::Elem>, b: &Csr<S::Elem>, i: usize) -> usize {
        self.begin_row(i);
        for &k in a.row_cols(i) {
            for &j in b.row_cols(k as usize) {
                let jj = j as usize;
                if self.allowed[jj] == self.epoch && self.hit[jj] != self.epoch {
                    self.hit[jj] = self.epoch;
                    self.touched.push(j);
                }
            }
        }
        self.touched.len()
    }

    fn numeric_row(
        &mut self,
        a: &Csr<S::Elem>,
        b: &Csr<S::Elem>,
        i: usize,
        cols: &mut [ColIdx],
        vals: &mut [S::Elem],
        sorted: bool,
    ) {
        self.begin_row(i);
        for (&k, &aval) in a.row_cols(i).iter().zip(a.row_vals(i)) {
            let kr = k as usize;
            for (&j, &bval) in b.row_cols(kr).iter().zip(b.row_vals(kr)) {
                self.accumulate(j, S::mul(aval, bval));
            }
        }
        if sorted {
            self.touched.sort_unstable();
        }
        for (idx, &c) in self.touched.iter().enumerate() {
            cols[idx] = c;
            vals[idx] = self.vals[c as usize];
        }
    }
}

struct MaskedFactory<'m, M: Copy + Send + Sync> {
    mask: &'m Csr<M>,
}

impl<'m, S: Semiring, M: Copy + Send + Sync> AccumulatorFactory<S> for MaskedFactory<'m, M> {
    type Acc = MaskedSpa<'m, S, M>;
    fn make(&self, _max_row_flop: usize, _inner: usize, ncols_b: usize) -> Self::Acc {
        MaskedSpa::new(self.mask, ncols_b)
    }
}

/// Masked SpGEMM: `C = (A · B) ∘ M` (structural mask — `M`'s values
/// are ignored, its pattern gates the output).
///
/// Entries of `A · B` outside `M`'s pattern are never accumulated, so
/// the cost is `O(flop)` probes but only `O(Σ nnz(m_i*))` accumulator
/// space and output. The mask must be shaped like the product.
pub fn multiply_masked<S: Semiring, M: Copy + Send + Sync>(
    a: &Csr<S::Elem>,
    b: &Csr<S::Elem>,
    mask: &Csr<M>,
    order: OutputOrder,
    pool: &Pool,
) -> Result<Csr<S::Elem>, SparseError> {
    if a.ncols() != b.nrows() {
        return Err(SparseError::ShapeMismatch {
            left: a.shape(),
            right: b.shape(),
            op: "multiply_masked",
        });
    }
    if mask.shape() != (a.nrows(), b.ncols()) {
        return Err(SparseError::ShapeMismatch {
            left: (a.nrows(), b.ncols()),
            right: mask.shape(),
            op: "multiply_masked (mask shape)",
        });
    }
    Ok(exec::two_phase::<S, _>(
        a,
        b,
        order,
        pool,
        &MaskedFactory { mask },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algos::reference;
    use spgemm_sparse::{approx_eq_f64, ops, PlusTimes};

    type P = PlusTimes<f64>;

    #[test]
    fn equals_multiply_then_hadamard() {
        let a = spgemm_gen::rmat::generate_kind(
            spgemm_gen::RmatKind::G500,
            7,
            6,
            &mut spgemm_gen::rng(1),
        );
        // mask: the matrix's own pattern (the triangle-counting shape)
        let mask = a.map(|_| 1.0f64);
        let pool = Pool::new(2);
        let masked = multiply_masked::<P, f64>(&a, &a, &mask, OutputOrder::Sorted, &pool).unwrap();
        let full = reference::multiply::<P>(&a, &a);
        let expect = ops::hadamard(&full, &mask).unwrap();
        // hadamard multiplies values by the mask's (all-one) values
        assert!(approx_eq_f64(&expect, &masked, 1e-9));
        assert!(masked.nnz() <= mask.nnz());
    }

    #[test]
    fn empty_mask_gives_empty_product() {
        let a = Csr::from_triplets(3, 3, &[(0, 1, 1.0), (1, 2, 2.0), (2, 0, 3.0)]).unwrap();
        let mask = Csr::<u8>::zero(3, 3);
        let pool = Pool::new(1);
        let c = multiply_masked::<P, u8>(&a, &a, &mask, OutputOrder::Sorted, &pool).unwrap();
        assert_eq!(c.nnz(), 0);
    }

    #[test]
    fn mask_wider_than_product_is_harmless() {
        // mask entries where the product is zero simply do not appear
        let a = Csr::from_triplets(2, 2, &[(0, 0, 2.0)]).unwrap();
        let mask = Csr::from_triplets(2, 2, &[(0, 0, 1u8), (1, 1, 1)]).unwrap();
        let pool = Pool::new(1);
        let c = multiply_masked::<P, u8>(&a, &a, &mask, OutputOrder::Sorted, &pool).unwrap();
        assert_eq!(c.nnz(), 1);
        assert_eq!(c.get(0, 0), Some(&4.0));
    }

    #[test]
    fn shape_mismatches_rejected() {
        let a = Csr::<f64>::zero(2, 3);
        let b = Csr::<f64>::zero(3, 4);
        let pool = Pool::new(1);
        let bad_mask = Csr::<u8>::zero(2, 3);
        assert!(multiply_masked::<P, u8>(&a, &b, &bad_mask, OutputOrder::Sorted, &pool).is_err());
        let bad_b = Csr::<f64>::zero(5, 4);
        let mask = Csr::<u8>::zero(2, 4);
        assert!(multiply_masked::<P, u8>(&a, &bad_b, &mask, OutputOrder::Sorted, &pool).is_err());
    }

    #[test]
    fn unsorted_output_same_content() {
        let a = spgemm_gen::rmat::generate_kind(
            spgemm_gen::RmatKind::Er,
            6,
            4,
            &mut spgemm_gen::rng(2),
        );
        let mask = a.map(|_| 1u8);
        let pool = Pool::new(2);
        let s = multiply_masked::<P, u8>(&a, &a, &mask, OutputOrder::Sorted, &pool).unwrap();
        let u = multiply_masked::<P, u8>(&a, &a, &mask, OutputOrder::Unsorted, &pool).unwrap();
        assert!(approx_eq_f64(&s, &u, 1e-12));
        assert!(s.is_sorted());
    }
}
