//! The paper's recipe: which SpGEMM algorithm to use when (§5.7,
//! Table 4), plus the automatic selector behind
//! [`crate::Algorithm::Auto`].
//!
//! Table 4a (real data, keyed on compression ratio CR = flop/nnz(C)):
//!
//! |            | high CR (> 2)   | low CR (≤ 2) |
//! |------------|-----------------|---------------|
//! | A·A sorted | Hash            | Hash          |
//! | A·A unsorted | MKL-inspector | Hash          |
//! | L·U sorted | Hash            | Heap          |
//!
//! Table 4b (synthetic data, keyed on edge factor EF and skew):
//!
//! |                    | sparse (EF ≤ 8) |         | dense (EF > 8) |        |
//! |--------------------|---------|--------|---------|--------|
//! |                    | uniform | skewed | uniform | skewed |
//! | A·A sorted         | Heap    | Heap   | Heap    | Hash   |
//! | A·A unsorted       | HashVec | HashVec| HashVec | Hash   |
//! | tall-skinny sorted | —       | Hash   | —       | HashVec|
//! | tall-skinny unsorted | —     | Hash   | —       | Hash   |
//!
//! (Dashes: combinations the paper did not measure; we fall back to
//! the skewed column, which its tall-skinny experiments used.)

use crate::{Algorithm, OutputOrder};
use spgemm_sparse::{stats, Csr};

/// The multiplication scenario, following the paper's use cases.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpKind {
    /// Squaring / general square × square (§5.4).
    Square,
    /// Triangle-counting `L · U` (§5.6).
    LxU,
    /// Square × tall-skinny (§5.5).
    TallSkinny,
}

/// Non-zero pattern class of Table 4b.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Pattern {
    /// ER-like: row sizes concentrated around the mean.
    Uniform,
    /// G500-like: power-law row sizes.
    Skewed,
}

/// Edge-factor threshold separating Table 4b's "sparse" and "dense"
/// columns.
pub const DENSE_EDGE_FACTOR: f64 = 8.0;

/// Compression-ratio threshold separating Table 4a's regimes.
pub const HIGH_CR: f64 = 2.0;

/// Row-size coefficient-of-variation above which we call a structure
/// skewed (G500 matrices measure ≳ 2; ER and FEM matrices ≲ 0.5).
pub const SKEW_CV: f64 = 1.0;

/// Table 4b: recommendation for synthetic/structural inputs.
pub fn recommend_synthetic(
    op: OpKind,
    pattern: Pattern,
    edge_factor: f64,
    order: OutputOrder,
) -> Algorithm {
    let dense = edge_factor > DENSE_EDGE_FACTOR;
    match (op, order) {
        (OpKind::Square | OpKind::LxU, OutputOrder::Sorted) => {
            if dense && pattern == Pattern::Skewed {
                Algorithm::Hash
            } else {
                Algorithm::Heap
            }
        }
        (OpKind::Square | OpKind::LxU, OutputOrder::Unsorted) => {
            if dense && pattern == Pattern::Skewed {
                Algorithm::Hash
            } else {
                Algorithm::HashVec
            }
        }
        (OpKind::TallSkinny, OutputOrder::Sorted) => {
            if dense {
                Algorithm::HashVec
            } else {
                Algorithm::Hash
            }
        }
        (OpKind::TallSkinny, OutputOrder::Unsorted) => Algorithm::Hash,
    }
}

/// Table 4a: recommendation for real-world inputs with a known (or
/// estimated) compression ratio.
pub fn recommend_real(op: OpKind, compression_ratio: f64, order: OutputOrder) -> Algorithm {
    match (op, order) {
        (OpKind::LxU, OutputOrder::Sorted) if compression_ratio <= HIGH_CR => Algorithm::Heap,
        (_, OutputOrder::Unsorted) if compression_ratio > HIGH_CR => Algorithm::Inspector,
        _ => Algorithm::Hash,
    }
}

/// Classify a matrix's pattern by row-size skew.
pub fn classify_pattern<T: Copy + Send + Sync>(a: &Csr<T>) -> Pattern {
    if stats::structure_stats(a).row_cv > SKEW_CV {
        Pattern::Skewed
    } else {
        Pattern::Uniform
    }
}

/// The automatic selector used by [`crate::Algorithm::Auto`]: infer
/// the scenario from the operand shapes and structure, then apply
/// Table 4b (cheap to evaluate — it needs only row statistics, not a
/// symbolic pass).
pub fn auto_select<T: Copy + Send + Sync>(
    a: &Csr<T>,
    b: &Csr<T>,
    order: OutputOrder,
) -> Algorithm {
    let op = if b.ncols() * 4 <= a.nrows() {
        OpKind::TallSkinny
    } else {
        OpKind::Square
    };
    let pattern = classify_pattern(a);
    let ef = a.avg_row_nnz();
    let mut rec = recommend_synthetic(op, pattern, ef, order);
    // Heap requires sorted inputs; fall back to the hash family when
    // the recipe picks it but the inputs do not qualify.
    if rec.requires_sorted_inputs() && !(a.is_sorted() && b.is_sorted()) {
        rec = match order {
            OutputOrder::Sorted => Algorithm::Hash,
            OutputOrder::Unsorted => Algorithm::HashVec,
        };
    }
    rec
}

#[cfg(test)]
mod tests {
    use super::*;
    use spgemm_gen::{rmat, RmatKind};

    #[test]
    fn table_4b_spot_checks() {
        use Algorithm::*;
        use OutputOrder::*;
        // dense skewed A·A: Hash both ways (paper: "Hash / Hash")
        assert_eq!(recommend_synthetic(OpKind::Square, Pattern::Skewed, 16.0, Sorted), Hash);
        assert_eq!(recommend_synthetic(OpKind::Square, Pattern::Skewed, 16.0, Unsorted), Hash);
        // sparse uniform A·A sorted: Heap
        assert_eq!(recommend_synthetic(OpKind::Square, Pattern::Uniform, 4.0, Sorted), Heap);
        // sparse anything unsorted: HashVec
        assert_eq!(
            recommend_synthetic(OpKind::Square, Pattern::Uniform, 4.0, Unsorted),
            HashVec
        );
        // tall-skinny dense sorted: HashVec; unsorted: Hash
        assert_eq!(
            recommend_synthetic(OpKind::TallSkinny, Pattern::Skewed, 16.0, Sorted),
            HashVec
        );
        assert_eq!(
            recommend_synthetic(OpKind::TallSkinny, Pattern::Skewed, 16.0, Unsorted),
            Hash
        );
    }

    #[test]
    fn table_4a_spot_checks() {
        use Algorithm::*;
        use OutputOrder::*;
        assert_eq!(recommend_real(OpKind::Square, 10.0, Sorted), Hash);
        assert_eq!(recommend_real(OpKind::Square, 1.5, Sorted), Hash);
        assert_eq!(recommend_real(OpKind::Square, 10.0, Unsorted), Inspector);
        assert_eq!(recommend_real(OpKind::Square, 1.5, Unsorted), Hash);
        assert_eq!(recommend_real(OpKind::LxU, 1.5, Sorted), Heap);
        assert_eq!(recommend_real(OpKind::LxU, 10.0, Sorted), Hash);
    }

    #[test]
    fn pattern_classification_separates_er_from_g500() {
        let er = rmat::generate_kind(RmatKind::Er, 10, 16, &mut spgemm_gen::rng(1));
        let g = rmat::generate_kind(RmatKind::G500, 10, 16, &mut spgemm_gen::rng(1));
        assert_eq!(classify_pattern(&er), Pattern::Uniform);
        assert_eq!(classify_pattern(&g), Pattern::Skewed);
    }

    #[test]
    fn auto_select_never_picks_sorted_only_kernel_for_unsorted_input() {
        let er = rmat::generate_kind(RmatKind::Er, 8, 4, &mut spgemm_gen::rng(2));
        let unsorted = spgemm_gen::perm::randomize_columns(&er, &mut spgemm_gen::rng(3));
        let pick = auto_select(&unsorted, &unsorted, OutputOrder::Sorted);
        assert!(!pick.requires_sorted_inputs(), "picked {pick}");
    }

    #[test]
    fn auto_select_detects_tall_skinny() {
        let g = rmat::generate_kind(RmatKind::G500, 9, 16, &mut spgemm_gen::rng(4));
        let ts = spgemm_gen::tallskinny::tall_skinny(&g, 16, &mut spgemm_gen::rng(5)).unwrap();
        let pick = auto_select(&g, &ts, OutputOrder::Unsorted);
        assert_eq!(pick, Algorithm::Hash, "Table 4b tall-skinny unsorted row");
    }
}
