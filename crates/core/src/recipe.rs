//! The paper's recipe: which SpGEMM algorithm to use when (§5.7,
//! Table 4), plus the automatic selector behind
//! [`crate::Algorithm::Auto`].
//!
//! The selector consults two sources, in order:
//!
//! 1. an optional **tuned-selector hook** ([`set_auto_hook`]) —
//!    installed by `spgemm-tune` from a per-machine calibration
//!    profile; it may decline (return `None`) for inputs outside its
//!    calibrated grid;
//! 2. the **static recipe** below — Table 4 exactly as the paper
//!    measured it on KNL and Haswell, used whenever no hook is
//!    installed or the hook declines.
//!
//! Table 4a (real data, keyed on compression ratio CR = flop/nnz(C)):
//!
//! |            | high CR (> 2)   | low CR (≤ 2) |
//! |------------|-----------------|---------------|
//! | A·A sorted | Hash            | Hash          |
//! | A·A unsorted | MKL-inspector | Hash          |
//! | L·U sorted | Hash            | Heap          |
//!
//! Table 4b (synthetic data, keyed on edge factor EF and skew):
//!
//! |                    | sparse (EF ≤ 8) |         | dense (EF > 8) |        |
//! |--------------------|---------|--------|---------|--------|
//! |                    | uniform | skewed | uniform | skewed |
//! | A·A sorted         | Heap    | Heap   | Heap    | Hash   |
//! | A·A unsorted       | HashVec | HashVec| HashVec | Hash   |
//! | tall-skinny sorted | —       | Hash   | —       | HashVec|
//! | tall-skinny unsorted | —     | Hash   | —       | Hash   |
//!
//! (Dashes: combinations the paper did not measure; we fall back to
//! the skewed column, which its tall-skinny experiments used.)

use crate::{Algorithm, OutputOrder};
use spgemm_sparse::{stats, Csr};

/// The multiplication scenario, following the paper's use cases.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpKind {
    /// Squaring / general square × square (§5.4).
    Square,
    /// Triangle-counting `L · U` (§5.6).
    LxU,
    /// Square × tall-skinny (§5.5).
    TallSkinny,
}

/// Non-zero pattern class of Table 4b.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Pattern {
    /// ER-like: row sizes concentrated around the mean.
    Uniform,
    /// G500-like: power-law row sizes.
    Skewed,
}

/// Edge-factor threshold separating Table 4b's "sparse" and "dense"
/// columns.
pub const DENSE_EDGE_FACTOR: f64 = 8.0;

/// Compression-ratio threshold separating Table 4a's regimes.
pub const HIGH_CR: f64 = 2.0;

/// Row-size coefficient-of-variation above which we call a structure
/// skewed (G500 matrices measure ≳ 2; ER and FEM matrices ≲ 0.5).
pub const SKEW_CV: f64 = 1.0;

/// Table 4b: recommendation for synthetic/structural inputs.
pub fn recommend_synthetic(
    op: OpKind,
    pattern: Pattern,
    edge_factor: f64,
    order: OutputOrder,
) -> Algorithm {
    let dense = edge_factor > DENSE_EDGE_FACTOR;
    match (op, order) {
        (OpKind::Square | OpKind::LxU, OutputOrder::Sorted) => {
            if dense && pattern == Pattern::Skewed {
                Algorithm::Hash
            } else {
                Algorithm::Heap
            }
        }
        (OpKind::Square | OpKind::LxU, OutputOrder::Unsorted) => {
            if dense && pattern == Pattern::Skewed {
                Algorithm::Hash
            } else {
                Algorithm::HashVec
            }
        }
        (OpKind::TallSkinny, OutputOrder::Sorted) => {
            if dense {
                Algorithm::HashVec
            } else {
                Algorithm::Hash
            }
        }
        (OpKind::TallSkinny, OutputOrder::Unsorted) => Algorithm::Hash,
    }
}

/// Table 4a: recommendation for real-world inputs with a known (or
/// estimated) compression ratio.
pub fn recommend_real(op: OpKind, compression_ratio: f64, order: OutputOrder) -> Algorithm {
    match (op, order) {
        (OpKind::LxU, OutputOrder::Sorted) if compression_ratio <= HIGH_CR => Algorithm::Heap,
        (_, OutputOrder::Unsorted) if compression_ratio > HIGH_CR => Algorithm::Inspector,
        _ => Algorithm::Hash,
    }
}

/// Classify a row-size coefficient of variation against [`SKEW_CV`] —
/// the single place the uniform/skewed rule lives.
pub fn classify_row_cv(row_cv: f64) -> Pattern {
    if row_cv > SKEW_CV {
        Pattern::Skewed
    } else {
        Pattern::Uniform
    }
}

/// Classify a matrix's pattern by row-size skew.
pub fn classify_pattern<T: Copy + Send + Sync>(a: &Csr<T>) -> Pattern {
    classify_row_cv(stats::structure_stats(a).row_cv)
}

/// The structural summary of one multiply that algorithm selection
/// keys on — everything both the static recipe and a tuned-selector
/// hook need, and nothing that requires a symbolic pass.
#[derive(Clone, Debug, PartialEq)]
pub struct AutoContext {
    /// Inferred scenario (square vs tall-skinny; `L · U` cannot be
    /// inferred from shapes and is available via [`recommend_real`]).
    pub op: OpKind,
    /// Row-skew class of `A`.
    pub pattern: Pattern,
    /// Rows of `A`.
    pub nrows: usize,
    /// Columns of `A` (= rows of `B`).
    pub ncols_a: usize,
    /// Columns of `B`.
    pub ncols_b: usize,
    /// Stored entries of `A`.
    pub nnz_a: usize,
    /// Mean entries per row of `A` (the edge factor of Table 4b).
    pub edge_factor: f64,
    /// Coefficient of variation of `A`'s row sizes.
    pub row_cv: f64,
    /// Whether both operands are column-sorted.
    pub sorted_inputs: bool,
    /// Requested output order.
    pub order: OutputOrder,
}

/// Build the [`AutoContext`] for `A · B` from row statistics only.
pub fn auto_context<T: Copy + Send + Sync>(
    a: &Csr<T>,
    b: &Csr<T>,
    order: OutputOrder,
) -> AutoContext {
    let op = if b.ncols() * 4 <= a.nrows() {
        OpKind::TallSkinny
    } else {
        OpKind::Square
    };
    let ss = stats::structure_stats(a);
    let pattern = classify_row_cv(ss.row_cv);
    AutoContext {
        op,
        pattern,
        nrows: ss.nrows,
        ncols_a: ss.ncols,
        ncols_b: b.ncols(),
        nnz_a: ss.nnz,
        edge_factor: ss.avg_row_nnz,
        row_cv: ss.row_cv,
        sorted_inputs: a.is_sorted() && b.is_sorted(),
        order,
    }
}

/// The static Table-4b selection as a pure function of the context —
/// exactly the paper's recipe, with the sorted-input fallback. This is
/// the path [`auto_select`] takes when no tuned hook is installed, and
/// what a tuned selector falls back to outside its calibrated grid.
pub fn static_select(ctx: &AutoContext) -> Algorithm {
    let mut rec = recommend_synthetic(ctx.op, ctx.pattern, ctx.edge_factor, ctx.order);
    // Heap requires sorted inputs; fall back to the hash family when
    // the recipe picks it but the inputs do not qualify.
    if rec.requires_sorted_inputs() && !ctx.sorted_inputs {
        rec = match ctx.order {
            OutputOrder::Sorted => Algorithm::Hash,
            OutputOrder::Unsorted => Algorithm::HashVec,
        };
    }
    rec
}

/// A tuned-selector callback: maps a context to a concrete algorithm,
/// or `None` to decline (input outside the calibrated grid).
pub type AutoHook = std::sync::Arc<dyn Fn(&AutoContext) -> Option<Algorithm> + Send + Sync>;

static AUTO_HOOK: std::sync::RwLock<Option<AutoHook>> = std::sync::RwLock::new(None);

/// Install `hook` as the first consultation of [`auto_select`]
/// process-wide, replacing any previous hook. `spgemm-tune` calls this
/// when a machine profile is loaded; installing a hook never makes
/// `Auto` unsound — a pick violating an input contract is discarded in
/// favour of the static recipe.
pub fn set_auto_hook(hook: AutoHook) {
    *AUTO_HOOK
        .write()
        .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(hook);
}

/// Remove the tuned-selector hook, restoring pure Table-4 behaviour.
pub fn clear_auto_hook() {
    *AUTO_HOOK
        .write()
        .unwrap_or_else(std::sync::PoisonError::into_inner) = None;
}

/// Whether a tuned-selector hook is currently installed.
pub fn auto_hook_installed() -> bool {
    AUTO_HOOK
        .read()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .is_some()
}

/// Whether `pick` may be used for the multiply `ctx` describes: it
/// must not demand sorted inputs the operands lack, and it must be
/// able to deliver the requested output order.
pub fn pick_admissible(ctx: &AutoContext, pick: Algorithm) -> bool {
    if pick == Algorithm::Auto {
        return false;
    }
    let inputs_ok = ctx.sorted_inputs || !pick.requires_sorted_inputs();
    let output_ok = !ctx.order.is_sorted() || pick.honours_sorted_output();
    inputs_ok && output_ok
}

/// The automatic selector used by [`crate::Algorithm::Auto`]: build
/// the [`AutoContext`] from row statistics, offer it to the tuned
/// hook if one is installed, and otherwise (or if the hook declines
/// or picks an algorithm the context rules out — see
/// [`pick_admissible`]) apply the static Table-4b recipe via
/// [`static_select`].
pub fn auto_select<T: Copy + Send + Sync>(a: &Csr<T>, b: &Csr<T>, order: OutputOrder) -> Algorithm {
    let ctx = auto_context(a, b, order);
    let hook = AUTO_HOOK
        .read()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clone();
    if let Some(hook) = hook {
        if let Some(pick) = hook(&ctx) {
            if pick_admissible(&ctx, pick) {
                return pick;
            }
        }
    }
    static_select(&ctx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spgemm_gen::{rmat, RmatKind};

    #[test]
    fn table_4b_spot_checks() {
        use Algorithm::*;
        use OutputOrder::*;
        // dense skewed A·A: Hash both ways (paper: "Hash / Hash")
        assert_eq!(
            recommend_synthetic(OpKind::Square, Pattern::Skewed, 16.0, Sorted),
            Hash
        );
        assert_eq!(
            recommend_synthetic(OpKind::Square, Pattern::Skewed, 16.0, Unsorted),
            Hash
        );
        // sparse uniform A·A sorted: Heap
        assert_eq!(
            recommend_synthetic(OpKind::Square, Pattern::Uniform, 4.0, Sorted),
            Heap
        );
        // sparse anything unsorted: HashVec
        assert_eq!(
            recommend_synthetic(OpKind::Square, Pattern::Uniform, 4.0, Unsorted),
            HashVec
        );
        // tall-skinny dense sorted: HashVec; unsorted: Hash
        assert_eq!(
            recommend_synthetic(OpKind::TallSkinny, Pattern::Skewed, 16.0, Sorted),
            HashVec
        );
        assert_eq!(
            recommend_synthetic(OpKind::TallSkinny, Pattern::Skewed, 16.0, Unsorted),
            Hash
        );
    }

    #[test]
    fn table_4a_spot_checks() {
        use Algorithm::*;
        use OutputOrder::*;
        assert_eq!(recommend_real(OpKind::Square, 10.0, Sorted), Hash);
        assert_eq!(recommend_real(OpKind::Square, 1.5, Sorted), Hash);
        assert_eq!(recommend_real(OpKind::Square, 10.0, Unsorted), Inspector);
        assert_eq!(recommend_real(OpKind::Square, 1.5, Unsorted), Hash);
        assert_eq!(recommend_real(OpKind::LxU, 1.5, Sorted), Heap);
        assert_eq!(recommend_real(OpKind::LxU, 10.0, Sorted), Hash);
    }

    #[test]
    fn pattern_classification_separates_er_from_g500() {
        let er = rmat::generate_kind(RmatKind::Er, 10, 16, &mut spgemm_gen::rng(1));
        let g = rmat::generate_kind(RmatKind::G500, 10, 16, &mut spgemm_gen::rng(1));
        assert_eq!(classify_pattern(&er), Pattern::Uniform);
        assert_eq!(classify_pattern(&g), Pattern::Skewed);
    }

    /// Every algorithm's admissibility over the full
    /// `sorted_inputs × order` context grid, matched exhaustively so
    /// adding a variant forces this table to be revisited. A pick is
    /// admissible iff the inputs satisfy its sortedness demand and it
    /// can honour the requested output order.
    #[test]
    fn admissibility_exhaustive_over_all_algorithms() {
        let ctx = |sorted_inputs: bool, order: OutputOrder| AutoContext {
            op: OpKind::Square,
            pattern: Pattern::Uniform,
            nrows: 64,
            ncols_a: 64,
            ncols_b: 64,
            nnz_a: 256,
            edge_factor: 4.0,
            row_cv: 0.1,
            sorted_inputs,
            order,
        };
        for algo in Algorithm::ALL {
            // contracts per variant, stated exhaustively
            let (needs_sorted_in, honours_sorted_out, sort_skip) = match algo {
                Algorithm::Hash => (false, true, true),
                Algorithm::HashVec => (false, true, true),
                Algorithm::Heap => (true, true, false),
                Algorithm::Spa => (false, true, true),
                Algorithm::Merge => (true, true, false),
                Algorithm::Inspector => (false, false, true),
                Algorithm::KkHash => (false, true, true),
                Algorithm::Ikj => (false, true, true),
                Algorithm::RowClass => (false, true, true),
                Algorithm::Reference => (false, true, false),
                Algorithm::Auto => unreachable!("ALL excludes Auto"),
            };
            assert_eq!(algo.requires_sorted_inputs(), needs_sorted_in, "{algo}");
            assert_eq!(algo.honours_sorted_output(), honours_sorted_out, "{algo}");
            assert_eq!(algo.supports_sort_skip(), sort_skip, "{algo}");
            for sorted_inputs in [false, true] {
                for order in [OutputOrder::Sorted, OutputOrder::Unsorted] {
                    let expect = (sorted_inputs || !needs_sorted_in)
                        && (!order.is_sorted() || honours_sorted_out);
                    assert_eq!(
                        pick_admissible(&ctx(sorted_inputs, order), algo),
                        expect,
                        "{algo} sorted_inputs={sorted_inputs} {order:?}"
                    );
                }
            }
        }
        // Auto itself is never an admissible concrete pick.
        assert!(!pick_admissible(
            &ctx(true, OutputOrder::Sorted),
            Algorithm::Auto
        ));
    }

    /// Serializes tests that read or write the process-global hook.
    fn hook_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn auto_select_never_picks_sorted_only_kernel_for_unsorted_input() {
        let _guard = hook_lock();
        let er = rmat::generate_kind(RmatKind::Er, 8, 4, &mut spgemm_gen::rng(2));
        let unsorted = spgemm_gen::perm::randomize_columns(&er, &mut spgemm_gen::rng(3));
        let pick = auto_select(&unsorted, &unsorted, OutputOrder::Sorted);
        assert!(!pick.requires_sorted_inputs(), "picked {pick}");
    }

    #[test]
    fn auto_select_detects_tall_skinny() {
        let _guard = hook_lock();
        let g = rmat::generate_kind(RmatKind::G500, 9, 16, &mut spgemm_gen::rng(4));
        let ts = spgemm_gen::tallskinny::tall_skinny(&g, 16, &mut spgemm_gen::rng(5)).unwrap();
        let pick = auto_select(&g, &ts, OutputOrder::Unsorted);
        assert_eq!(pick, Algorithm::Hash, "Table 4b tall-skinny unsorted row");
    }

    #[test]
    fn auto_select_matches_static_select_without_hook() {
        let _guard = hook_lock();
        clear_auto_hook();
        for (kind, ef) in [
            (RmatKind::Er, 4),
            (RmatKind::G500, 4),
            (RmatKind::Er, 16),
            (RmatKind::G500, 16),
        ] {
            let a = rmat::generate_kind(kind, 8, ef, &mut spgemm_gen::rng(6));
            for order in [OutputOrder::Sorted, OutputOrder::Unsorted] {
                let ctx = auto_context(&a, &a, order);
                assert_eq!(auto_select(&a, &a, order), static_select(&ctx));
            }
        }
    }

    #[test]
    fn hook_overrides_and_clears() {
        let _guard = hook_lock();
        let a = rmat::generate_kind(RmatKind::Er, 8, 4, &mut spgemm_gen::rng(7));
        let ctx = auto_context(&a, &a, OutputOrder::Sorted);
        let static_pick = static_select(&ctx);
        assert_ne!(
            static_pick,
            Algorithm::KkHash,
            "fixture must disagree with the hook"
        );
        set_auto_hook(std::sync::Arc::new(|_| Some(Algorithm::KkHash)));
        assert!(auto_hook_installed());
        assert_eq!(auto_select(&a, &a, OutputOrder::Sorted), Algorithm::KkHash);
        clear_auto_hook();
        assert!(!auto_hook_installed());
        assert_eq!(auto_select(&a, &a, OutputOrder::Sorted), static_pick);
    }

    #[test]
    fn declining_hook_falls_back_to_static() {
        let _guard = hook_lock();
        set_auto_hook(std::sync::Arc::new(|_| None));
        let a = rmat::generate_kind(RmatKind::G500, 8, 16, &mut spgemm_gen::rng(8));
        let ctx = auto_context(&a, &a, OutputOrder::Unsorted);
        assert_eq!(
            auto_select(&a, &a, OutputOrder::Unsorted),
            static_select(&ctx)
        );
        clear_auto_hook();
    }

    #[test]
    fn contract_violating_hook_pick_is_discarded() {
        let _guard = hook_lock();
        // Hook insists on Heap, but the inputs are unsorted: Auto must
        // refuse and fall back to the static recipe.
        set_auto_hook(std::sync::Arc::new(|_| Some(Algorithm::Heap)));
        let er = rmat::generate_kind(RmatKind::Er, 8, 4, &mut spgemm_gen::rng(9));
        let unsorted = spgemm_gen::perm::randomize_columns(&er, &mut spgemm_gen::rng(10));
        let pick = auto_select(&unsorted, &unsorted, OutputOrder::Sorted);
        assert!(!pick.requires_sorted_inputs(), "picked {pick}");
        clear_auto_hook();
    }
}
