//! Row-class specialized numeric kernels (`Algorithm::RowClass`).
//!
//! The paper's central finding is that no single accumulator wins:
//! the right kernel depends on row density (§5, figs 11–13). The
//! monolithic kernels in [`crate::algos`] pick one accumulator for
//! *every* row of a product; this module picks one *per row class*,
//! following Deveci et al.'s multi-level scheme (PAPERS.md):
//!
//! | class  | flop bound            | kernel                        |
//! |--------|-----------------------|-------------------------------|
//! | tiny   | ≤ 8                   | SIMD insertion array          |
//! | short  | ≤ 32                  | SIMD insertion array          |
//! | medium | < α·ncols(B)          | linear-probing hash table     |
//! | dense  | ≥ α·ncols(B) (α = ¼)  | dense SPA                     |
//!
//! Rows are classified from the per-row flop counts the inspector
//! already computes ([`crate::exec::plan`]) and grouped into per-class
//! work queues at plan-bind time, so the numeric phase runs each
//! bucket back-to-back with no per-row branching. The plan also keeps
//! *compressed column indices* — a plan-private gathered `u16` copy of
//! each operand's column array when its width fits (fig 14's
//! compression applied to speed: the hot inner loops move half the
//! index bytes) — without touching the shared [`Csr`].
//!
//! **Parity invariant**: every class kernel accumulates duplicate
//! columns in `k`-encounter order and emits distinct columns in
//! first-encounter order (unsorted) or ascending order (sorted), just
//! like the hash accumulator. RowClass output is therefore
//! byte-for-byte identical to [`crate::Algorithm::Hash`] — the
//! property the `prop_plan` and `delta_oracle` suites pin down.

use crate::algos::hash::HashAccumulator;
use crate::algos::simd::{self, ChunkProbe, SimdLevel};
use crate::algos::spa::SpaAccumulator;
use crate::exec::{AccumReq, MultiplyStats, ReusableAccumulator, RowAccumulator};
use spgemm_obs as obs;
use spgemm_par::{scan, unsync::SharedMutSlice, Pool, WorkspacePool};
use spgemm_sparse::{ColIdx, Csr, Semiring};

/// Largest flop count classified [`RowClass::Tiny`].
pub const TINY_MAX_FLOP: u64 = 8;
/// Largest flop count classified [`RowClass::Short`]. Also the
/// capacity of the SIMD insertion array (a row with `flop ≤ 32` has at
/// most 32 distinct output columns), kept a multiple of every
/// [`SimdLevel`] chunk width.
pub const SHORT_MAX_FLOP: u64 = 32;

/// Sentinel for an empty insertion-array lane (column indices are
/// non-negative — the same convention as the hash table).
const EMPTY: i32 = -1;

/// Smallest flop count classified [`RowClass::Dense`] for an output of
/// `ncols_b` columns: a quarter of the output width (never below the
/// short-row bound). At that fill rate the `O(ncols(B))` dense SPA
/// array is already mostly touched, so direct indexing beats hashing.
pub fn dense_cutoff(ncols_b: usize) -> u64 {
    (ncols_b.div_ceil(4) as u64).max(SHORT_MAX_FLOP + 1)
}

/// The four row classes of the bucketed numeric phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RowClass {
    /// `flop ≤ 8` — SIMD insertion array, insertion-sort emit.
    Tiny = 0,
    /// `flop ≤ 32` — SIMD insertion array.
    Short = 1,
    /// Everything between short and dense — hash accumulator.
    Medium = 2,
    /// `flop ≥ `[`dense_cutoff`] — dense SPA.
    Dense = 3,
}

impl RowClass {
    /// Classify a row by its flop count against output width
    /// `ncols_b`. Monotone in `flop`, which is what lets one
    /// accumulator sized for a worker's *largest* row serve every
    /// class that worker can encounter.
    #[inline]
    pub fn classify(flop: u64, ncols_b: usize) -> RowClass {
        if flop <= TINY_MAX_FLOP {
            RowClass::Tiny
        } else if flop <= SHORT_MAX_FLOP {
            RowClass::Short
        } else if flop >= dense_cutoff(ncols_b) {
            RowClass::Dense
        } else {
            RowClass::Medium
        }
    }

    /// Display name (bench output, metrics).
    pub fn name(self) -> &'static str {
        match self {
            RowClass::Tiny => "tiny",
            RowClass::Short => "short",
            RowClass::Medium => "medium",
            RowClass::Dense => "dense",
        }
    }
}

/// All classes in queue-processing order.
pub const CLASSES: [RowClass; 4] = [
    RowClass::Tiny,
    RowClass::Short,
    RowClass::Medium,
    RowClass::Dense,
];

/// Per-class row counts for `A · B`, classified exactly as a RowClass
/// plan would. Serial; used by the bench for bucket-occupancy stats.
pub fn bucket_occupancy<T: Copy>(a: &Csr<T>, b: &Csr<T>) -> [u64; 4] {
    let mut occ = [0u64; 4];
    for i in 0..a.nrows() {
        let flop = row_flop(a, b, i);
        occ[RowClass::classify(flop, b.ncols()) as usize] += 1;
    }
    occ
}

/// `flop(c_i*)` of one output row (the quantity `exec::plan` computes
/// for all rows at once).
#[inline]
pub(crate) fn row_flop<A, B>(a: &Csr<A>, b: &Csr<B>, i: usize) -> u64 {
    a.row_cols(i)
        .iter()
        .map(|&k| b.row_nnz(k as usize) as u64)
        .sum()
}

/// A column-index source for the hot inner loops: the operand's own
/// `u32` indices, or the plan-private gathered `u16` copy when the
/// indexed dimension fits ([`RowClassSpec`]'s compression rule).
pub(crate) trait IdxElem: Copy + Send + Sync + 'static {
    /// Widen to a row/column index.
    fn as_usize(self) -> usize;
    /// Widen to a [`ColIdx`].
    fn as_col(self) -> ColIdx;
}

impl IdxElem for u16 {
    #[inline(always)]
    fn as_usize(self) -> usize {
        self as usize
    }
    #[inline(always)]
    fn as_col(self) -> ColIdx {
        self as ColIdx
    }
}

impl IdxElem for u32 {
    #[inline(always)]
    fn as_usize(self) -> usize {
        self as usize
    }
    #[inline(always)]
    fn as_col(self) -> ColIdx {
        self
    }
}

/// The plan-private side of a RowClass bind: per-worker per-class row
/// queues, bucket occupancy, and the compressed column-index copies.
/// Rebuilt on every (re)bind — all `O(nrows + nnz)`, a fraction of the
/// symbolic pass it precedes.
pub(crate) struct RowClassSpec {
    /// `queues[w][class]` — the rows of worker `w`'s partition range in
    /// that class, ascending.
    queues: Vec<[Vec<u32>; 4]>,
    /// `A`'s column indices gathered to `u16` when `ncols(A) < 2¹⁶`
    /// (they index rows of `B`, i.e. the inner dimension).
    a16: Option<Vec<u16>>,
    /// `B`'s column indices gathered to `u16` when `ncols(B) < 2¹⁶`.
    b16: Option<Vec<u16>>,
}

/// The compression decision rule: a dimension fits `u16` iff it is
/// strictly below 2¹⁶ (every index is `< dim`).
fn fits_u16(dim: usize) -> bool {
    dim < (1 << 16)
}

impl RowClassSpec {
    /// Classify every row from the plan's flop counts, build the
    /// per-worker class queues, and gather the compressed index
    /// copies. Also publishes the `plan.rowclass.*` obs counters.
    pub(crate) fn build<A: Copy, B: Copy>(
        a: &Csr<A>,
        b: &Csr<B>,
        stats: &MultiplyStats,
    ) -> RowClassSpec {
        let ncols_b = b.ncols();
        let nworkers = stats.offsets.len().saturating_sub(1);
        let mut queues: Vec<[Vec<u32>; 4]> = (0..nworkers).map(|_| Default::default()).collect();
        let mut occupancy = [0u64; 4];
        for (w, wq) in queues.iter_mut().enumerate() {
            for i in stats.offsets[w]..stats.offsets[w + 1] {
                let class = RowClass::classify(stats.row_flops[i], ncols_b);
                wq[class as usize].push(i as u32);
                occupancy[class as usize] += 1;
            }
        }
        let gather = |cols: &[ColIdx]| cols.iter().map(|&c| c as u16).collect::<Vec<u16>>();
        let a16 = fits_u16(a.ncols()).then(|| gather(a.cols()));
        let b16 = fits_u16(ncols_b).then(|| gather(b.cols()));
        if obs::enabled() {
            static TINY: obs::CounterSite = obs::CounterSite::new("plan", "plan.rowclass.tiny");
            static SHORT: obs::CounterSite = obs::CounterSite::new("plan", "plan.rowclass.short");
            static MEDIUM: obs::CounterSite = obs::CounterSite::new("plan", "plan.rowclass.medium");
            static DENSE: obs::CounterSite = obs::CounterSite::new("plan", "plan.rowclass.dense");
            static COLS16: obs::CounterSite = obs::CounterSite::new("plan", "plan.rowclass.cols16");
            static COLS32: obs::CounterSite = obs::CounterSite::new("plan", "plan.rowclass.cols32");
            TINY.add(occupancy[RowClass::Tiny as usize]);
            SHORT.add(occupancy[RowClass::Short as usize]);
            MEDIUM.add(occupancy[RowClass::Medium as usize]);
            DENSE.add(occupancy[RowClass::Dense as usize]);
            for compressed in [a16.is_some(), b16.is_some()] {
                if compressed {
                    COLS16.incr();
                } else {
                    COLS32.incr();
                }
            }
        }
        RowClassSpec { queues, a16, b16 }
    }

    /// Rows per class across all workers.
    #[cfg(test)]
    pub(crate) fn occupancy(&self) -> [u64; 4] {
        let mut occ = [0u64; 4];
        for wq in &self.queues {
            for (c, q) in wq.iter().enumerate() {
                occ[c] += q.len() as u64;
            }
        }
        occ
    }
}

/// The composite per-thread accumulator behind `Algorithm::RowClass`:
/// one specialized accumulator per row class, dispatched by the row's
/// class. Implements the same `RowAccumulator` contract as the
/// monolithic accumulators, so the delta paths (`rebind_rows` /
/// `execute_rows`) drive it row-by-row unchanged — each recomputed row
/// re-derives its class from its current flop count.
pub struct RowClassAccumulator<S: Semiring> {
    level: SimdLevel,
    /// Insertion array for tiny/short rows: `SHORT_MAX_FLOP` lanes of
    /// keys (`-1` empty, occupied lanes a global prefix in insertion
    /// order) with a parallel value array. Probed by
    /// [`simd::probe_prefix`] — a handful of vector compares, no
    /// hashing, no table reset.
    skeys: Vec<i32>,
    svals: Vec<S::Elem>,
    slen: usize,
    /// Medium rows: the ordinary linear-probing hash table, sized by
    /// the *medium* flop bound (strictly below [`dense_cutoff`]) — a
    /// smaller, more cache-resident table than a monolithic Hash plan
    /// would allocate when dense rows exist.
    hash: HashAccumulator<S>,
    /// Dense rows: the `O(ncols(B))` SPA, created only when the
    /// accumulator's requirements actually include a dense row.
    spa: Option<SpaAccumulator<S>>,
}

impl<S: Semiring> RowClassAccumulator<S> {
    /// Accumulator for rows of at most `max_row_flop` intermediate
    /// products into an output of `ncols_b` columns.
    pub fn new(max_row_flop: usize, ncols_b: usize, level: SimdLevel) -> Self {
        let medium_bound = max_row_flop.min((dense_cutoff(ncols_b) - 1) as usize);
        let spa = matches!(
            RowClass::classify(max_row_flop as u64, ncols_b),
            RowClass::Dense
        )
        .then(|| SpaAccumulator::new(ncols_b));
        RowClassAccumulator {
            level,
            skeys: vec![EMPTY; SHORT_MAX_FLOP as usize],
            svals: vec![S::zero(); SHORT_MAX_FLOP as usize],
            slen: 0,
            hash: HashAccumulator::new(medium_bound, ncols_b),
            spa,
        }
    }

    /// The SPA for a dense row, created on first need (steady-state
    /// executions of a plan with dense rows find it already built by
    /// the warm-up pass, so this never allocates there).
    fn spa_mut(&mut self, ncols_b: usize) -> &mut SpaAccumulator<S> {
        let spa = self.spa.get_or_insert_with(|| SpaAccumulator::new(ncols_b));
        spa.ensure(&AccumReq {
            max_row_flop: 0,
            inner_dim: 0,
            ncols_b,
        });
        spa
    }

    #[inline(always)]
    fn short_insert_symbolic(&mut self, col: ColIdx) {
        match simd::probe_prefix(self.level, &self.skeys, col as i32) {
            ChunkProbe::Found(_) => {}
            ChunkProbe::Empty(idx) => {
                debug_assert_eq!(idx, self.slen, "occupied lanes must stay a prefix");
                self.skeys[idx] = col as i32;
                self.slen += 1;
            }
            ChunkProbe::Full => unreachable!("short-row flop bound guarantees a free lane"),
        }
    }

    #[inline(always)]
    fn short_insert_numeric(&mut self, col: ColIdx, value: S::Elem) {
        match simd::probe_prefix(self.level, &self.skeys, col as i32) {
            ChunkProbe::Found(idx) => self.svals[idx] = S::add(self.svals[idx], value),
            ChunkProbe::Empty(idx) => {
                debug_assert_eq!(idx, self.slen, "occupied lanes must stay a prefix");
                self.skeys[idx] = col as i32;
                self.svals[idx] = value;
                self.slen += 1;
            }
            ChunkProbe::Full => unreachable!("short-row flop bound guarantees a free lane"),
        }
    }

    /// Clear the insertion array (occupied lanes only) and return the
    /// row's distinct-column count.
    #[inline]
    fn short_reset(&mut self) -> usize {
        let n = self.slen;
        for k in &mut self.skeys[..n] {
            *k = EMPTY;
        }
        self.slen = 0;
        n
    }

    /// Emit the insertion array into `cols`/`vals` (first-encounter
    /// order; insertion-sorted ascending when `sorted`) and reset it.
    fn short_extract_into(&mut self, cols: &mut [ColIdx], vals: &mut [S::Elem], sorted: bool) {
        debug_assert_eq!(cols.len(), self.slen);
        for idx in 0..self.slen {
            cols[idx] = self.skeys[idx] as ColIdx;
            vals[idx] = self.svals[idx];
        }
        if sorted {
            // Insertion sort — the right tool at ≤ 32 distinct
            // entries (tiny rows are ≤ 8, usually already nearly
            // ordered when B is sorted). Keys are distinct, so any
            // comparison sort yields the same byte-for-byte output as
            // the hash accumulator's sort_unstable.
            insertion_sort_pairs(cols, vals);
        }
        self.short_reset();
    }

    /// Count row `i`'s distinct output columns with the class kernel.
    ///
    /// `inline(always)`: must fold into the `#[target_feature]` drain
    /// clones below so the vector probes inline (checked by objdump —
    /// plain `#[inline]` leaves a call per probed key).
    #[inline(always)]
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn symbolic_row_idx<KA: IdxElem, KB: IdxElem>(
        &mut self,
        class: RowClass,
        a_rpts: &[usize],
        a_cols: &[KA],
        b_rpts: &[usize],
        b_cols: &[KB],
        i: usize,
        ncols_b: usize,
    ) -> usize {
        let arow = &a_cols[a_rpts[i]..a_rpts[i + 1]];
        match class {
            RowClass::Tiny | RowClass::Short => {
                for ka in arow {
                    let k = ka.as_usize();
                    for jb in &b_cols[b_rpts[k]..b_rpts[k + 1]] {
                        self.short_insert_symbolic(jb.as_col());
                    }
                }
                self.short_reset()
            }
            RowClass::Medium => {
                for ka in arow {
                    let k = ka.as_usize();
                    for jb in &b_cols[b_rpts[k]..b_rpts[k + 1]] {
                        self.hash.insert_symbolic(jb.as_col());
                    }
                }
                let n = self.hash.len();
                self.hash.reset();
                n
            }
            RowClass::Dense => {
                let spa = self.spa_mut(ncols_b);
                spa.begin_row();
                for ka in arow {
                    let k = ka.as_usize();
                    for jb in &b_cols[b_rpts[k]..b_rpts[k + 1]] {
                        spa.insert_symbolic(jb.as_col());
                    }
                }
                spa.len()
            }
        }
    }

    /// Compute row `i` into pre-sliced output with the class kernel.
    /// (`inline(always)`: see [`Self::symbolic_row_idx`].)
    #[inline(always)]
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn numeric_row_idx<KA: IdxElem, KB: IdxElem>(
        &mut self,
        class: RowClass,
        a_rpts: &[usize],
        a_cols: &[KA],
        a_vals: &[S::Elem],
        b_rpts: &[usize],
        b_cols: &[KB],
        b_vals: &[S::Elem],
        i: usize,
        cols: &mut [ColIdx],
        vals: &mut [S::Elem],
        sorted: bool,
        ncols_b: usize,
    ) {
        let aspan = a_rpts[i]..a_rpts[i + 1];
        let arow = &a_cols[aspan.clone()];
        let arow_vals = &a_vals[aspan];
        match class {
            RowClass::Tiny | RowClass::Short => {
                for (ka, &av) in arow.iter().zip(arow_vals) {
                    let k = ka.as_usize();
                    let bspan = b_rpts[k]..b_rpts[k + 1];
                    for (jb, &bv) in b_cols[bspan.clone()].iter().zip(&b_vals[bspan]) {
                        self.short_insert_numeric(jb.as_col(), S::mul(av, bv));
                    }
                }
                self.short_extract_into(cols, vals, sorted);
            }
            RowClass::Medium => {
                for (ka, &av) in arow.iter().zip(arow_vals) {
                    let k = ka.as_usize();
                    let bspan = b_rpts[k]..b_rpts[k + 1];
                    for (jb, &bv) in b_cols[bspan.clone()].iter().zip(&b_vals[bspan]) {
                        self.hash.insert_numeric(jb.as_col(), S::mul(av, bv));
                    }
                }
                self.hash.extract_into(cols, vals, sorted);
            }
            RowClass::Dense => {
                let spa = self.spa_mut(ncols_b);
                spa.begin_row();
                for (ka, &av) in arow.iter().zip(arow_vals) {
                    let k = ka.as_usize();
                    let bspan = b_rpts[k]..b_rpts[k + 1];
                    for (jb, &bv) in b_cols[bspan.clone()].iter().zip(&b_vals[bspan]) {
                        spa.insert_numeric(jb.as_col(), S::mul(av, bv));
                    }
                }
                spa.extract_into(cols, vals, sorted);
            }
        }
    }
}

/// In-place insertion sort of parallel `(cols, vals)` arrays by
/// column. Allocation-free; `cols` is duplicate-free here.
fn insertion_sort_pairs<E: Copy>(cols: &mut [ColIdx], vals: &mut [E]) {
    for i in 1..cols.len() {
        let (c, v) = (cols[i], vals[i]);
        let mut j = i;
        while j > 0 && cols[j - 1] > c {
            cols[j] = cols[j - 1];
            vals[j] = vals[j - 1];
            j -= 1;
        }
        cols[j] = c;
        vals[j] = v;
    }
}

impl<S: Semiring> RowAccumulator<S> for RowClassAccumulator<S> {
    fn symbolic_row(&mut self, a: &Csr<S::Elem>, b: &Csr<S::Elem>, i: usize) -> usize {
        // Per-row class dispatch from the row's *current* flop count —
        // this is what lets `rebind_rows` re-count an edited row that
        // crossed a class boundary without any plan-level bookkeeping.
        let class = RowClass::classify(row_flop(a, b, i), b.ncols());
        self.symbolic_row_idx(class, a.rpts(), a.cols(), b.rpts(), b.cols(), i, b.ncols())
    }

    fn numeric_row(
        &mut self,
        a: &Csr<S::Elem>,
        b: &Csr<S::Elem>,
        i: usize,
        cols: &mut [ColIdx],
        vals: &mut [S::Elem],
        sorted: bool,
    ) {
        let class = RowClass::classify(row_flop(a, b, i), b.ncols());
        self.numeric_row_idx(
            class,
            a.rpts(),
            a.cols(),
            a.vals(),
            b.rpts(),
            b.cols(),
            b.vals(),
            i,
            cols,
            vals,
            sorted,
            b.ncols(),
        );
    }
}

impl<S: Semiring> ReusableAccumulator<S> for RowClassAccumulator<S> {
    fn ensure(&mut self, req: &AccumReq) {
        let medium = AccumReq {
            max_row_flop: req
                .max_row_flop
                .min((dense_cutoff(req.ncols_b) - 1) as usize),
            ..*req
        };
        self.hash.ensure(&medium);
        if matches!(
            RowClass::classify(req.max_row_flop as u64, req.ncols_b),
            RowClass::Dense
        ) {
            // Pre-build the SPA here (the acquire path) so dense rows
            // never allocate inside the row loop of a steady state.
            self.spa_mut(req.ncols_b);
        }
    }

    fn scrub(&mut self) {
        self.short_reset();
        self.hash.scrub();
        if let Some(spa) = &mut self.spa {
            spa.scrub();
        }
    }
}

/// Bind the four index-width combinations once per pass, handing the
/// generic body the concrete `(a_cols, b_cols)` slices.
macro_rules! with_cols {
    ($spec:expr, $a:expr, $b:expr, |$ac:ident, $bc:ident| $body:expr) => {
        match (&$spec.a16, &$spec.b16) {
            (Some(a16), Some(b16)) => {
                let ($ac, $bc) = (&a16[..], &b16[..]);
                $body
            }
            (Some(a16), None) => {
                let ($ac, $bc) = (&a16[..], $a.cols());
                $body
            }
            (None, Some(b16)) => {
                let ($ac, $bc) = ($a.cols(), &b16[..]);
                $body
            }
            (None, None) => {
                let ($ac, $bc) = ($a.cols(), $b.cols());
                $body
            }
        }
    };
}

/// One worker's symbolic drain: every class queue back to back. The
/// body is `#[inline(always)]` so the `#[target_feature]` clones below
/// monomorphize the *whole* drain loop — the per-key vector probe
/// ([`simd::probe_prefix`]'s leaf functions) then inlines into the
/// drain instead of costing a function call per probed key across the
/// feature boundary.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn drain_symbolic<S: Semiring, KA: IdxElem, KB: IdxElem>(
    acc: &mut RowClassAccumulator<S>,
    queues: &[Vec<u32>; 4],
    a_rpts: &[usize],
    a_cols: &[KA],
    b_rpts: &[usize],
    b_cols: &[KB],
    width: usize,
    rp: &SharedMutSlice<'_, u64>,
) {
    for class in CLASSES {
        for &i in &queues[class as usize] {
            let i = i as usize;
            let cnt = acc.symbolic_row_idx(class, a_rpts, a_cols, b_rpts, b_cols, i, width) as u64;
            // SAFETY: row `i` belongs to exactly one worker's queues.
            unsafe { rp.write(i + 1, cnt) };
        }
    }
}

/// [`drain_symbolic`] compiled with AVX-512F enabled.
///
/// # Safety
/// The CPU must support AVX-512F.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
#[allow(clippy::too_many_arguments)]
unsafe fn drain_symbolic_avx512<S: Semiring, KA: IdxElem, KB: IdxElem>(
    acc: &mut RowClassAccumulator<S>,
    queues: &[Vec<u32>; 4],
    a_rpts: &[usize],
    a_cols: &[KA],
    b_rpts: &[usize],
    b_cols: &[KB],
    width: usize,
    rp: &SharedMutSlice<'_, u64>,
) {
    drain_symbolic(acc, queues, a_rpts, a_cols, b_rpts, b_cols, width, rp)
}

/// [`drain_symbolic`] compiled with AVX2 enabled.
///
/// # Safety
/// The CPU must support AVX2.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn drain_symbolic_avx2<S: Semiring, KA: IdxElem, KB: IdxElem>(
    acc: &mut RowClassAccumulator<S>,
    queues: &[Vec<u32>; 4],
    a_rpts: &[usize],
    a_cols: &[KA],
    b_rpts: &[usize],
    b_cols: &[KB],
    width: usize,
    rp: &SharedMutSlice<'_, u64>,
) {
    drain_symbolic(acc, queues, a_rpts, a_cols, b_rpts, b_cols, width, rp)
}

/// Dispatch one worker's symbolic drain to the clone matching the
/// accumulator's SIMD level (one dispatch per worker per pass).
#[allow(clippy::too_many_arguments)]
fn drain_symbolic_at<S: Semiring, KA: IdxElem, KB: IdxElem>(
    level: SimdLevel,
    acc: &mut RowClassAccumulator<S>,
    queues: &[Vec<u32>; 4],
    a_rpts: &[usize],
    a_cols: &[KA],
    b_rpts: &[usize],
    b_cols: &[KB],
    width: usize,
    rp: &SharedMutSlice<'_, u64>,
) {
    match level {
        // SAFETY: `level` comes from `simd::detect`, which only
        // reports features the running CPU supports.
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx512 => unsafe {
            drain_symbolic_avx512(acc, queues, a_rpts, a_cols, b_rpts, b_cols, width, rp)
        },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe {
            drain_symbolic_avx2(acc, queues, a_rpts, a_cols, b_rpts, b_cols, width, rp)
        },
        _ => drain_symbolic(acc, queues, a_rpts, a_cols, b_rpts, b_cols, width, rp),
    }
}

/// One worker's numeric drain — same monomorphization scheme as
/// [`drain_symbolic`].
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn drain_numeric<S: Semiring, KA: IdxElem, KB: IdxElem>(
    acc: &mut RowClassAccumulator<S>,
    queues: &[Vec<u32>; 4],
    a_rpts: &[usize],
    a_cols: &[KA],
    a_vals: &[S::Elem],
    b_rpts: &[usize],
    b_cols: &[KB],
    b_vals: &[S::Elem],
    rpts: &[usize],
    sorted: bool,
    width: usize,
    cols_s: &SharedMutSlice<'_, ColIdx>,
    vals_s: &SharedMutSlice<'_, S::Elem>,
) {
    for class in CLASSES {
        for &i in &queues[class as usize] {
            let i = i as usize;
            let span = rpts[i]..rpts[i + 1];
            // SAFETY: row spans are disjoint across workers
            // (contiguous partition, monotone rpts).
            let (c, v) = unsafe { (cols_s.slice_mut(span.clone()), vals_s.slice_mut(span)) };
            acc.numeric_row_idx(
                class, a_rpts, a_cols, a_vals, b_rpts, b_cols, b_vals, i, c, v, sorted, width,
            );
        }
    }
}

/// [`drain_numeric`] compiled with AVX-512F enabled.
///
/// # Safety
/// The CPU must support AVX-512F.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
#[allow(clippy::too_many_arguments)]
unsafe fn drain_numeric_avx512<S: Semiring, KA: IdxElem, KB: IdxElem>(
    acc: &mut RowClassAccumulator<S>,
    queues: &[Vec<u32>; 4],
    a_rpts: &[usize],
    a_cols: &[KA],
    a_vals: &[S::Elem],
    b_rpts: &[usize],
    b_cols: &[KB],
    b_vals: &[S::Elem],
    rpts: &[usize],
    sorted: bool,
    width: usize,
    cols_s: &SharedMutSlice<'_, ColIdx>,
    vals_s: &SharedMutSlice<'_, S::Elem>,
) {
    drain_numeric(
        acc, queues, a_rpts, a_cols, a_vals, b_rpts, b_cols, b_vals, rpts, sorted, width, cols_s,
        vals_s,
    )
}

/// [`drain_numeric`] compiled with AVX2 enabled.
///
/// # Safety
/// The CPU must support AVX2.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn drain_numeric_avx2<S: Semiring, KA: IdxElem, KB: IdxElem>(
    acc: &mut RowClassAccumulator<S>,
    queues: &[Vec<u32>; 4],
    a_rpts: &[usize],
    a_cols: &[KA],
    a_vals: &[S::Elem],
    b_rpts: &[usize],
    b_cols: &[KB],
    b_vals: &[S::Elem],
    rpts: &[usize],
    sorted: bool,
    width: usize,
    cols_s: &SharedMutSlice<'_, ColIdx>,
    vals_s: &SharedMutSlice<'_, S::Elem>,
) {
    drain_numeric(
        acc, queues, a_rpts, a_cols, a_vals, b_rpts, b_cols, b_vals, rpts, sorted, width, cols_s,
        vals_s,
    )
}

/// Dispatch one worker's numeric drain to the clone matching the
/// accumulator's SIMD level.
#[allow(clippy::too_many_arguments)]
fn drain_numeric_at<S: Semiring, KA: IdxElem, KB: IdxElem>(
    level: SimdLevel,
    acc: &mut RowClassAccumulator<S>,
    queues: &[Vec<u32>; 4],
    a_rpts: &[usize],
    a_cols: &[KA],
    a_vals: &[S::Elem],
    b_rpts: &[usize],
    b_cols: &[KB],
    b_vals: &[S::Elem],
    rpts: &[usize],
    sorted: bool,
    width: usize,
    cols_s: &SharedMutSlice<'_, ColIdx>,
    vals_s: &SharedMutSlice<'_, S::Elem>,
) {
    match level {
        // SAFETY: `level` comes from `simd::detect`, which only
        // reports features the running CPU supports.
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx512 => unsafe {
            drain_numeric_avx512(
                acc, queues, a_rpts, a_cols, a_vals, b_rpts, b_cols, b_vals, rpts, sorted, width,
                cols_s, vals_s,
            )
        },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe {
            drain_numeric_avx2(
                acc, queues, a_rpts, a_cols, a_vals, b_rpts, b_cols, b_vals, rpts, sorted, width,
                cols_s, vals_s,
            )
        },
        _ => drain_numeric(
            acc, queues, a_rpts, a_cols, a_vals, b_rpts, b_cols, b_vals, rpts, sorted, width,
            cols_s, vals_s,
        ),
    }
}

/// The bucketed symbolic pass: each worker drains its class queues
/// with pooled accumulators, writing per-row counts; a parallel scan
/// turns them into row pointers. Returns `(rpts, nnz)`.
pub(crate) fn rowclass_symbolic_pass<S: Semiring>(
    ws: &WorkspacePool<RowClassAccumulator<S>>,
    level: SimdLevel,
    spec: &RowClassSpec,
    a: &Csr<S::Elem>,
    b: &Csr<S::Elem>,
    stats: &MultiplyStats,
    pool: &Pool,
) -> (Vec<usize>, usize) {
    let n = a.nrows();
    let (inner, width) = (a.ncols(), b.ncols());
    let mut rpts64 = vec![0u64; n + 1];
    with_cols!(spec, a, b, |ac, bc| {
        let rp = SharedMutSlice::new(&mut rpts64[..]);
        pool.parallel_ranges(&stats.offsets, |wid, range| {
            if range.is_empty() {
                return;
            }
            let req = AccumReq {
                max_row_flop: crate::exec::max_flop_in(&stats.row_flops, range),
                inner_dim: inner,
                ncols_b: width,
            };
            ws.with(
                wid,
                || RowClassAccumulator::new(req.max_row_flop, width, level),
                |acc, reused| {
                    if reused {
                        acc.ensure(&req);
                        acc.scrub();
                    }
                    drain_symbolic_at(
                        level,
                        acc,
                        &spec.queues[wid],
                        a.rpts(),
                        ac,
                        b.rpts(),
                        bc,
                        width,
                        &rp,
                    );
                },
            );
        });
    });
    let total = scan::parallel_inclusive_scan(pool, &mut rpts64) as usize;
    let rpts: Vec<usize> = rpts64.iter().map(|&x| x as usize).collect();
    (rpts, total)
}

/// The bucketed numeric pass into pre-sliced output: each worker runs
/// its queues class-by-class (no per-row kernel branching) over the
/// compressed column indices.
#[allow(clippy::too_many_arguments)]
pub(crate) fn rowclass_numeric_pass<S: Semiring>(
    ws: &WorkspacePool<RowClassAccumulator<S>>,
    level: SimdLevel,
    spec: &RowClassSpec,
    a: &Csr<S::Elem>,
    b: &Csr<S::Elem>,
    stats: &MultiplyStats,
    rpts: &[usize],
    sorted: bool,
    pool: &Pool,
    cols: &mut [ColIdx],
    vals: &mut [S::Elem],
) {
    let (inner, width) = (a.ncols(), b.ncols());
    with_cols!(spec, a, b, |ac, bc| {
        let cols_s = SharedMutSlice::new(cols);
        let vals_s = SharedMutSlice::new(vals);
        pool.parallel_ranges(&stats.offsets, |wid, range| {
            if range.is_empty() {
                return;
            }
            let req = AccumReq {
                max_row_flop: crate::exec::max_flop_in(&stats.row_flops, range),
                inner_dim: inner,
                ncols_b: width,
            };
            ws.with(
                wid,
                || RowClassAccumulator::new(req.max_row_flop, width, level),
                |acc, reused| {
                    if reused {
                        acc.ensure(&req);
                        acc.scrub();
                    }
                    drain_numeric_at(
                        level,
                        acc,
                        &spec.queues[wid],
                        a.rpts(),
                        ac,
                        a.vals(),
                        b.rpts(),
                        bc,
                        b.vals(),
                        rpts,
                        sorted,
                        width,
                        &cols_s,
                        &vals_s,
                    );
                },
            );
        });
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use spgemm_sparse::PlusTimes;

    type P = PlusTimes<f64>;

    #[test]
    fn classify_thresholds() {
        let n = 1000; // dense_cutoff = 250
        assert_eq!(dense_cutoff(n), 250);
        assert_eq!(RowClass::classify(0, n), RowClass::Tiny);
        assert_eq!(RowClass::classify(8, n), RowClass::Tiny);
        assert_eq!(RowClass::classify(9, n), RowClass::Short);
        assert_eq!(RowClass::classify(32, n), RowClass::Short);
        assert_eq!(RowClass::classify(33, n), RowClass::Medium);
        assert_eq!(RowClass::classify(249, n), RowClass::Medium);
        assert_eq!(RowClass::classify(250, n), RowClass::Dense);
        // narrow outputs: the dense cutoff never undercuts the short
        // bound, so the classes stay ordered by flop
        assert_eq!(dense_cutoff(40), 33);
        assert_eq!(RowClass::classify(33, 40), RowClass::Dense);
        for ncols in [1usize, 7, 40, 65, 100_000] {
            let mut last = RowClass::Tiny as usize;
            for flop in 0..400u64 {
                let c = RowClass::classify(flop, ncols) as usize;
                assert!(c >= last, "classify must be monotone in flop");
                last = c;
            }
        }
    }

    #[test]
    fn short_array_accumulates_in_k_encounter_order() {
        let mut acc = RowClassAccumulator::<P>::new(16, 1000, simd::detect());
        acc.short_insert_numeric(42, 1.0);
        acc.short_insert_numeric(7, 2.0);
        acc.short_insert_numeric(42, 3.0);
        assert_eq!(acc.slen, 2);
        let mut cols = vec![0; 2];
        let mut vals = vec![0.0; 2];
        acc.short_extract_into(&mut cols, &mut vals, false);
        assert_eq!(cols, vec![42, 7], "first-encounter order");
        assert_eq!(vals, vec![4.0, 2.0]);
        assert_eq!(acc.slen, 0, "extract resets");
        // sorted emit
        acc.short_insert_numeric(42, 1.0);
        acc.short_insert_numeric(7, 2.0);
        acc.short_insert_numeric(42, 3.0);
        let mut cols = vec![0; 2];
        let mut vals = vec![0.0; 2];
        acc.short_extract_into(&mut cols, &mut vals, true);
        assert_eq!(cols, vec![7, 42]);
        assert_eq!(vals, vec![2.0, 4.0]);
    }

    #[test]
    fn short_array_handles_full_capacity() {
        let mut acc = RowClassAccumulator::<P>::new(32, 1 << 20, simd::detect());
        for c in 0..SHORT_MAX_FLOP as u32 {
            acc.short_insert_numeric(c * 3, 1.0);
        }
        assert_eq!(acc.slen, SHORT_MAX_FLOP as usize);
        // duplicates at full load must still resolve (no livelock,
        // unlike a full hash table)
        for c in 0..SHORT_MAX_FLOP as u32 {
            acc.short_insert_numeric(c * 3, 1.0);
        }
        let mut cols = vec![0; 32];
        let mut vals = vec![0.0; 32];
        acc.short_extract_into(&mut cols, &mut vals, true);
        assert!(cols.windows(2).all(|w| w[0] < w[1]));
        assert!(vals.iter().all(|&v| v == 2.0));
    }

    /// The parity invariant at the accumulator level: every class
    /// produces byte-for-byte the hash accumulator's output.
    #[test]
    fn every_class_matches_hash_accumulator_bitwise() {
        let mut seed = 0xC0FFEEu64;
        let mut next = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as usize
        };
        // one matrix pair per class: row 0 of A drives the product
        let ncols = 200; // dense_cutoff = 50
        for &target_flop in &[4usize, 20, 40, 120] {
            let mut tri_a = Vec::new();
            let mut tri_b = Vec::new();
            // A row 0 with `target_flop / 4` entries; each consumed B
            // row has 4 entries -> flop = target
            let a_nnz = (target_flop / 4).max(1);
            for t in 0..a_nnz {
                tri_a.push((0usize, t as u32, 1.0 + t as f64));
            }
            for k in 0..a_nnz {
                for u in 0..4usize {
                    // overlapping columns across B rows force real
                    // accumulation (duplicate k-encounters)
                    tri_b.push((k, (next() % ncols) as u32, 0.5 + u as f64));
                }
            }
            tri_b.sort_by_key(|&(r, c, _)| (r, c));
            tri_b.dedup_by_key(|&mut (r, c, _)| (r, c));
            let a = Csr::from_triplets(1, a_nnz, &tri_a).unwrap();
            let b = Csr::from_triplets(a_nnz, ncols, &tri_b).unwrap();
            let flop = row_flop(&a, &b, 0);
            let class = RowClass::classify(flop, ncols);
            let mut hash = HashAccumulator::<P>::new(flop as usize, ncols);
            let mut rc = RowClassAccumulator::<P>::new(flop as usize, ncols, simd::detect());
            let n = RowAccumulator::<P>::symbolic_row(&mut hash, &a, &b, 0);
            let n2 = RowAccumulator::<P>::symbolic_row(&mut rc, &a, &b, 0);
            assert_eq!(n, n2, "class {class:?} symbolic count");
            for sorted in [false, true] {
                let (mut c1, mut v1) = (vec![0; n], vec![0.0; n]);
                let (mut c2, mut v2) = (vec![0; n], vec![0.0; n]);
                RowAccumulator::<P>::numeric_row(&mut hash, &a, &b, 0, &mut c1, &mut v1, sorted);
                RowAccumulator::<P>::numeric_row(&mut rc, &a, &b, 0, &mut c2, &mut v2, sorted);
                assert_eq!(c1, c2, "class {class:?} sorted={sorted} cols");
                let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
                assert_eq!(bits(&v1), bits(&v2), "class {class:?} sorted={sorted} vals");
            }
        }
    }

    #[test]
    fn spec_build_classifies_and_compresses() {
        // 40 columns: dense_cutoff = 33
        let n = 40;
        let mut tri = Vec::new();
        // row 0: empty (tiny). row 1: 2 entries over rows with 2 nnz
        // each (flop 4, tiny). row 2: flop 20 (short). row 3: all of a
        // 34-entry row (dense).
        for c in 0..34u32 {
            tri.push((3usize, c, 1.0));
        }
        tri.push((1, 4, 1.0));
        tri.push((1, 5, 1.0));
        for c in 10..20u32 {
            tri.push((2, c, 1.0));
        }
        let a = Csr::from_triplets(n, n, &tri).unwrap();
        let pool = Pool::new(2);
        let stats = crate::exec::plan(&a, &a, &pool);
        let spec = RowClassSpec::build(&a, &a, &stats);
        let occ = spec.occupancy();
        assert_eq!(occ.iter().sum::<u64>(), n as u64);
        assert!(occ[RowClass::Tiny as usize] >= 1);
        assert!(spec.a16.is_some() && spec.b16.is_some(), "40 < 2^16");
        assert_eq!(spec.a16.as_ref().unwrap().len(), a.nnz());
        // queues cover every row exactly once
        let mut seen = vec![false; n];
        for wq in &spec.queues {
            for q in wq {
                for &i in q {
                    assert!(!seen[i as usize]);
                    seen[i as usize] = true;
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn occupancy_helper_matches_spec() {
        let a = Csr::from_triplets(6, 6, &[(0, 1, 1.0), (1, 2, 2.0), (2, 0, 3.0), (5, 5, 4.0)])
            .unwrap();
        let pool = Pool::new(2);
        let stats = crate::exec::plan(&a, &a, &pool);
        let spec = RowClassSpec::build(&a, &a, &stats);
        assert_eq!(bucket_occupancy(&a, &a), spec.occupancy());
    }
}
