//! Inspector–executor SpGEMM: [`SpgemmPlan`] and [`PlanCache`].
//!
//! The paper's fastest kernels are two-phase — a symbolic pass sizes
//! each output row, a numeric pass fills exactly-allocated storage —
//! and its Figure 4 shows allocation/deallocation dominating runtime
//! when products repeat, as they do in MCL expansion, AMG re-setup
//! and multi-round graph algorithms. A [`SpgemmPlan`] factors a
//! multiply accordingly:
//!
//! * **Plan once** (`SpgemmPlan::new`): per-row flop counts, the
//!   flop-balanced row partition of §4.1, the resolved algorithm, and
//!   — for two-phase kernels — the symbolic pass producing the output
//!   row pointers.
//! * **Execute many** (`execute` / `execute_into`): numeric-only
//!   passes over matrices with the *same sparsity structure*. All
//!   per-thread accumulators live in a
//!   [`spgemm_par::WorkspacePool`] owned by the plan, so the steady
//!   state performs **zero heap allocations** when writing into a
//!   reused output via [`SpgemmPlan::execute_into`].
//!
//! One-phase kernels (`Heap`, `Inspector`) have no symbolic pass to
//! front-load; their first execution runs the original staged
//! one-phase driver and *captures* the row pointers it discovers, so
//! one-shot use costs exactly what it always did while later
//! executions become numeric-only like everyone else's.
//!
//! [`PlanCache`] layers structure fingerprinting on top for workloads
//! whose pattern *drifts* (MCL prunes entries every round): it reuses
//! the plan verbatim while the pattern matches and rebinds — keeping
//! the pooled accumulators — when it changes.
//!
//! The one-shot [`crate::multiply_in`] is itself `Plan::new` +
//! `execute`, so the two paths cannot diverge.

use crate::algos::hash::HashAccumulator;
use crate::algos::hashvec::HashVecAccumulator;
use crate::algos::heap::HeapKernel;
use crate::algos::ikj::IkjKernel;
use crate::algos::inspector::InspectorKernel;
use crate::algos::kkhash::KkHashAccumulator;
use crate::algos::merge::MergeAccumulator;
use crate::algos::simd::{self, SimdLevel};
use crate::algos::spa::SpaAccumulator;
use crate::delta::{ConsumerIndex, DirtyRows};
use crate::exec::{
    self, AccumReq, MultiplyStats, ReusableAccumulator, RowAccumulator, StagedRowKernel,
};
use crate::kgen::{self, RowClassAccumulator, RowClassSpec};
use crate::{recipe, Algorithm, OutputOrder};
use parking_lot::Mutex;
use spgemm_obs as obs;
use spgemm_par::{partition, scan, unsync::SharedMutSlice, Pool, WorkspacePool, WorkspaceStats};
use spgemm_sparse::{ColIdx, Csr, Semiring, SparseError};
use std::sync::Arc;

/// Fingerprint of a matrix's sparsity structure (shape, row pointers,
/// column indices — values excluded). Two matrices with the same
/// signature share a structure for planning purposes; used by
/// [`SpgemmPlan::matches_structure`] and [`PlanCache`]. This is
/// [`Csr::structure_fingerprint`]; kept as a free function for callers
/// that predate the method.
pub fn structure_signature<T>(m: &Csr<T>) -> u64 {
    m.structure_fingerprint()
}

/// Signatures of both operands, hashing the shared structure only
/// once when `a` and `b` are the same matrix (the `A · A` case of
/// MCL expansion and squaring benchmarks).
fn signatures<T>(a: &Csr<T>, b: &Csr<T>) -> (u64, u64) {
    let a_sig = structure_signature(a);
    let b_sig = if std::ptr::eq(a, b) {
        a_sig
    } else {
        structure_signature(b)
    };
    (a_sig, b_sig)
}

/// The symbolic phase's result: output row pointers and total nnz.
struct SymbolicPlan {
    rpts: Vec<usize>,
    nnz: usize,
}

/// Per-algorithm pooled workspaces. Each variant owns one
/// [`WorkspacePool`] whose slots hold that kernel's per-thread
/// accumulator, created lazily inside the first parallel region and
/// reused (clear-on-acquire) by every later phase and execution.
enum PlanKernel<S: Semiring> {
    Hash(WorkspacePool<HashAccumulator<S>>),
    HashVec {
        ws: WorkspacePool<HashVecAccumulator<S>>,
        level: SimdLevel,
    },
    Heap(WorkspacePool<HeapKernel<S>>),
    Spa(WorkspacePool<SpaAccumulator<S>>),
    Merge(WorkspacePool<MergeAccumulator<S>>),
    Inspector(WorkspacePool<InspectorKernel<S>>),
    KkHash(WorkspacePool<KkHashAccumulator<S>>),
    Ikj(WorkspacePool<IkjKernel<S>>),
    RowClass {
        ws: WorkspacePool<RowClassAccumulator<S>>,
        level: SimdLevel,
    },
    Reference,
}

impl<S: Semiring> PlanKernel<S> {
    fn new(algo: Algorithm, nthreads: usize) -> Self {
        match algo {
            Algorithm::Hash => PlanKernel::Hash(WorkspacePool::with_threads(nthreads)),
            Algorithm::HashVec => PlanKernel::HashVec {
                ws: WorkspacePool::with_threads(nthreads),
                level: simd::detect(),
            },
            Algorithm::Heap => PlanKernel::Heap(WorkspacePool::with_threads(nthreads)),
            Algorithm::Spa => PlanKernel::Spa(WorkspacePool::with_threads(nthreads)),
            Algorithm::Merge => PlanKernel::Merge(WorkspacePool::with_threads(nthreads)),
            Algorithm::Inspector => PlanKernel::Inspector(WorkspacePool::with_threads(nthreads)),
            Algorithm::KkHash => PlanKernel::KkHash(WorkspacePool::with_threads(nthreads)),
            Algorithm::Ikj => PlanKernel::Ikj(WorkspacePool::with_threads(nthreads)),
            Algorithm::RowClass => PlanKernel::RowClass {
                ws: WorkspacePool::with_threads(nthreads),
                level: simd::detect(),
            },
            Algorithm::Reference => PlanKernel::Reference,
            Algorithm::Auto => unreachable!("Auto resolved before kernel construction"),
        }
    }
}

/// Dispatch over the kernel variants, binding the workspace pool and
/// the accumulator factory **once** so the symbolic and numeric passes
/// cannot drift in their sizing: each variant's constructor closure
/// exists in exactly one place, and `$body` receives it as `$make`
/// alongside the pool as `$ws`. (`Reference` is handled by the execute
/// paths before any kernel dispatch; the staged first run has its own
/// two-variant match because only Heap/Inspector implement
/// `StagedRowKernel`.)
macro_rules! with_kernel {
    ($plan:expr, $a:expr, $b:expr, |$ws:ident, $make:ident| $body:expr) => {{
        let (a_ref, b_ref) = ($a, $b);
        match &$plan.kernel {
            PlanKernel::Hash($ws) => {
                let $make = |mf: usize| HashAccumulator::new(mf, b_ref.ncols());
                $body
            }
            PlanKernel::HashVec { ws: $ws, level } => {
                let level = *level;
                let $make =
                    move |mf: usize| HashVecAccumulator::with_level(mf, b_ref.ncols(), level);
                $body
            }
            PlanKernel::Heap($ws) => {
                let $make = |_mf: usize| HeapKernel::new();
                $body
            }
            PlanKernel::Spa($ws) => {
                let $make = |_mf: usize| SpaAccumulator::new(b_ref.ncols());
                $body
            }
            PlanKernel::Merge($ws) => {
                let $make = MergeAccumulator::new;
                $body
            }
            PlanKernel::Inspector($ws) => {
                let $make = |mf: usize| InspectorKernel::new(mf, b_ref.ncols());
                $body
            }
            PlanKernel::KkHash($ws) => {
                let $make = |mf: usize| KkHashAccumulator::new(mf, b_ref.ncols());
                $body
            }
            PlanKernel::Ikj($ws) => {
                let $make = |_mf: usize| IkjKernel::new(a_ref.ncols(), b_ref.ncols());
                $body
            }
            PlanKernel::RowClass { ws: $ws, level } => {
                let level = *level;
                let $make = move |mf: usize| RowClassAccumulator::new(mf, b_ref.ncols(), level);
                $body
            }
            PlanKernel::Reference => unreachable!("Reference handled before kernel dispatch"),
        }
    }};
}

/// Outcome of resolving the symbolic state for one execution.
enum FirstRun<E> {
    /// A deferred (one-phase) plan ran its staged first execution; the
    /// product is already materialized.
    Done(Csr<E>),
    /// Row pointers are known; run the numeric pass.
    Ready(Arc<SymbolicPlan>),
}

/// A reusable two-phase execution plan for `C = A · B` over a fixed
/// sparsity structure.
///
/// Create once from the operands' structure, then run
/// [`SpgemmPlan::execute`] (fresh output) or
/// [`SpgemmPlan::execute_into`] (reused output, allocation-free in
/// steady state) any number of times with matrices whose *values* may
/// change but whose *structure* must match the planned one. Use
/// [`SpgemmPlan::rebind`] or a [`PlanCache`] when the structure
/// changes.
///
/// ```
/// use spgemm::{Algorithm, OutputOrder, SpgemmPlan};
/// use spgemm_sparse::{Csr, PlusTimes};
///
/// let a = Csr::<f64>::identity(8);
/// let plan = SpgemmPlan::<PlusTimes<f64>>::new(&a, &a, Algorithm::Hash, OutputOrder::Sorted)?;
/// assert_eq!(plan.symbolic_nnz(), Some(8));
///
/// let mut c = plan.execute(&a, &a)?;
/// for _ in 0..10 {
///     plan.execute_into(&a, &a, &mut c)?; // numeric-only re-multiplies
/// }
/// assert_eq!(c.nnz(), 8);
/// # Ok::<(), spgemm_sparse::SparseError>(())
/// ```
pub struct SpgemmPlan<S: Semiring> {
    /// What the caller asked for (kept so [`SpgemmPlan::rebind`] can
    /// re-resolve `Auto` against the new structure).
    requested: Algorithm,
    /// The resolved, concrete algorithm.
    algo: Algorithm,
    order: OutputOrder,
    /// `(nrows(A), ncols(A) == nrows(B), ncols(B))`.
    dims: (usize, usize, usize),
    a_nnz: usize,
    b_nnz: usize,
    /// `(signature(A), signature(B))` of the planned structure.
    /// `None` for throwaway plans built by the one-shot `multiply_in`
    /// path, which never fingerprint-checks — computing the `O(nnz)`
    /// hashes there would tax every ordinary multiply.
    sigs: Option<(u64, u64)>,
    stats: MultiplyStats,
    nthreads: usize,
    /// `None` while a one-phase plan's symbolic structure is still
    /// deferred to its first execution.
    symbolic: Mutex<Option<Arc<SymbolicPlan>>>,
    /// Reverse column→consumer-row index of `A`, built lazily by the
    /// first [`SpgemmPlan::rebind_rows`] and patched per call; `None`
    /// until then and after any full rebind.
    consumers: Option<ConsumerIndex>,
    /// RowClass plans only: per-class work queues and compressed
    /// column indices, rebuilt on every (re)bind. Boxed — the spec is
    /// touched once per pass, and keeping it out of line keeps
    /// `SpgemmPlan` small for the enums that embed it (`expr`).
    rowclass: Option<Box<RowClassSpec>>,
    kernel: PlanKernel<S>,
}

impl<S: Semiring> SpgemmPlan<S> {
    /// Plan `A · B` on the process-global pool.
    pub fn new(
        a: &Csr<S::Elem>,
        b: &Csr<S::Elem>,
        algo: Algorithm,
        order: OutputOrder,
    ) -> Result<Self, SparseError> {
        Self::new_in(a, b, algo, order, spgemm_par::global_pool())
    }

    /// Plan `A · B` on an explicit pool. The plan is bound to the
    /// pool's thread count; executions must use a pool of the same
    /// width (usually the same pool).
    pub fn new_in(
        a: &Csr<S::Elem>,
        b: &Csr<S::Elem>,
        algo: Algorithm,
        order: OutputOrder,
        pool: &Pool,
    ) -> Result<Self, SparseError> {
        Self::build(a, b, algo, order, pool, true)
    }

    /// A plan for exactly one execution: skips the structure
    /// fingerprint ([`SpgemmPlan::matches_structure`] will always
    /// report `false`). This is what the one-shot [`crate::multiply_in`]
    /// uses internally.
    pub(crate) fn new_oneshot(
        a: &Csr<S::Elem>,
        b: &Csr<S::Elem>,
        algo: Algorithm,
        order: OutputOrder,
        pool: &Pool,
    ) -> Result<Self, SparseError> {
        Self::build(a, b, algo, order, pool, false)
    }

    fn build(
        a: &Csr<S::Elem>,
        b: &Csr<S::Elem>,
        algo: Algorithm,
        order: OutputOrder,
        pool: &Pool,
        fingerprint: bool,
    ) -> Result<Self, SparseError> {
        let (resolved, stats) = Self::analyze(a, b, algo, order, pool)?;
        let mut plan = SpgemmPlan {
            requested: algo,
            algo: resolved,
            order,
            dims: (a.nrows(), a.ncols(), b.ncols()),
            a_nnz: a.nnz(),
            b_nnz: b.nnz(),
            sigs: fingerprint.then(|| signatures(a, b)),
            stats,
            nthreads: pool.nthreads(),
            symbolic: Mutex::new(None),
            consumers: None,
            rowclass: None,
            kernel: PlanKernel::new(resolved, pool.nthreads()),
        };
        if plan.algo == Algorithm::RowClass {
            plan.rowclass = Some(Box::new(RowClassSpec::build(a, b, &plan.stats)));
        }
        if !plan.symbolic_is_deferred() {
            let sym = plan.run_symbolic(a, b, pool);
            *plan.symbolic.get_mut() = Some(Arc::new(sym));
        }
        Ok(plan)
    }

    /// Validate shapes/contracts and resolve `Auto`; shared by
    /// [`SpgemmPlan::new_in`] and [`SpgemmPlan::rebind_in`].
    fn analyze(
        a: &Csr<S::Elem>,
        b: &Csr<S::Elem>,
        algo: Algorithm,
        order: OutputOrder,
        pool: &Pool,
    ) -> Result<(Algorithm, MultiplyStats), SparseError> {
        let _g = obs::span!("plan", "plan.analyze");
        if a.ncols() != b.nrows() {
            return Err(SparseError::ShapeMismatch {
                left: a.shape(),
                right: b.shape(),
                op: "multiply",
            });
        }
        let resolved = match algo {
            Algorithm::Auto => recipe::auto_select(a, b, order),
            other => other,
        };
        if resolved.requires_sorted_inputs() && (!a.is_sorted() || !b.is_sorted()) {
            return Err(SparseError::Unsorted {
                op: match resolved {
                    Algorithm::Heap => "Heap SpGEMM",
                    _ => "Merge SpGEMM",
                },
            });
        }
        // The sequential Reference oracle never consults the work
        // analysis; skip the parallel flop-counting pass it would pay
        // on every oracle multiply.
        let stats = if resolved == Algorithm::Reference {
            MultiplyStats {
                row_flops: Vec::new(),
                total_flop: 0,
                offsets: vec![0; pool.nthreads() + 1],
            }
        } else {
            exec::plan(a, b, pool)
        };
        Ok((resolved, stats))
    }

    /// Re-plan for a *different* structure while keeping the pooled
    /// per-thread workspaces (which re-validate and grow on their next
    /// acquisition — see `exec::ReusableAccumulator`). This is the
    /// allocation-amortizing path for workloads whose pattern drifts
    /// between products; [`PlanCache`] calls it automatically.
    pub fn rebind(&mut self, a: &Csr<S::Elem>, b: &Csr<S::Elem>) -> Result<(), SparseError> {
        self.rebind_in(a, b, spgemm_par::global_pool())
    }

    /// [`SpgemmPlan::rebind`] on an explicit pool.
    pub fn rebind_in(
        &mut self,
        a: &Csr<S::Elem>,
        b: &Csr<S::Elem>,
        pool: &Pool,
    ) -> Result<(), SparseError> {
        let _g = obs::span!("plan", "plan.rebind");
        let (resolved, stats) = Self::analyze(a, b, self.requested, self.order, pool)?;
        if resolved != self.algo || pool.nthreads() != self.nthreads {
            // The workspace pool holds the wrong accumulator type (or
            // the wrong number of slots); rebuild it.
            self.kernel = PlanKernel::new(resolved, pool.nthreads());
            self.algo = resolved;
            self.nthreads = pool.nthreads();
        }
        self.stats = stats;
        self.dims = (a.nrows(), a.ncols(), b.ncols());
        self.a_nnz = a.nnz();
        self.b_nnz = b.nnz();
        // Rebinding implies reuse intent: always fingerprint.
        self.sigs = Some(signatures(a, b));
        self.consumers = None;
        self.rowclass = (self.algo == Algorithm::RowClass)
            .then(|| Box::new(RowClassSpec::build(a, b, &self.stats)));
        *self.symbolic.get_mut() = None;
        if !self.symbolic_is_deferred() {
            let sym = self.run_symbolic(a, b, pool);
            *self.symbolic.get_mut() = Some(Arc::new(sym));
        }
        Ok(())
    }

    /// Incremental rebind after a row-granular edit of the operands:
    /// re-run the symbolic phase for **only** the output rows whose
    /// inputs changed, splice the new row pointers into the cached
    /// structure, and return the invalidated output-row set — the
    /// argument [`SpgemmPlan::execute_rows`] expects next.
    ///
    /// `dirty_a` / `dirty_b` name the rows of the *new* `a` / `b`
    /// that differ (structurally or in values) from the operands the
    /// plan is currently bound to — exactly what
    /// [`Csr::apply_patch`](spgemm_sparse::Csr::apply_patch) returns.
    /// Rows outside the dirty sets must match the bound version
    /// byte-for-byte; that contract is what makes the splice exact.
    /// Output rows are invalidated per the row-wise dependency
    /// `out = dirty_a ∪ {i : A[i] ∩ dirty_b ≠ ∅}`, with the second
    /// term answered by a cached [`ConsumerIndex`] that is itself
    /// patched per call.
    ///
    /// Falls back to a full [`SpgemmPlan::rebind`] — returning
    /// `DirtyRows::all` — whenever incremental repair is impossible:
    /// shape changes, an `Auto` plan resolving to a different kernel
    /// on the new structure, the sequential `Reference` oracle, a
    /// pool-width change, or a one-phase plan whose first (staged)
    /// execution hasn't happened yet. Either way the plan afterwards
    /// is indistinguishable from one rebound from scratch.
    ///
    /// ```
    /// use spgemm::{Algorithm, OutputOrder, SpgemmPlan};
    /// use spgemm_sparse::{Csr, PlusTimes, RowPatch};
    ///
    /// let a = Csr::<f64>::identity(100);
    /// let mut plan =
    ///     SpgemmPlan::<PlusTimes<f64>>::new(&a, &a, Algorithm::Hash, OutputOrder::Sorted)?;
    /// let mut c = plan.execute(&a, &a)?;
    ///
    /// let mut patch = RowPatch::new();
    /// patch.insert(7, 3, 2.0);
    /// let (a2, dirty) = a.apply_patch(&patch)?;
    ///
    /// let out = plan.rebind_rows(&a2, &a2, &dirty, &dirty)?;
    /// assert_eq!(out.count(), 1, "only output row 7 consumes the edit");
    /// plan.execute_rows(&a2, &a2, &out, &mut c)?;
    /// assert_eq!(c.get(7, 3), Some(&4.0));
    /// # Ok::<(), spgemm_sparse::SparseError>(())
    /// ```
    pub fn rebind_rows(
        &mut self,
        a: &Csr<S::Elem>,
        b: &Csr<S::Elem>,
        dirty_a: &DirtyRows,
        dirty_b: &DirtyRows,
    ) -> Result<DirtyRows, SparseError> {
        self.rebind_rows_in(a, b, dirty_a, dirty_b, spgemm_par::global_pool())
    }

    /// [`SpgemmPlan::rebind_rows`] on an explicit pool.
    pub fn rebind_rows_in(
        &mut self,
        a: &Csr<S::Elem>,
        b: &Csr<S::Elem>,
        dirty_a: &DirtyRows,
        dirty_b: &DirtyRows,
        pool: &Pool,
    ) -> Result<DirtyRows, SparseError> {
        let _g = obs::span!("delta", "delta.rebind_rows");
        if dirty_a.nrows() != a.nrows() || dirty_b.nrows() != b.nrows() {
            return Err(SparseError::PlanMismatch {
                detail: format!(
                    "rebind_rows: dirty universes ({}, {}) don't match operand rows ({}, {})",
                    dirty_a.nrows(),
                    dirty_b.nrows(),
                    a.nrows(),
                    b.nrows()
                ),
            });
        }
        let resolved = match self.requested {
            Algorithm::Auto => recipe::auto_select(a, b, self.order),
            other => other,
        };
        let incremental = self.sigs.is_some()
            && self.dims == (a.nrows(), a.ncols(), b.ncols())
            && resolved == self.algo
            && self.algo != Algorithm::Reference
            && pool.nthreads() == self.nthreads
            && self.symbolic.get_mut().is_some();
        if !incremental {
            self.rebind_in(a, b, pool)?;
            return Ok(DirtyRows::all(a.nrows()));
        }
        if self.algo.requires_sorted_inputs() && (!a.is_sorted() || !b.is_sorted()) {
            return Err(SparseError::Unsorted {
                op: match self.algo {
                    Algorithm::Heap => "Heap SpGEMM",
                    _ => "Merge SpGEMM",
                },
            });
        }

        // Which output rows the edit invalidates (reverse index on A).
        if let Some(idx) = self.consumers.as_mut() {
            idx.update_rows(a, dirty_a);
        } else {
            self.consumers = Some(ConsumerIndex::build(a));
        }
        let out_dirty = self
            .consumers
            .as_ref()
            .expect("installed above")
            .out_dirty(dirty_a, dirty_b);

        // Per-row flops change exactly on the invalidated rows (a
        // clean row's A pattern and consumed B row sizes are both
        // unchanged); the partition is then re-derived the same way
        // `exec::plan` does, so it matches a fresh plan's.
        for i in out_dirty.iter() {
            self.stats.row_flops[i] = a
                .row_cols(i)
                .iter()
                .map(|&k| b.row_nnz(k as usize) as u64)
                .sum();
        }
        let mut prefix = self.stats.row_flops.clone();
        self.stats.offsets =
            partition::balanced_offsets_in_place(&mut prefix, pool.nthreads(), pool);
        self.stats.total_flop = prefix.last().copied().unwrap_or(0);
        if self.algo == Algorithm::RowClass {
            // Edited rows may have crossed a class boundary and the
            // partition may have shifted; re-derive the class queues
            // and re-gather the compressed indices (`O(nrows + nnz)`
            // — cheaper than the `O(nnz)` re-analysis a full rebind
            // pays, and the per-row re-counts below stay incremental).
            self.rowclass = Some(Box::new(RowClassSpec::build(a, b, &self.stats)));
        }

        // Splice the symbolic structure: clean rows keep their cached
        // counts, invalidated rows are re-counted by the kernel.
        let old_sym = self
            .symbolic
            .get_mut()
            .take()
            .expect("incremental gate checked symbolic presence");
        let m = a.nrows();
        let mut counts: Vec<usize> = (0..m)
            .map(|i| old_sym.rpts[i + 1] - old_sym.rpts[i])
            .collect();
        if !out_dirty.is_empty() {
            let req = AccumReq {
                max_row_flop: out_dirty
                    .iter()
                    .map(|i| self.stats.row_flops[i])
                    .max()
                    .unwrap_or(0) as usize,
                inner_dim: a.ncols(),
                ncols_b: b.ncols(),
            };
            let counts_ref = &mut counts;
            with_kernel!(self, a, b, |ws, make| ws.with(
                0,
                || make(req.max_row_flop),
                |acc, reused| {
                    if reused {
                        acc.ensure(&req);
                        acc.scrub();
                    }
                    for i in out_dirty.iter() {
                        counts_ref[i] = acc.symbolic_row(a, b, i);
                    }
                },
            ));
        }
        let mut rpts = Vec::with_capacity(m + 1);
        rpts.push(0usize);
        let mut total = 0usize;
        for &c in &counts {
            total += c;
            rpts.push(total);
        }
        *self.symbolic.get_mut() = Some(Arc::new(SymbolicPlan { rpts, nnz: total }));

        self.a_nnz = a.nnz();
        self.b_nnz = b.nnz();
        self.sigs = Some(signatures(a, b));
        if obs::enabled() {
            static RESYM: obs::CounterSite =
                obs::CounterSite::new("delta", "delta.rows_resymbolized");
            RESYM.add(out_dirty.count() as u64);
        }
        Ok(out_dirty)
    }

    /// Recompute **only** the rows in `dirty` of the product, reusing
    /// every clean row's bytes from `c` (the product of the previous
    /// execution), and store the spliced result back into `c`.
    ///
    /// Companion to [`SpgemmPlan::rebind_rows`]: pass the dirty set it
    /// returned, with `c` holding the pre-edit product. The result is
    /// byte-for-byte what a full [`SpgemmPlan::execute`] would produce
    /// — clean rows are copied (their inputs are untouched by
    /// contract), dirty rows run the kernel's ordinary per-row numeric
    /// path.
    pub fn execute_rows(
        &self,
        a: &Csr<S::Elem>,
        b: &Csr<S::Elem>,
        dirty: &DirtyRows,
        c: &mut Csr<S::Elem>,
    ) -> Result<(), SparseError> {
        self.execute_rows_in(a, b, dirty, c, spgemm_par::global_pool())
    }

    /// [`SpgemmPlan::execute_rows`] on an explicit pool.
    pub fn execute_rows_in(
        &self,
        a: &Csr<S::Elem>,
        b: &Csr<S::Elem>,
        dirty: &DirtyRows,
        c: &mut Csr<S::Elem>,
        pool: &Pool,
    ) -> Result<(), SparseError> {
        let _g = obs::span!("delta", "delta.execute_rows");
        self.check(a, b, pool)?;
        if dirty.nrows() != self.dims.0 {
            return Err(SparseError::PlanMismatch {
                detail: format!(
                    "execute_rows: dirty universe {} doesn't match output rows {}",
                    dirty.nrows(),
                    self.dims.0
                ),
            });
        }
        if matches!(self.kernel, PlanKernel::Reference) {
            *c = crate::algos::reference::multiply::<S>(a, b);
            return Ok(());
        }
        let Some(sym) = self.symbolic.lock().as_ref().map(Arc::clone) else {
            // One-phase plan before its staged first run: nothing
            // cached to splice against, so execute in full.
            return self.execute_into_in(a, b, c, pool);
        };
        let (m, _, n) = self.dims;
        let sorted = self.output_is_sorted();
        let full = dirty.count() == m;
        if !full && (c.nrows() != m || c.ncols() != n || c.is_sorted() != sorted) {
            return Err(SparseError::PlanMismatch {
                detail: format!(
                    "execute_rows: cached product is {}x{} (sorted: {}) but the plan \
                     produces {}x{} (sorted: {})",
                    c.nrows(),
                    c.ncols(),
                    c.is_sorted(),
                    m,
                    n,
                    sorted
                ),
            });
        }
        let mut cols = vec![0 as ColIdx; sym.nnz];
        let mut vals = vec![S::zero(); sym.nnz];
        if !full {
            for i in 0..m {
                if dirty.contains(i) {
                    continue;
                }
                let span = sym.rpts[i]..sym.rpts[i + 1];
                if c.row_nnz(i) != span.len() {
                    return Err(SparseError::PlanMismatch {
                        detail: format!(
                            "execute_rows: clean row {i} has {} entries in the cached \
                             product but {} in the plan; the cached product is stale",
                            c.row_nnz(i),
                            span.len()
                        ),
                    });
                }
                cols[span.clone()].copy_from_slice(c.row_cols(i));
                vals[span].copy_from_slice(c.row_vals(i));
            }
        }
        if !dirty.is_empty() {
            let req = AccumReq {
                max_row_flop: dirty
                    .iter()
                    .map(|i| self.stats.row_flops[i])
                    .max()
                    .unwrap_or(0) as usize,
                inner_dim: a.ncols(),
                ncols_b: b.ncols(),
            };
            let (cols_ref, vals_ref) = (&mut cols, &mut vals);
            with_kernel!(self, a, b, |ws, make| ws.with(
                0,
                || make(req.max_row_flop),
                |acc, reused| {
                    if reused {
                        acc.ensure(&req);
                        acc.scrub();
                    }
                    for i in dirty.iter() {
                        let span = sym.rpts[i]..sym.rpts[i + 1];
                        acc.numeric_row(
                            a,
                            b,
                            i,
                            &mut cols_ref[span.clone()],
                            &mut vals_ref[span],
                            sorted,
                        );
                    }
                },
            ));
        }
        *c = Csr::from_parts_unchecked(m, n, sym.rpts.to_vec(), cols, vals, sorted);
        if obs::enabled() {
            static RECOMP: obs::CounterSite =
                obs::CounterSite::new("delta", "delta.rows_recomputed");
            RECOMP.add(dirty.count() as u64);
        }
        Ok(())
    }

    /// Whether this plan's symbolic structure is computed lazily by
    /// the first execution (the one-phase kernels, which would
    /// otherwise pay a second pass they are designed to skip).
    fn symbolic_is_deferred(&self) -> bool {
        matches!(
            self.kernel,
            PlanKernel::Heap(_) | PlanKernel::Inspector(_) | PlanKernel::Reference
        )
    }

    /// The resolved, concrete algorithm this plan runs.
    pub fn algorithm(&self) -> Algorithm {
        self.algo
    }

    /// The requested output order.
    pub fn output_order(&self) -> OutputOrder {
        self.order
    }

    /// The work analysis backing the plan's row partition (empty for
    /// the sequential `Reference` oracle, which has no partition).
    pub fn stats(&self) -> &MultiplyStats {
        &self.stats
    }

    /// Worker-thread count the plan (and its workspaces) is sized for.
    pub fn nthreads(&self) -> usize {
        self.nthreads
    }

    /// `nnz(C)` once known: immediately for two-phase algorithms,
    /// after the first execution for one-phase ones (`None` before).
    pub fn symbolic_nnz(&self) -> Option<usize> {
        self.symbolic.lock().as_ref().map(|s| s.nnz)
    }

    /// Reuse counters of the pooled per-thread accumulators. In steady
    /// state `created` stays at the number of workers that ran while
    /// `reused` grows with every phase — the pool-level statement of
    /// "zero allocations per execute".
    pub fn workspace_stats(&self) -> WorkspaceStats {
        match &self.kernel {
            PlanKernel::Hash(ws) => ws.stats(),
            PlanKernel::HashVec { ws, .. } => ws.stats(),
            PlanKernel::Heap(ws) => ws.stats(),
            PlanKernel::Spa(ws) => ws.stats(),
            PlanKernel::Merge(ws) => ws.stats(),
            PlanKernel::Inspector(ws) => ws.stats(),
            PlanKernel::KkHash(ws) => ws.stats(),
            PlanKernel::Ikj(ws) => ws.stats(),
            PlanKernel::RowClass { ws, .. } => ws.stats(),
            PlanKernel::Reference => WorkspaceStats::default(),
        }
    }

    /// Whether `(a, b)` share the exact sparsity structure this plan
    /// was built for (shape, nnz and FNV fingerprint of row pointers +
    /// column indices — values are free to differ). Always `false` for
    /// plans built without a fingerprint (the internal one-shot path).
    pub fn matches_structure(&self, a: &Csr<S::Elem>, b: &Csr<S::Elem>) -> bool {
        let Some((planned_a, planned_b)) = self.sigs else {
            return false;
        };
        if self.dims != (a.nrows(), a.ncols(), b.ncols())
            || self.a_nnz != a.nnz()
            || self.b_nnz != b.nnz()
        {
            return false;
        }
        let (a_sig, b_sig) = signatures(a, b);
        planned_a == a_sig && planned_b == b_sig
    }

    /// Cheap per-execute guards: shapes, nnz, input-sortedness
    /// contracts, pool width. The full structural fingerprint is *not*
    /// recomputed here (that would cost `O(nnz)` per execute and eat
    /// the amortization the plan exists to provide); callers that
    /// substitute operands between executes should gate on
    /// [`SpgemmPlan::matches_structure`] or use a [`PlanCache`].
    fn check(&self, a: &Csr<S::Elem>, b: &Csr<S::Elem>, pool: &Pool) -> Result<(), SparseError> {
        if self.dims != (a.nrows(), a.ncols(), b.ncols()) || a.ncols() != b.nrows() {
            return Err(SparseError::ShapeMismatch {
                left: a.shape(),
                right: b.shape(),
                op: "plan execute",
            });
        }
        if self.a_nnz != a.nnz() || self.b_nnz != b.nnz() {
            return Err(SparseError::PlanMismatch {
                detail: format!(
                    "operand nnz ({}, {}) differ from planned ({}, {}); rebind the plan",
                    a.nnz(),
                    b.nnz(),
                    self.a_nnz,
                    self.b_nnz
                ),
            });
        }
        if self.algo.requires_sorted_inputs() && (!a.is_sorted() || !b.is_sorted()) {
            return Err(SparseError::Unsorted {
                op: match self.algo {
                    Algorithm::Heap => "Heap SpGEMM",
                    _ => "Merge SpGEMM",
                },
            });
        }
        if pool.nthreads() != self.nthreads {
            return Err(SparseError::PlanMismatch {
                detail: format!(
                    "plan sized for {} threads but pool has {}",
                    self.nthreads,
                    pool.nthreads()
                ),
            });
        }
        Ok(())
    }

    /// The sorted-flag (and per-row extraction order) of this plan's
    /// outputs: kernels with inherently sorted output ignore the
    /// request, everyone else honours it.
    fn output_is_sorted(&self) -> bool {
        match self.algo {
            Algorithm::Heap | Algorithm::Merge | Algorithm::Reference => true,
            _ => self.order.is_sorted(),
        }
    }

    /// Numeric-only multiply into a fresh output matrix (global pool).
    pub fn execute(&self, a: &Csr<S::Elem>, b: &Csr<S::Elem>) -> Result<Csr<S::Elem>, SparseError> {
        self.execute_in(a, b, spgemm_par::global_pool())
    }

    /// [`SpgemmPlan::execute`] on an explicit pool.
    pub fn execute_in(
        &self,
        a: &Csr<S::Elem>,
        b: &Csr<S::Elem>,
        pool: &Pool,
    ) -> Result<Csr<S::Elem>, SparseError> {
        self.check(a, b, pool)?;
        if matches!(self.kernel, PlanKernel::Reference) {
            return Ok(crate::algos::reference::multiply::<S>(a, b));
        }
        match self.symbolic_state(a, b, pool) {
            FirstRun::Done(c) => Ok(self.finish_first(c)),
            FirstRun::Ready(sym) => {
                let (m, _, n) = self.dims;
                let mut cols = vec![0 as ColIdx; sym.nnz];
                let mut vals = vec![S::zero(); sym.nnz];
                self.run_numeric(a, b, &sym.rpts, pool, &mut cols, &mut vals);
                Ok(Csr::from_parts_unchecked(
                    m,
                    n,
                    sym.rpts.clone(),
                    cols,
                    vals,
                    self.output_is_sorted(),
                ))
            }
        }
    }

    /// Numeric-only multiply into a reused output matrix (global
    /// pool). See [`SpgemmPlan::execute_into_in`].
    pub fn execute_into(
        &self,
        a: &Csr<S::Elem>,
        b: &Csr<S::Elem>,
        c: &mut Csr<S::Elem>,
    ) -> Result<(), SparseError> {
        self.execute_into_in(a, b, c, spgemm_par::global_pool())
    }

    /// Numeric-only multiply overwriting `c` in place, reusing its
    /// allocations. After a warm-up execution has sized `c`'s buffers
    /// (and the pooled accumulators), this path performs **zero heap
    /// allocations** for every two-phase algorithm — the steady state
    /// of the paper's Figure 4 "parallel + reuse" scheme.
    pub fn execute_into_in(
        &self,
        a: &Csr<S::Elem>,
        b: &Csr<S::Elem>,
        c: &mut Csr<S::Elem>,
        pool: &Pool,
    ) -> Result<(), SparseError> {
        self.check(a, b, pool)?;
        if matches!(self.kernel, PlanKernel::Reference) {
            *c = crate::algos::reference::multiply::<S>(a, b);
            return Ok(());
        }
        match self.symbolic_state(a, b, pool) {
            FirstRun::Done(done) => {
                *c = self.finish_first(done);
            }
            FirstRun::Ready(sym) => {
                let (m, _, n) = self.dims;
                let sorted = self.output_is_sorted();
                c.prepare_overwrite(m, n, sym.nnz, S::zero(), sorted);
                let (rpts_mut, cols_mut, vals_mut) = c.raw_parts_mut();
                rpts_mut.copy_from_slice(&sym.rpts);
                self.run_numeric(a, b, &sym.rpts, pool, cols_mut, vals_mut);
                debug_assert!(c.validate().is_ok(), "planned numeric pass built bad CSR");
            }
        }
        Ok(())
    }

    /// Get the symbolic structure, running the deferred staged first
    /// execution if this is a one-phase plan's first use.
    fn symbolic_state(&self, a: &Csr<S::Elem>, b: &Csr<S::Elem>, pool: &Pool) -> FirstRun<S::Elem> {
        let mut guard = self.symbolic.lock();
        if let Some(sym) = guard.as_ref() {
            return FirstRun::Ready(Arc::clone(sym));
        }
        let c = self.run_staged(a, b, pool);
        *guard = Some(Arc::new(SymbolicPlan {
            rpts: c.rpts().to_vec(),
            nnz: c.nnz(),
        }));
        FirstRun::Done(c)
    }

    /// Post-process a staged first run: Inspector's one-phase kernel
    /// is inherently unsorted, so honour an explicit `Sorted` request
    /// by paying the sort, exactly as the one-shot path always has.
    fn finish_first(&self, mut c: Csr<S::Elem>) -> Csr<S::Elem> {
        if matches!(self.algo, Algorithm::Inspector) && self.order.is_sorted() {
            c.sort_rows();
        }
        c
    }

    /// The symbolic pass over the planned partition, with pooled
    /// accumulators.
    fn run_symbolic(&self, a: &Csr<S::Elem>, b: &Csr<S::Elem>, pool: &Pool) -> SymbolicPlan {
        let _g = obs::span!("plan", "plan.symbolic");
        if let (PlanKernel::RowClass { ws, level }, Some(spec)) = (&self.kernel, &self.rowclass) {
            let (rpts, nnz) =
                kgen::rowclass_symbolic_pass::<S>(ws, *level, spec, a, b, &self.stats, pool);
            return SymbolicPlan { rpts, nnz };
        }
        with_kernel!(self, a, b, |ws, make| symbolic_pass::<S, _, _>(
            ws,
            make,
            a,
            b,
            &self.stats,
            pool
        ))
    }

    /// The numeric pass into pre-sliced output, with pooled
    /// accumulators.
    fn run_numeric(
        &self,
        a: &Csr<S::Elem>,
        b: &Csr<S::Elem>,
        rpts: &[usize],
        pool: &Pool,
        cols: &mut [ColIdx],
        vals: &mut [S::Elem],
    ) {
        let _g = obs::span!("plan", "plan.numeric");
        count_execute(self.algo);
        let sorted = self.output_is_sorted();
        if let (PlanKernel::RowClass { ws, level }, Some(spec)) = (&self.kernel, &self.rowclass) {
            return kgen::rowclass_numeric_pass::<S>(
                ws,
                *level,
                spec,
                a,
                b,
                &self.stats,
                rpts,
                sorted,
                pool,
                cols,
                vals,
            );
        }
        with_kernel!(self, a, b, |ws, make| numeric_pass::<S, _, _>(
            ws,
            make,
            a,
            b,
            &self.stats,
            rpts,
            sorted,
            pool,
            cols,
            vals
        ))
    }

    /// One-phase staged first execution (Heap / Inspector), byte-for-
    /// byte the driver `exec::one_phase_staged` runs for one-shot
    /// multiplies, but drawing its per-thread kernels from the plan's
    /// workspace pool so later numeric passes reuse them.
    fn run_staged(&self, a: &Csr<S::Elem>, b: &Csr<S::Elem>, pool: &Pool) -> Csr<S::Elem> {
        let _g = obs::span!("plan", "plan.staged");
        count_execute(self.algo);
        match &self.kernel {
            PlanKernel::Heap(ws) => {
                staged_pass::<S, _, _>(ws, |_| HeapKernel::new(), a, b, &self.stats, pool, true)
            }
            PlanKernel::Inspector(ws) => staged_pass::<S, _, _>(
                ws,
                |mf| InspectorKernel::new(mf, b.ncols()),
                a,
                b,
                &self.stats,
                pool,
                false,
            ),
            _ => unreachable!("only one-phase kernels defer their first run"),
        }
    }
}

/// Per-algorithm execution counters (`plan/plan.exec.*`): one bump
/// per numeric or staged pass, keyed by the plan's *resolved* kernel
/// — the runtime census behind per-kernel profiles (paper fig15).
fn count_execute(algo: Algorithm) {
    if !obs::enabled() {
        return;
    }
    macro_rules! site {
        ($name:literal) => {{
            static SITE: obs::CounterSite = obs::CounterSite::new("plan", $name);
            SITE.incr()
        }};
    }
    match algo {
        Algorithm::Hash => site!("plan.exec.hash"),
        Algorithm::HashVec => site!("plan.exec.hashvec"),
        Algorithm::Heap => site!("plan.exec.heap"),
        Algorithm::Spa => site!("plan.exec.spa"),
        Algorithm::Merge => site!("plan.exec.merge"),
        Algorithm::Inspector => site!("plan.exec.inspector"),
        Algorithm::KkHash => site!("plan.exec.kkhash"),
        Algorithm::Ikj => site!("plan.exec.ikj"),
        Algorithm::RowClass => site!("plan.exec.rowclass"),
        Algorithm::Reference => site!("plan.exec.reference"),
        // plans always carry a resolved kernel; `Auto` cannot reach
        // an execute, but count it rather than panic if it ever does
        Algorithm::Auto => site!("plan.exec.auto"),
    }
}

/// Requirements for the accumulator of the worker owning `range`.
fn req_for(
    stats: &MultiplyStats,
    range: &std::ops::Range<usize>,
    inner: usize,
    width: usize,
) -> AccumReq {
    AccumReq {
        max_row_flop: exec::max_flop_in(&stats.row_flops, range.clone()),
        inner_dim: inner,
        ncols_b: width,
    }
}

/// Symbolic phase: per-row counts with pooled accumulators, then a
/// scan into row pointers (Figure 7 lines 1–8, accumulators reused).
fn symbolic_pass<S, A, M>(
    ws: &WorkspacePool<A>,
    make: M,
    a: &Csr<S::Elem>,
    b: &Csr<S::Elem>,
    stats: &MultiplyStats,
    pool: &Pool,
) -> SymbolicPlan
where
    S: Semiring,
    A: ReusableAccumulator<S>,
    M: Fn(usize) -> A + Sync,
{
    let n = a.nrows();
    let (inner, width) = (a.ncols(), b.ncols());
    let mut rpts64 = vec![0u64; n + 1];
    {
        let rp = SharedMutSlice::new(&mut rpts64[..]);
        pool.parallel_ranges(&stats.offsets, |wid, range| {
            if range.is_empty() {
                return;
            }
            let req = req_for(stats, &range, inner, width);
            ws.with(
                wid,
                || make(req.max_row_flop),
                |acc, reused| {
                    if reused {
                        acc.ensure(&req);
                        acc.scrub();
                    }
                    for i in range {
                        let cnt = acc.symbolic_row(a, b, i) as u64;
                        // SAFETY: row `i` belongs to exactly one thread's range.
                        unsafe { rp.write(i + 1, cnt) };
                    }
                },
            );
        });
    }
    let total = scan::parallel_inclusive_scan(pool, &mut rpts64) as usize;
    let rpts: Vec<usize> = rpts64.iter().map(|&x| x as usize).collect();
    SymbolicPlan { rpts, nnz: total }
}

/// Numeric phase into pre-sliced output with pooled accumulators
/// (Figure 7 lines 9–21, accumulators reused).
#[allow(clippy::too_many_arguments)]
fn numeric_pass<S, A, M>(
    ws: &WorkspacePool<A>,
    make: M,
    a: &Csr<S::Elem>,
    b: &Csr<S::Elem>,
    stats: &MultiplyStats,
    rpts: &[usize],
    sorted: bool,
    pool: &Pool,
    cols: &mut [ColIdx],
    vals: &mut [S::Elem],
) where
    S: Semiring,
    A: ReusableAccumulator<S>,
    M: Fn(usize) -> A + Sync,
{
    let (inner, width) = (a.ncols(), b.ncols());
    let cols_s = SharedMutSlice::new(cols);
    let vals_s = SharedMutSlice::new(vals);
    pool.parallel_ranges(&stats.offsets, |wid, range| {
        if range.is_empty() {
            return;
        }
        let req = req_for(stats, &range, inner, width);
        ws.with(
            wid,
            || make(req.max_row_flop),
            |acc, reused| {
                if reused {
                    acc.ensure(&req);
                    acc.scrub();
                }
                for i in range {
                    let span = rpts[i]..rpts[i + 1];
                    // SAFETY: row spans are disjoint across threads by
                    // construction of `rpts` and the contiguous partition.
                    let (c, v) =
                        unsafe { (cols_s.slice_mut(span.clone()), vals_s.slice_mut(span)) };
                    acc.numeric_row(a, b, i, c, v, sorted);
                }
            },
        );
    });
}

/// One-phase staged driver with pooled kernels: stage per thread, scan
/// the realized counts, copy each thread's block into place — the
/// logic of `exec::one_phase_staged` with the kernel lifetime extended
/// to the plan.
fn staged_pass<S, K, M>(
    ws: &WorkspacePool<K>,
    make: M,
    a: &Csr<S::Elem>,
    b: &Csr<S::Elem>,
    stats: &MultiplyStats,
    pool: &Pool,
    sorted_output: bool,
) -> Csr<S::Elem>
where
    S: Semiring,
    K: ReusableAccumulator<S> + StagedRowKernel<S>,
    M: Fn(usize) -> K + Sync,
{
    let n = a.nrows();
    let (inner, width) = (a.ncols(), b.ncols());
    let nt = pool.nthreads();

    type Staged<E> = Vec<parking_lot::Mutex<(Vec<ColIdx>, Vec<E>)>>;
    let staged: Staged<S::Elem> = (0..nt)
        .map(|_| parking_lot::Mutex::new((Vec::new(), Vec::new())))
        .collect();
    let mut counts64 = vec![0u64; n + 1];
    {
        let cnt = SharedMutSlice::new(&mut counts64[..]);
        pool.parallel_ranges(&stats.offsets, |wid, range| {
            if range.is_empty() {
                return;
            }
            let flop_bound: u64 = stats.row_flops[range.clone()].iter().sum();
            let req = req_for(stats, &range, inner, width);
            ws.with(
                wid,
                || make(req.max_row_flop),
                |kernel, reused| {
                    if reused {
                        kernel.ensure(&req);
                        kernel.scrub();
                    }
                    let mut slot = staged[wid].lock();
                    let (cols, vals) = &mut *slot;
                    cols.clear();
                    vals.clear();
                    cols.reserve(flop_bound as usize);
                    vals.reserve(flop_bound as usize);
                    for i in range {
                        let emitted = kernel.stage_row(a, b, i, cols, vals) as u64;
                        // SAFETY: each row is staged by exactly one thread.
                        unsafe { cnt.write(i + 1, emitted) };
                    }
                },
            );
        });
    }

    let total = scan::parallel_inclusive_scan(pool, &mut counts64) as usize;
    let rpts: Vec<usize> = counts64.iter().map(|&x| x as usize).collect();

    let mut cols = vec![0 as ColIdx; total];
    let mut vals = vec![S::zero(); total];
    {
        let cols_s = SharedMutSlice::new(&mut cols[..]);
        let vals_s = SharedMutSlice::new(&mut vals[..]);
        let rpts_ref = &rpts;
        pool.parallel_ranges(&stats.offsets, |wid, range| {
            if range.is_empty() {
                return;
            }
            let slot = staged[wid].lock();
            let (scols, svals) = &*slot;
            let dst = rpts_ref[range.start]..rpts_ref[range.end];
            debug_assert_eq!(dst.len(), scols.len());
            // SAFETY: each thread's destination block is disjoint (the
            // row partition is contiguous and rpts is monotone).
            unsafe {
                cols_s.slice_mut(dst.clone()).copy_from_slice(scols);
                vals_s.slice_mut(dst).copy_from_slice(svals);
            }
        });
    }
    Csr::from_parts_unchecked(n, width, rpts, cols, vals, sorted_output)
}

/// Counters of one [`PlanCache`]'s reuse behaviour.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Multiplies served by the cached plan unchanged (structure
    /// matched: numeric-only execution).
    pub hits: u64,
    /// Multiplies that had to (re)build the symbolic plan — the first
    /// call plus every structure change. Pooled accumulators survive
    /// rebuilds.
    pub rebuilds: u64,
}

/// A single-entry plan cache for iterative workloads whose operand
/// structure *may* change between products (MCL pruning, adaptive
/// methods). Each multiply fingerprints the operands: a match executes
/// the cached plan numeric-only; a miss rebinds the plan — keeping its
/// pooled per-thread accumulators — and re-runs symbolic once.
///
/// ```
/// use spgemm::{Algorithm, OutputOrder, PlanCache};
/// use spgemm_sparse::{Csr, PlusTimes};
///
/// let a = Csr::<f64>::identity(6);
/// let mut cache = PlanCache::<PlusTimes<f64>>::new(Algorithm::Hash, OutputOrder::Sorted);
/// for _ in 0..3 {
///     let c = cache.multiply(&a, &a)?;
///     assert_eq!(c.nnz(), 6);
/// }
/// assert_eq!(cache.stats().rebuilds, 1);
/// assert_eq!(cache.stats().hits, 2);
/// # Ok::<(), spgemm_sparse::SparseError>(())
/// ```
pub struct PlanCache<S: Semiring> {
    algo: Algorithm,
    order: OutputOrder,
    plan: Option<SpgemmPlan<S>>,
    stats: PlanCacheStats,
}

impl<S: Semiring> PlanCache<S> {
    /// An empty cache that will plan with `algo` / `order`.
    pub fn new(algo: Algorithm, order: OutputOrder) -> Self {
        PlanCache {
            algo,
            order,
            plan: None,
            stats: PlanCacheStats::default(),
        }
    }

    /// The plan for `(a, b)`: the cached one when the structure
    /// matches, otherwise a rebind (or first build).
    pub fn plan_for(
        &mut self,
        a: &Csr<S::Elem>,
        b: &Csr<S::Elem>,
        pool: &Pool,
    ) -> Result<&SpgemmPlan<S>, SparseError> {
        let reusable = self
            .plan
            .as_ref()
            .is_some_and(|p| p.nthreads() == pool.nthreads() && p.matches_structure(a, b));
        if reusable {
            self.stats.hits += 1;
        } else {
            self.stats.rebuilds += 1;
            match self.plan.as_mut() {
                Some(p) => p.rebind_in(a, b, pool)?,
                None => self.plan = Some(SpgemmPlan::new_in(a, b, self.algo, self.order, pool)?),
            }
        }
        Ok(self.plan.as_ref().expect("plan installed above"))
    }

    /// Multiply through the cache on an explicit pool.
    pub fn multiply_in(
        &mut self,
        a: &Csr<S::Elem>,
        b: &Csr<S::Elem>,
        pool: &Pool,
    ) -> Result<Csr<S::Elem>, SparseError> {
        self.plan_for(a, b, pool)?.execute_in(a, b, pool)
    }

    /// Multiply through the cache on the process-global pool.
    pub fn multiply(
        &mut self,
        a: &Csr<S::Elem>,
        b: &Csr<S::Elem>,
    ) -> Result<Csr<S::Elem>, SparseError> {
        self.multiply_in(a, b, spgemm_par::global_pool())
    }

    /// Hit/rebuild counters.
    pub fn stats(&self) -> PlanCacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algos::reference;
    use spgemm_sparse::{approx_eq_f64, PlusTimes};

    type P = PlusTimes<f64>;

    fn sample() -> Csr<f64> {
        Csr::from_triplets(
            5,
            5,
            &[
                (0, 0, 2.0),
                (0, 3, 1.0),
                (1, 1, -1.0),
                (2, 0, 4.0),
                (2, 2, 0.5),
                (3, 4, 3.0),
                (4, 1, 6.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn plan_matches_oneshot_for_every_algorithm() {
        let a = sample();
        let pool = Pool::new(2);
        for algo in Algorithm::ALL {
            for order in [OutputOrder::Sorted, OutputOrder::Unsorted] {
                let plan = SpgemmPlan::<P>::new_in(&a, &a, algo, order, &pool).unwrap();
                let expect = crate::multiply_in::<P>(&a, &a, algo, order, &pool).unwrap();
                for round in 0..3 {
                    let got = plan.execute_in(&a, &a, &pool).unwrap();
                    assert_eq!(expect, got, "{algo} {order:?} round {round}");
                }
            }
        }
    }

    #[test]
    fn execute_into_reuses_and_stays_correct() {
        let a = sample();
        let pool = Pool::new(3);
        let plan =
            SpgemmPlan::<P>::new_in(&a, &a, Algorithm::Hash, OutputOrder::Sorted, &pool).unwrap();
        let expect = reference::multiply::<P>(&a, &a);
        let mut c = Csr::<f64>::zero(0, 0);
        for _ in 0..4 {
            plan.execute_into_in(&a, &a, &mut c, &pool).unwrap();
            assert!(approx_eq_f64(&expect, &c, 1e-12));
            assert!(c.validate().is_ok());
        }
        let st = plan.workspace_stats();
        assert!(st.created <= 3, "one accumulator per worker: {st:?}");
        assert!(st.reused >= 3, "later passes must reuse: {st:?}");
    }

    #[test]
    fn symbolic_nnz_eager_vs_deferred() {
        let a = sample();
        let pool = Pool::new(2);
        let two_phase =
            SpgemmPlan::<P>::new_in(&a, &a, Algorithm::Hash, OutputOrder::Sorted, &pool).unwrap();
        assert!(two_phase.symbolic_nnz().is_some());
        let one_phase =
            SpgemmPlan::<P>::new_in(&a, &a, Algorithm::Heap, OutputOrder::Sorted, &pool).unwrap();
        assert_eq!(one_phase.symbolic_nnz(), None, "deferred until first run");
        let c = one_phase.execute_in(&a, &a, &pool).unwrap();
        assert_eq!(one_phase.symbolic_nnz(), Some(c.nnz()));
    }

    #[test]
    fn plan_rejects_mismatched_operands() {
        let a = sample();
        let pool = Pool::new(2);
        let plan =
            SpgemmPlan::<P>::new_in(&a, &a, Algorithm::Hash, OutputOrder::Sorted, &pool).unwrap();
        let wrong_shape = Csr::<f64>::identity(4);
        assert!(matches!(
            plan.execute_in(&wrong_shape, &wrong_shape, &pool),
            Err(SparseError::ShapeMismatch { .. })
        ));
        let wrong_nnz = Csr::<f64>::identity(5);
        assert!(matches!(
            plan.execute_in(&wrong_nnz, &wrong_nnz, &pool),
            Err(SparseError::PlanMismatch { .. })
        ));
        let other_pool = Pool::new(4);
        assert!(matches!(
            plan.execute_in(&a, &a, &other_pool),
            Err(SparseError::PlanMismatch { .. })
        ));
    }

    #[test]
    fn values_may_change_under_fixed_structure() {
        let a = sample();
        let pool = Pool::new(2);
        let plan =
            SpgemmPlan::<P>::new_in(&a, &a, Algorithm::Hash, OutputOrder::Sorted, &pool).unwrap();
        let scaled = a.map(|v| v * -2.5);
        let got = plan.execute_in(&scaled, &scaled, &pool).unwrap();
        let expect = reference::multiply::<P>(&scaled, &scaled);
        assert!(approx_eq_f64(&expect, &got, 1e-12));
    }

    #[test]
    fn structure_signature_ignores_values_only() {
        let a = sample();
        assert_eq!(
            structure_signature(&a),
            structure_signature(&a.map(|v| v * 2.0))
        );
        let b = a.filter(|_, _, v| v > 0.0);
        assert_ne!(structure_signature(&a), structure_signature(&b));
    }

    #[test]
    fn cache_hits_on_stable_structure_and_rebinds_on_change() {
        let pool = Pool::new(2);
        let mut cache = PlanCache::<P>::new(Algorithm::Hash, OutputOrder::Sorted);
        let a = sample();
        for _ in 0..3 {
            let got = cache.multiply_in(&a, &a, &pool).unwrap();
            assert!(approx_eq_f64(
                &reference::multiply::<P>(&a, &a),
                &got,
                1e-12
            ));
        }
        assert_eq!(
            cache.stats(),
            PlanCacheStats {
                hits: 2,
                rebuilds: 1
            }
        );
        // disjoint pattern: forces a rebind, workspaces carry over
        let b = Csr::from_triplets(5, 5, &[(0, 4, 1.0), (4, 0, 1.0), (2, 3, 7.0)]).unwrap();
        let got = cache.multiply_in(&b, &b, &pool).unwrap();
        assert!(approx_eq_f64(
            &reference::multiply::<P>(&b, &b),
            &got,
            1e-12
        ));
        assert_eq!(
            cache.stats(),
            PlanCacheStats {
                hits: 2,
                rebuilds: 2
            }
        );
    }
}
