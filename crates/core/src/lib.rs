//! SpGEMM kernels for multicore x86, reproducing Nagasaka, Matsuoka,
//! Azad & Buluç, *"High-performance sparse matrix-matrix products on
//! Intel KNL and multicore architectures"* (ICPP 2018).
//!
//! The crate provides every algorithm the paper develops or compares
//! against, behind one entry point:
//!
//! ```
//! use spgemm::{multiply_f64, Algorithm, OutputOrder};
//! use spgemm_sparse::Csr;
//!
//! let a = Csr::<f64>::identity(4);
//! let c = multiply_f64(&a, &a, Algorithm::Hash, OutputOrder::Sorted).unwrap();
//! assert_eq!(c.nnz(), 4);
//! ```
//!
//! # Algorithms
//!
//! | [`Algorithm`] | paper code | phases | accumulator | input / output order |
//! |---------------|-----------|--------|-------------|----------------------|
//! | `Hash`        | Hash (§4.2.1) | 2 | linear-probing hash table | any / selectable |
//! | `HashVec`     | HashVector (§4.2.2) | 2 | SIMD-probed chunked hash table | any / selectable |
//! | `Heap`        | Heap (§4.2.3) | 1 | column-indexed binary heap | sorted / sorted |
//! | `Spa`         | MKL stand-in (unsorted runs) | 2 | dense sparse accumulator | any / selectable |
//! | `Merge`       | MKL stand-in (sorted runs) | 2 | iterative sorted-row merging | sorted / sorted |
//! | `Inspector`   | MKL-inspector stand-in | 1 | hash table, no symbolic phase | any / unsorted natively, sorted via post-sort |
//! | `KkHash`      | KokkosKernels `kkmem` stand-in | 2 | chained (linked-list) hash map | any / selectable |
//! | `Ikj`         | Sulatycke–Ghose IKJ (§2) | 2 | dense row scan + SPA | any / selectable |
//! | `RowClass`    | per-row-class selection ([`kgen`]) | 2 | SIMD insertion array / hash / SPA by row class | any / selectable |
//! | `Reference`   | correctness oracle | 1 | `BTreeMap`, sequential | any / sorted |
//!
//! All kernels share the architecture-specific machinery the paper
//! identifies as decisive (§3–4): the flop-balanced static row
//! partition (`RowsToThreads`), thread-private hash/heap/scratch
//! storage allocated inside the parallel region, and output buffers
//! written through pre-computed disjoint slices.
//!
//! Kernels are generic over a [`spgemm_sparse::Semiring`], so boolean
//! BFS and counting workloads run through the identical code paths as
//! `f64` arithmetic (see `spgemm-apps`).

#![warn(missing_docs)]

pub mod algos;
pub mod cost;
pub mod delta;
mod exec;
pub mod expr;
pub mod kgen;
mod options;
pub mod plan;
pub mod recipe;
pub mod tuning;

pub use delta::{ConsumerIndex, DirtyRows, RowPatch};
pub use exec::{plan as exec_plan, MultiplyStats};
pub use options::{Algorithm, OutputOrder};
pub use plan::{PlanCache, PlanCacheStats, SpgemmPlan};

use spgemm_par::Pool;
use spgemm_sparse::{Csr, PlusTimes, Semiring, SparseError};

/// Multiply `C = A · B` over semiring `S` with an explicit pool.
///
/// Validates shapes and each algorithm's input-sortedness contract
/// (see the table in the crate docs); `Algorithm::Auto` consults
/// [`recipe`] — first the tuned-selector hook if one is installed
/// (see [`recipe::set_auto_hook`] and the `spgemm-tune` crate), then
/// the static Table-4 recipe.
///
/// Internally this is exactly [`SpgemmPlan::new_in`] followed by one
/// [`SpgemmPlan::execute_in`] — the inspector–executor split with the
/// plan thrown away. Callers that repeat a product over a fixed (or
/// slowly drifting) sparsity structure should hold the plan (or a
/// [`PlanCache`]) instead and amortize the symbolic phase and all
/// accumulator allocations across executions.
pub fn multiply_in<S: Semiring>(
    a: &Csr<S::Elem>,
    b: &Csr<S::Elem>,
    algo: Algorithm,
    order: OutputOrder,
    pool: &Pool,
) -> Result<Csr<S::Elem>, SparseError> {
    SpgemmPlan::<S>::new_oneshot(a, b, algo, order, pool)?.execute_in(a, b, pool)
}

/// [`multiply_in`] on the process-global pool.
pub fn multiply<S: Semiring>(
    a: &Csr<S::Elem>,
    b: &Csr<S::Elem>,
    algo: Algorithm,
    order: OutputOrder,
) -> Result<Csr<S::Elem>, SparseError> {
    multiply_in::<S>(a, b, algo, order, spgemm_par::global_pool())
}

/// Convenience wrapper: `f64` matrices over the ordinary `(+, ×)`
/// arithmetic — the configuration every figure of the paper measures.
pub fn multiply_f64(
    a: &Csr<f64>,
    b: &Csr<f64>,
    algo: Algorithm,
    order: OutputOrder,
) -> Result<Csr<f64>, SparseError> {
    multiply::<PlusTimes<f64>>(a, b, algo, order)
}

/// Masked SpGEMM `C = (A · B) ∘ M` without materializing `A · B` —
/// see [`algos::masked::multiply_masked`].
pub use algos::masked::multiply_masked;

/// Count `nnz(A · B)` without computing values: the symbolic phase
/// alone, parallelized with the same flop-balanced partition the full
/// kernels use. Useful for sizing outputs and for the compression
/// ratio `flop / nnz(C)` without a full multiply.
pub fn product_nnz<A, B>(a: &Csr<A>, b: &Csr<B>, pool: &Pool) -> usize
where
    A: Copy + Send + Sync,
    B: Copy + Send + Sync,
{
    use spgemm_par::unsync::SharedMutSlice;
    assert_eq!(
        a.ncols(),
        b.nrows(),
        "product_nnz: inner dimension mismatch"
    );
    let stats = exec_plan(a, b, pool);
    let n = a.nrows();
    let mut counts = vec![0u64; n];
    {
        let cnt = SharedMutSlice::new(&mut counts[..]);
        let row_flops = &stats.row_flops;
        pool.parallel_ranges(&stats.offsets, |_wid, range| {
            if range.is_empty() {
                return;
            }
            let max_flop = row_flops[range.clone()].iter().copied().max().unwrap_or(0) as usize;
            let mut acc = algos::hash::HashAccumulator::<PlusTimes<f64>>::new(max_flop, b.ncols());
            for i in range {
                for &k in a.row_cols(i) {
                    for &j in b.row_cols(k as usize) {
                        acc.insert_symbolic(j);
                    }
                }
                // SAFETY: each row is counted by exactly one thread.
                unsafe { cnt.write(i, acc.len() as u64) };
                acc.reset();
            }
        });
    }
    counts.iter().map(|&x| x as usize).sum()
}
