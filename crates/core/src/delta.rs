//! Row-granular incremental SpGEMM: the machinery behind
//! [`SpgemmPlan::rebind_rows`](crate::SpgemmPlan::rebind_rows).
//!
//! The paper's inspector–executor split assumes a static structure;
//! dynamic-graph workloads break that assumption a few rows at a time.
//! Because every kernel here is a Gustavson *row-wise* product, output
//! row `i` depends only on row `A[i]` and the rows `B[k]` for
//! `k ∈ A[i]` — so a structural edit confined to a known set of input
//! rows invalidates a computable set of *output* rows and nothing
//! else:
//!
//! ```text
//! out_dirty = dirty(A)  ∪  { i : A[i] ∩ dirty(B) ≠ ∅ }
//! ```
//!
//! The second term needs a reverse column→consumer-row view of `A`;
//! that is [`ConsumerIndex`], built once and patched per edit. The
//! plan layer uses it to re-run the symbolic phase for `out_dirty`
//! only and splice the result into the cached row pointers; the
//! numeric layer recomputes those rows and copies the rest
//! (see `SpgemmPlan::execute_rows`). `spgemm::expr`'s
//! [`DeltaPlan`] chains per-node transfer functions on top so a k-row
//! edit flows through a whole pipeline recomputing `O(k · fanout)`
//! rows, and `spgemm-serve` patches its cross-tenant result cache with
//! [`recompute_product_rows`].
//!
//! Every incremental path is **byte-for-byte identical** to a
//! from-scratch rebind — the extraction order of every accumulator is
//! a pure per-row function of the operands, independent of pooled
//! capacity — and the `tests/` differential-oracle harness enforces
//! exactly that.

use spgemm_sparse::{ColIdx, Csr};

pub use crate::expr::{DeltaPlan, DeltaReport, NodeDelta};
pub use spgemm_sparse::delta::{DirtyRows, RowPatch};

/// Reverse column→consumer-row index of a matrix `A`: for every inner
/// column `k`, the ascending list of rows `i` with `k ∈ A[i]`.
///
/// This answers the dirty-propagation question "which output rows of
/// `A · B` consume a dirty row of `B`?" in time proportional to the
/// answer. The index carries a snapshot of `A`'s row patterns so that
/// [`ConsumerIndex::update_rows`] can retire stale reverse entries
/// without access to the pre-edit matrix.
#[derive(Clone, Debug)]
pub struct ConsumerIndex {
    /// `consumers[k]` = sorted rows `i` with `k ∈ A[i]`.
    consumers: Vec<Vec<u32>>,
    /// Snapshot of each row's column pattern (storage order).
    rows: Vec<Vec<ColIdx>>,
}

impl ConsumerIndex {
    /// Build the index from `a` (`O(nnz(A))`).
    pub fn build<T>(a: &Csr<T>) -> Self {
        let mut consumers = vec![Vec::new(); a.ncols()];
        let mut rows = Vec::with_capacity(a.nrows());
        for i in 0..a.nrows() {
            for &k in a.row_cols(i) {
                consumers[k as usize].push(i as u32);
            }
            rows.push(a.row_cols(i).to_vec());
        }
        ConsumerIndex { consumers, rows }
    }

    /// Number of rows of the indexed matrix.
    pub fn nrows(&self) -> usize {
        self.rows.len()
    }

    /// Re-index the rows in `dirty` against the post-edit matrix
    /// `a_new` (all other rows are unchanged by contract, which is
    /// what makes the index exact across a patch).
    ///
    /// # Panics
    /// If `a_new`'s shape differs from the indexed matrix's.
    pub fn update_rows<T>(&mut self, a_new: &Csr<T>, dirty: &DirtyRows) {
        assert_eq!(
            (a_new.nrows(), a_new.ncols()),
            (self.rows.len(), self.consumers.len()),
            "ConsumerIndex::update_rows: shape changed; rebuild instead"
        );
        for i in dirty.iter() {
            for &k in &self.rows[i] {
                let list = &mut self.consumers[k as usize];
                if let Ok(pos) = list.binary_search(&(i as u32)) {
                    list.remove(pos);
                }
            }
            for &k in a_new.row_cols(i) {
                let list = &mut self.consumers[k as usize];
                if let Err(pos) = list.binary_search(&(i as u32)) {
                    list.insert(pos, i as u32);
                }
            }
            self.rows[i] = a_new.row_cols(i).to_vec();
        }
    }

    /// The rows of `A` that consume inner column `k`.
    pub fn consumers_of(&self, k: usize) -> &[u32] {
        &self.consumers[k]
    }

    /// Output rows of `A · B` invalidated by the given input dirty
    /// sets: `dirty_a ∪ { i : A[i] ∩ dirty_b ≠ ∅ }`. The index must
    /// already reflect the *post-edit* `A` (clean rows are identical
    /// in both versions, so the reverse scan over the new patterns is
    /// exact).
    ///
    /// # Panics
    /// If the dirty universes don't match the indexed shape.
    pub fn out_dirty(&self, dirty_a: &DirtyRows, dirty_b: &DirtyRows) -> DirtyRows {
        assert_eq!(dirty_a.nrows(), self.rows.len(), "dirty_a universe");
        assert_eq!(dirty_b.nrows(), self.consumers.len(), "dirty_b universe");
        let mut out = dirty_a.clone();
        for k in dirty_b.iter() {
            for &i in &self.consumers[k] {
                out.insert(i as usize);
            }
        }
        out
    }
}

/// Replace the rows in `patched` of `old` with freshly computed rows
/// of the sorted product `A · B`, leaving every other row's bytes
/// untouched.
///
/// The per-row computation accumulates each output column in
/// `k`-encounter order and emits columns ascending — for *sorted*
/// operands this is bit-identical to the sorted output of the
/// hash-family kernels (Hash, HashVec, SPA, KkHash, IKJ), whose
/// per-column sums also run in ascending-`k` order. `spgemm-serve`
/// uses this to patch cached products in place instead of discarding
/// them on every upstream row update.
///
/// # Panics
/// Debug-asserts that operands are sorted and shapes line up; the
/// caller (an engine that planned the product) has already validated
/// them.
pub fn recompute_product_rows(
    a: &Csr<f64>,
    b: &Csr<f64>,
    patched: &DirtyRows,
    old: &Csr<f64>,
) -> Csr<f64> {
    debug_assert!(a.is_sorted() && b.is_sorted());
    debug_assert_eq!(a.ncols(), b.nrows());
    debug_assert_eq!((old.nrows(), old.ncols()), (a.nrows(), b.ncols()));
    debug_assert_eq!(patched.nrows(), a.nrows());

    let mut acc = vec![0.0f64; b.ncols()];
    let mut stamp = vec![0u32; b.ncols()];
    let mut epoch = 0u32;
    let mut rows: Vec<(usize, Vec<ColIdx>, Vec<f64>)> = Vec::with_capacity(patched.count());
    for i in patched.iter() {
        epoch += 1;
        let mut touched: Vec<ColIdx> = Vec::new();
        for (&k, &av) in a.row_cols(i).iter().zip(a.row_vals(i)) {
            let k = k as usize;
            for (&c, &bv) in b.row_cols(k).iter().zip(b.row_vals(k)) {
                let cu = c as usize;
                if stamp[cu] != epoch {
                    stamp[cu] = epoch;
                    acc[cu] = 0.0;
                    touched.push(c);
                }
                acc[cu] += av * bv;
            }
        }
        touched.sort_unstable();
        let vals = touched.iter().map(|&c| acc[c as usize]).collect();
        rows.push((i, touched, vals));
    }
    splice_rows(old, &rows)
}

/// Rebuild `old` with the listed rows replaced (rows ascending; each
/// entry is `(row, cols, vals)`), preserving the sorted flag.
pub(crate) fn splice_rows<T: Copy>(old: &Csr<T>, rows: &[(usize, Vec<ColIdx>, Vec<T>)]) -> Csr<T> {
    let delta: isize = rows
        .iter()
        .map(|&(i, ref c, _)| c.len() as isize - old.row_nnz(i) as isize)
        .sum();
    let new_nnz = (old.nnz() as isize + delta) as usize;
    let mut rpts = Vec::with_capacity(old.nrows() + 1);
    rpts.push(0usize);
    let mut cols = Vec::with_capacity(new_nnz);
    let mut vals = Vec::with_capacity(new_nnz);
    let mut next = 0usize;
    for i in 0..old.nrows() {
        if next < rows.len() && rows[next].0 == i {
            cols.extend_from_slice(&rows[next].1);
            vals.extend_from_slice(&rows[next].2);
            next += 1;
        } else {
            cols.extend_from_slice(old.row_cols(i));
            vals.extend_from_slice(old.row_vals(i));
        }
        rpts.push(cols.len());
    }
    debug_assert_eq!(next, rows.len(), "spliced rows must be ascending");
    Csr::from_parts_unchecked(old.nrows(), old.ncols(), rpts, cols, vals, old.is_sorted())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algos::reference;
    use spgemm_sparse::PlusTimes;

    fn sample() -> Csr<f64> {
        Csr::from_triplets(
            4,
            4,
            &[
                (0, 0, 1.0),
                (0, 2, 2.0),
                (1, 1, 3.0),
                (2, 0, 4.0),
                (2, 3, 5.0),
                (3, 2, 6.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn consumer_index_inverts_the_pattern() {
        let a = sample();
        let idx = ConsumerIndex::build(&a);
        assert_eq!(idx.consumers_of(0), &[0, 2]);
        assert_eq!(idx.consumers_of(1), &[1]);
        assert_eq!(idx.consumers_of(2), &[0, 3]);
        assert_eq!(idx.consumers_of(3), &[2]);
    }

    #[test]
    fn consumer_index_update_matches_rebuild() {
        let a = sample();
        let mut idx = ConsumerIndex::build(&a);
        let mut p = RowPatch::new();
        p.delete(0, 2).insert(0, 3, 9.0).insert(1, 0, 1.0);
        let (a2, dirty) = a.apply_patch(&p).unwrap();
        idx.update_rows(&a2, &dirty);
        let fresh = ConsumerIndex::build(&a2);
        for k in 0..a2.ncols() {
            assert_eq!(idx.consumers_of(k), fresh.consumers_of(k), "col {k}");
        }
    }

    #[test]
    fn out_dirty_unions_direct_and_reverse_hits() {
        let a = sample();
        let idx = ConsumerIndex::build(&a);
        let dirty_a = DirtyRows::from_rows(4, [1]);
        let dirty_b = DirtyRows::from_rows(4, [2]); // consumed by rows 0, 3
        let out = idx.out_dirty(&dirty_a, &dirty_b);
        assert_eq!(out.iter().collect::<Vec<_>>(), vec![0, 1, 3]);
    }

    #[test]
    fn recompute_product_rows_patches_exactly() {
        let a = sample();
        let b = sample();
        let full = reference::multiply::<PlusTimes<f64>>(&a, &b);
        // Perturb two rows of the cached product, then ask for them back.
        let broken = {
            let rows = vec![(0usize, vec![1 as ColIdx], vec![99.0]), (2, vec![], vec![])];
            splice_rows(&full, &rows)
        };
        let patched = DirtyRows::from_rows(4, [0, 2]);
        let fixed = recompute_product_rows(&a, &b, &patched, &broken);
        assert_eq!(fixed, full);
    }
}
