//! Shared execution drivers for all row-wise kernels.
//!
//! Every algorithm in this crate is a Gustavson row-wise SpGEMM
//! (Figure 1 of the paper) differing only in its per-row accumulator.
//! The orchestration around the accumulator is identical and lives
//! here:
//!
//! 1. **Plan** — per-row flop counts, then the flop-balanced
//!    contiguous row partition of §4.1 (`RowsToThreads`).
//! 2. **Two-phase** (Hash/HashVec/SPA/Merge/KkHash/IKJ): a symbolic
//!    pass counts each output row, a parallel scan turns counts into
//!    row pointers, and a numeric pass fills pre-sliced output —
//!    exactly Figure 7.
//! 3. **One-phase** (Heap/Inspector): each thread stages its rows into
//!    a thread-private buffer sized by its flop upper bound (the
//!    "parallel" memory scheme of §3.2), then copies into place once
//!    row pointers are known.

use crate::OutputOrder;
use spgemm_par::{partition, scan, unsync::SharedMutSlice, Pool};
use spgemm_sparse::{ColIdx, Csr, Semiring};

/// Work analysis for one multiply: per-row flop, the total, and the
/// balanced per-thread row ranges derived from them.
#[derive(Clone, Debug)]
pub struct MultiplyStats {
    /// `flop(c_i*)` for every output row.
    pub row_flops: Vec<u64>,
    /// Total scalar multiplications.
    pub total_flop: u64,
    /// `nthreads + 1` balanced row offsets (§4.1).
    pub offsets: Vec<usize>,
}

/// Compute [`MultiplyStats`] for `A · B` on the given pool.
pub fn plan<A: Copy + Send + Sync, B: Copy + Send + Sync>(
    a: &Csr<A>,
    b: &Csr<B>,
    pool: &Pool,
) -> MultiplyStats {
    let n = a.nrows();
    let mut row_flops = vec![0u64; n];
    scan::parallel_fill(pool, &mut row_flops, |i| {
        a.row_cols(i)
            .iter()
            .map(|&k| b.row_nnz(k as usize) as u64)
            .sum()
    });
    let mut prefix = row_flops.clone();
    let offsets = partition::balanced_offsets_in_place(&mut prefix, pool.nthreads(), pool);
    let total_flop = prefix.last().copied().unwrap_or(0);
    MultiplyStats {
        row_flops,
        total_flop,
        offsets,
    }
}

/// A per-thread accumulator driving one output row at a time.
///
/// `symbolic_row` returns the row's output nnz; `numeric_row` fills
/// the pre-sliced output arrays (whose length equals the symbolic
/// count) in sorted or accumulator order.
pub(crate) trait RowAccumulator<S: Semiring> {
    /// Count `nnz(c_i*)`.
    fn symbolic_row(&mut self, a: &Csr<S::Elem>, b: &Csr<S::Elem>, i: usize) -> usize;
    /// Compute row `i` into `cols`/`vals` (pre-sliced to the symbolic
    /// count), honouring `sorted`.
    fn numeric_row(
        &mut self,
        a: &Csr<S::Elem>,
        b: &Csr<S::Elem>,
        i: usize,
        cols: &mut [ColIdx],
        vals: &mut [S::Elem],
        sorted: bool,
    );
}

/// Capacity requirements a pooled accumulator must satisfy before it
/// may run rows of a (re)planned product: the same three quantities
/// [`AccumulatorFactory::make`] sizes fresh accumulators from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct AccumReq {
    /// Largest `flop(c_i*)` among the rows the accumulator will run.
    pub max_row_flop: usize,
    /// `ncols(A) == nrows(B)`.
    pub inner_dim: usize,
    /// Output width `ncols(B)`.
    pub ncols_b: usize,
}

/// A [`RowAccumulator`] that can be parked in a
/// [`spgemm_par::WorkspacePool`] and safely reused across executions —
/// including executions of *different* products after a plan rebind.
///
/// The pool's contract is clear-on-**acquire** (see
/// `spgemm_par::workspace`): whatever a previous execution left behind
/// — stale keys, a dirty touched-list, a table sized for a smaller
/// problem — must be repaired here, not trusted to have been cleaned
/// on release. Callers invoke both methods, in order, on every reused
/// acquisition:
///
/// 1. [`ReusableAccumulator::ensure`] grows internal storage to meet
///    `req` (never shrinks). Skipping this is the latent reuse bug
///    this trait exists to fix: a hash table sized for the old
///    problem's rows livelocks (no empty slot) or indexes out of
///    bounds on a denser rebind.
/// 2. [`ReusableAccumulator::scrub`] clears any per-row or per-matrix
///    state a previous (possibly panicked) execution may have left.
pub(crate) trait ReusableAccumulator<S: Semiring>: RowAccumulator<S> + Send {
    /// Grow internal storage to satisfy `req`; must be callable any
    /// number of times and never shrink.
    fn ensure(&mut self, req: &AccumReq);
    /// Drop all state left by previous rows/executions, keeping the
    /// allocations.
    fn scrub(&mut self);
}

/// Builds one [`RowAccumulator`] per worker thread, inside the
/// parallel region, sized from that thread's largest row (§4.2.1:
/// "The upper limit of any thread's local hash table size is the
/// maximum number of flop per row within the rows assigned to it").
pub(crate) trait AccumulatorFactory<S: Semiring>: Sync {
    /// The per-thread accumulator type.
    type Acc: RowAccumulator<S>;
    /// `max_row_flop`: largest `flop(c_i*)` among the thread's rows;
    /// `inner_dim`: `ncols(A) == nrows(B)`; `ncols_b`: output width.
    fn make(&self, max_row_flop: usize, inner_dim: usize, ncols_b: usize) -> Self::Acc;
}

/// Largest per-row flop within `range`.
pub(crate) fn max_flop_in(row_flops: &[u64], range: std::ops::Range<usize>) -> usize {
    row_flops[range].iter().copied().max().unwrap_or(0) as usize
}

/// The two-phase driver (symbolic → scan → numeric); Figure 7 of the
/// paper with the accumulator abstracted out.
pub(crate) fn two_phase<S: Semiring, F: AccumulatorFactory<S>>(
    a: &Csr<S::Elem>,
    b: &Csr<S::Elem>,
    order: OutputOrder,
    pool: &Pool,
    factory: &F,
) -> Csr<S::Elem> {
    let n = a.nrows();
    let stats = plan(a, b, pool);
    let inner = a.ncols();
    let width = b.ncols();

    // --- symbolic phase: counts into rpts[i + 1] ---
    let mut rpts64 = vec![0u64; n + 1];
    {
        let rp = SharedMutSlice::new(&mut rpts64[..]);
        pool.parallel_ranges(&stats.offsets, |_wid, range| {
            if range.is_empty() {
                return;
            }
            let mut acc = factory.make(max_flop_in(&stats.row_flops, range.clone()), inner, width);
            for i in range {
                let cnt = acc.symbolic_row(a, b, i) as u64;
                // SAFETY: row `i` belongs to exactly one thread's range.
                unsafe { rp.write(i + 1, cnt) };
            }
        });
    }

    // --- row pointers ---
    let total = scan::parallel_inclusive_scan(pool, &mut rpts64) as usize;
    let rpts: Vec<usize> = rpts64.iter().map(|&x| x as usize).collect();

    // --- numeric phase into pre-sliced output ---
    let mut cols = vec![0 as ColIdx; total];
    let mut vals = vec![S::zero(); total];
    {
        let cols_s = SharedMutSlice::new(&mut cols[..]);
        let vals_s = SharedMutSlice::new(&mut vals[..]);
        let rpts_ref = &rpts;
        pool.parallel_ranges(&stats.offsets, |_wid, range| {
            if range.is_empty() {
                return;
            }
            let mut acc = factory.make(max_flop_in(&stats.row_flops, range.clone()), inner, width);
            for i in range {
                let span = rpts_ref[i]..rpts_ref[i + 1];
                // SAFETY: row spans are disjoint across threads by
                // construction of `rpts` and the contiguous partition.
                let (c, v) = unsafe { (cols_s.slice_mut(span.clone()), vals_s.slice_mut(span)) };
                acc.numeric_row(a, b, i, c, v, order.is_sorted());
            }
        });
    }
    Csr::from_parts_unchecked(n, width, rpts, cols, vals, order.is_sorted())
}

/// A per-thread kernel for one-phase algorithms: rows are appended to
/// thread-private staging vectors (no symbolic pass sizes them —
/// capacity is the thread's flop upper bound).
pub(crate) trait StagedRowKernel<S: Semiring> {
    /// Append row `i`'s entries to the staging buffers; return how many
    /// were appended.
    fn stage_row(
        &mut self,
        a: &Csr<S::Elem>,
        b: &Csr<S::Elem>,
        i: usize,
        cols: &mut Vec<ColIdx>,
        vals: &mut Vec<S::Elem>,
    ) -> usize;
}

/// Factory for [`StagedRowKernel`]s (same contract as
/// [`AccumulatorFactory`]).
pub(crate) trait StagedKernelFactory<S: Semiring>: Sync {
    /// The per-thread kernel type.
    type Kernel: StagedRowKernel<S>;
    /// See [`AccumulatorFactory::make`].
    fn make(&self, max_row_flop: usize, inner_dim: usize, ncols_b: usize) -> Self::Kernel;
}

/// The one-phase driver: stage per thread, scan the realized counts,
/// then copy each thread's staging block into place (§4.2.3's
/// "parallel approach for memory management" — the temporary lives
/// and dies inside the owning worker).
///
/// `sorted_output` describes what the kernel emits (Heap: true,
/// Inspector: false) and is recorded on the result.
pub(crate) fn one_phase_staged<S: Semiring, F: StagedKernelFactory<S>>(
    a: &Csr<S::Elem>,
    b: &Csr<S::Elem>,
    pool: &Pool,
    factory: &F,
    sorted_output: bool,
) -> Csr<S::Elem> {
    let n = a.nrows();
    let stats = plan(a, b, pool);
    let inner = a.ncols();
    let width = b.ncols();
    let nt = pool.nthreads();

    // Thread-private staging, allocated and filled inside the region.
    type Staged<E> = Vec<parking_lot::Mutex<(Vec<ColIdx>, Vec<E>)>>;
    let staged: Staged<S::Elem> = (0..nt)
        .map(|_| parking_lot::Mutex::new((Vec::new(), Vec::new())))
        .collect();
    let mut counts64 = vec![0u64; n + 1];
    {
        let cnt = SharedMutSlice::new(&mut counts64[..]);
        pool.parallel_ranges(&stats.offsets, |wid, range| {
            if range.is_empty() {
                return;
            }
            let flop_bound: u64 = stats.row_flops[range.clone()].iter().sum();
            let mut kernel =
                factory.make(max_flop_in(&stats.row_flops, range.clone()), inner, width);
            let mut slot = staged[wid].lock();
            let (cols, vals) = &mut *slot;
            cols.clear();
            vals.clear();
            cols.reserve(flop_bound as usize);
            vals.reserve(flop_bound as usize);
            for i in range {
                let emitted = kernel.stage_row(a, b, i, cols, vals) as u64;
                // SAFETY: each row is staged by exactly one thread.
                unsafe { cnt.write(i + 1, emitted) };
            }
        });
    }

    let total = scan::parallel_inclusive_scan(pool, &mut counts64) as usize;
    let rpts: Vec<usize> = counts64.iter().map(|&x| x as usize).collect();

    let mut cols = vec![0 as ColIdx; total];
    let mut vals = vec![S::zero(); total];
    {
        let cols_s = SharedMutSlice::new(&mut cols[..]);
        let vals_s = SharedMutSlice::new(&mut vals[..]);
        let rpts_ref = &rpts;
        pool.parallel_ranges(&stats.offsets, |wid, range| {
            if range.is_empty() {
                return;
            }
            let slot = staged[wid].lock();
            let (scols, svals) = &*slot;
            let dst = rpts_ref[range.start]..rpts_ref[range.end];
            debug_assert_eq!(dst.len(), scols.len());
            // SAFETY: each thread's destination block is disjoint (the
            // row partition is contiguous and rpts is monotone).
            unsafe {
                cols_s.slice_mut(dst.clone()).copy_from_slice(scols);
                vals_s.slice_mut(dst).copy_from_slice(svals);
            }
            // Staging is dropped (deallocated) inside the owning
            // worker on the next multiply's clear; `shrink` here would
            // free eagerly but give up reuse.
        });
    }
    Csr::from_parts_unchecked(n, width, rpts, cols, vals, sorted_output)
}

/// `lowest_p2` from Figure 7: the smallest power of two *strictly
/// greater* than `x` (so a hash table sized this way always keeps at
/// least one empty slot).
#[inline]
pub(crate) fn lowest_p2_above(x: usize) -> usize {
    1usize << (usize::BITS - x.leading_zeros())
}

#[cfg(test)]
mod tests {
    use super::*;
    use spgemm_sparse::PlusTimes;

    #[test]
    fn lowest_p2_above_is_strictly_greater() {
        assert_eq!(lowest_p2_above(0), 1);
        assert_eq!(lowest_p2_above(1), 2);
        assert_eq!(lowest_p2_above(2), 4);
        assert_eq!(lowest_p2_above(3), 4);
        assert_eq!(lowest_p2_above(4), 8);
        assert_eq!(lowest_p2_above(1023), 1024);
        assert_eq!(lowest_p2_above(1024), 2048);
        for x in 0..500usize {
            let p = lowest_p2_above(x);
            assert!(p.is_power_of_two() && p > x);
            assert!(p / 2 <= x.max(1));
        }
    }

    #[test]
    fn plan_flop_matches_stats_crate() {
        let a = Csr::from_triplets(3, 3, &[(0, 0, 1.0), (0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)])
            .unwrap();
        let pool = Pool::new(2);
        let st = plan(&a, &a, &pool);
        assert_eq!(st.total_flop, spgemm_sparse::stats::flop(&a, &a));
        assert_eq!(st.offsets.len(), 3);
        assert_eq!(*st.offsets.last().unwrap(), 3);
        let _ = PlusTimes::<f64>::zero();
    }
}
