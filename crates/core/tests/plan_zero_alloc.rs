//! Steady-state allocation accounting for the plan executor — the
//! acceptance test for the Figure 4 claim: once a [`SpgemmPlan`] and
//! its reused output have warmed up, `execute_into` performs **zero**
//! heap allocations per multiply.
//!
//! A counting `#[global_allocator]` wraps the system allocator and
//! tallies allocations **per thread**: the strict zero assertion runs
//! on a single-thread pool (inline execution on the test thread, so
//! its thread-local count is exact and immune to the harness running
//! other tests concurrently), and a separate workspace-stats test
//! asserts pool-level reuse at higher thread counts.

use spgemm::{Algorithm, OutputOrder, SpgemmPlan};
use spgemm_par::Pool;
use spgemm_sparse::{ColIdx, Csr, PlusTimes};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

type P = PlusTimes<f64>;

struct CountingAlloc;

thread_local! {
    // const-init + no Drop: the TLS slot itself never allocates, so
    // the allocator hooks cannot recurse.
    static LOCAL_ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

fn bump() {
    let _ = LOCAL_ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocations performed by the *calling* thread so far.
fn allocations() -> u64 {
    LOCAL_ALLOCATIONS.with(Cell::get)
}

/// A mid-sized banded matrix: every kernel takes its real code path
/// (multi-entry rows, collisions, accumulation).
fn banded(n: usize) -> Csr<f64> {
    let mut trips = Vec::new();
    for i in 0..n {
        for d in [0usize, 1, 3, 7] {
            let j = (i + d) % n;
            trips.push((i, j as ColIdx, 1.0 + (i * 31 + j) as f64 * 0.01));
        }
    }
    Csr::from_triplets(n, n, &trips).unwrap()
}

#[test]
fn execute_into_steady_state_allocates_nothing() {
    let a = banded(256);
    let pool = Pool::new(1); // inline execution: exact accounting
                             // Every two-phase algorithm must reach the allocation-free steady
                             // state. (Heap joins after its deferred first run; Inspector with
                             // Unsorted output likewise. Inspector+Sorted pays a post-sort on
                             // the staged first run only, then extracts sorted rows in place.)
    for (algo, order) in [
        (Algorithm::Hash, OutputOrder::Sorted),
        (Algorithm::Hash, OutputOrder::Unsorted),
        (Algorithm::HashVec, OutputOrder::Sorted),
        (Algorithm::Spa, OutputOrder::Sorted),
        (Algorithm::Merge, OutputOrder::Sorted),
        (Algorithm::KkHash, OutputOrder::Sorted),
        (Algorithm::Ikj, OutputOrder::Sorted),
        (Algorithm::Heap, OutputOrder::Sorted),
        (Algorithm::Inspector, OutputOrder::Unsorted),
        (Algorithm::Inspector, OutputOrder::Sorted),
        // 256 columns < 2^16: the bucketed passes run over the
        // u16-compressed column-index copies.
        (Algorithm::RowClass, OutputOrder::Sorted),
        (Algorithm::RowClass, OutputOrder::Unsorted),
    ] {
        let plan = SpgemmPlan::<P>::new_in(&a, &a, algo, order, &pool).unwrap();
        let mut c = Csr::<f64>::zero(0, 0);
        // Warm-up: size the output buffers, the pooled accumulators,
        // and (for one-phase algorithms) capture the deferred
        // symbolic structure.
        for _ in 0..3 {
            plan.execute_into_in(&a, &a, &mut c, &pool).unwrap();
        }
        let nnz = c.nnz();
        assert!(nnz > 0);

        let before = allocations();
        for _ in 0..10 {
            plan.execute_into_in(&a, &a, &mut c, &pool).unwrap();
        }
        let after = allocations();
        assert_eq!(
            after - before,
            0,
            "{algo} {order:?}: steady-state execute_into must not allocate"
        );
        assert_eq!(c.nnz(), nnz, "{algo} {order:?}: result drifted");
    }
}

/// A matrix whose rows land in all four row classes of
/// [`spgemm::kgen`]: every entry points at a 4-entry row, so a row
/// with `e` entries costs exactly `4e` flops — 1 entry → tiny (4),
/// 4 → short (16), 10 → medium (40), 80 → dense (320 ≥
/// `dense_cutoff(512)` = 128).
fn all_classes(n: usize) -> Csr<f64> {
    assert_eq!(n, 512);
    let mut trips = Vec::new();
    for i in 0..n {
        let entries = match i % 4 {
            0 => 1,
            1 => 4,
            2 => 10,
            _ => 80,
        };
        for t in 0..entries {
            // columns drawn from the rows with 4 entries (i % 4 == 1)
            let j = ((i / 4 + t) % (n / 4)) * 4 + 1;
            trips.push((i, j as ColIdx, 1.0 + (i * 7 + t) as f64 * 0.01));
        }
    }
    Csr::from_triplets(n, n, &trips).unwrap()
}

/// RowClass steady state with every class queue occupied: the
/// insertion array, the clamped hash table, and the dense SPA all
/// reach the allocation-free regime together.
#[test]
fn rowclass_all_classes_steady_state_allocates_nothing() {
    let a = all_classes(512);
    let occ = spgemm::kgen::bucket_occupancy(&a, &a);
    assert!(
        occ.iter().all(|&c| c > 0),
        "fixture must occupy all four classes, got {occ:?}"
    );
    let pool = Pool::new(1);
    for order in [OutputOrder::Sorted, OutputOrder::Unsorted] {
        let plan = SpgemmPlan::<P>::new_in(&a, &a, Algorithm::RowClass, order, &pool).unwrap();
        let mut c = Csr::<f64>::zero(0, 0);
        for _ in 0..3 {
            plan.execute_into_in(&a, &a, &mut c, &pool).unwrap();
        }
        let nnz = c.nnz();
        let before = allocations();
        for _ in 0..10 {
            plan.execute_into_in(&a, &a, &mut c, &pool).unwrap();
        }
        assert_eq!(
            allocations() - before,
            0,
            "RowClass {order:?}: steady-state execute_into must not allocate"
        );
        assert_eq!(c.nnz(), nnz, "RowClass {order:?}: result drifted");
    }
}

/// RowClass steady state on a matrix too wide for u16 compression
/// (70 000 ≥ 2^16): the bucketed passes fall back to the operands'
/// native u32 indices and must still be allocation-free.
#[test]
fn rowclass_u32_index_path_steady_state_allocates_nothing() {
    let a = banded(70_000);
    let pool = Pool::new(1);
    let plan =
        SpgemmPlan::<P>::new_in(&a, &a, Algorithm::RowClass, OutputOrder::Sorted, &pool).unwrap();
    let mut c = Csr::<f64>::zero(0, 0);
    for _ in 0..2 {
        plan.execute_into_in(&a, &a, &mut c, &pool).unwrap();
    }
    let nnz = c.nnz();
    let before = allocations();
    for _ in 0..3 {
        plan.execute_into_in(&a, &a, &mut c, &pool).unwrap();
    }
    assert_eq!(
        allocations() - before,
        0,
        "RowClass u32 path: steady-state execute_into must not allocate"
    );
    assert_eq!(c.nnz(), nnz);
}

#[test]
fn workspace_pool_reuses_across_executions_multithreaded() {
    let a = banded(512);
    for nt in [2usize, 4] {
        let pool = Pool::new(nt);
        let plan =
            SpgemmPlan::<P>::new_in(&a, &a, Algorithm::Hash, OutputOrder::Sorted, &pool).unwrap();
        let mut c = Csr::<f64>::zero(0, 0);
        let executes = 10u64;
        for _ in 0..executes {
            plan.execute_into_in(&a, &a, &mut c, &pool).unwrap();
        }
        let st = plan.workspace_stats();
        assert!(
            st.created <= nt as u64,
            "nt={nt}: at most one accumulator per worker, got {st:?}"
        );
        // symbolic pass + `executes` numeric passes acquire per worker
        assert!(
            st.reused >= executes,
            "nt={nt}: numeric passes must reuse pooled accumulators, got {st:?}"
        );
        assert_eq!(st.acquisitions(), st.created + st.reused);
    }
}

#[test]
fn one_shot_multiply_through_plan_is_unchanged() {
    // The routed one-shot path must still produce valid results under
    // the counting allocator (sanity that instrumentation sees the
    // real code path, not a stub).
    let a = banded(64);
    let pool = Pool::new(2);
    let before = allocations();
    let c = spgemm::multiply_in::<P>(&a, &a, Algorithm::Hash, OutputOrder::Sorted, &pool).unwrap();
    assert!(allocations() > before, "one-shot multiplies do allocate");
    assert!(c.validate().is_ok());
    assert_eq!(c.nrows(), 64);
}
