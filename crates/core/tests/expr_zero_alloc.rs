//! Steady-state allocation accounting for the expression-plan
//! executor — the acceptance test for the fusion claim: once an
//! [`ExprPlan`] and its reused output have warmed up,
//! `execute_into` re-runs the *whole pipeline* (SpGEMM, transpose,
//! add, hadamard, fused element-wise epilogues, root copy) with
//! **zero** heap allocations for intermediates.
//!
//! Same approach as `plan_zero_alloc.rs`: a counting
//! `#[global_allocator]` tallies allocations per thread and the strict
//! assertion runs on a single-thread pool (inline execution, exact
//! thread-local accounting).

use spgemm::expr::{ElemMap, ExprGraph, ExprPlan};
use spgemm::Algorithm;
use spgemm_par::Pool;
use spgemm_sparse::{ColIdx, Csr};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

struct CountingAlloc;

thread_local! {
    // const-init + no Drop: the TLS slot itself never allocates, so
    // the allocator hooks cannot recurse.
    static LOCAL_ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

fn bump() {
    let _ = LOCAL_ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    LOCAL_ALLOCATIONS.with(Cell::get)
}

/// Banded matrix: multi-entry rows, real accumulation in every node.
fn banded(n: usize) -> Csr<f64> {
    let mut trips = Vec::new();
    for i in 0..n {
        for d in [0usize, 1, 3, 7] {
            let j = (i + d) % n;
            trips.push((i, j as ColIdx, 1.0 + (i * 31 + j) as f64 * 0.01));
        }
    }
    Csr::from_triplets(n, n, &trips).unwrap()
}

#[test]
fn expr_execute_into_steady_state_allocates_nothing() {
    let a = banded(192);
    let rf: Vec<f64> = (0..a.nrows()).map(|i| 1.0 + (i % 3) as f64).collect();
    let pool = Pool::new(1); // inline execution: exact accounting

    // Every node kind in one DAG:
    //   t  = Aᵀ              (cached counting sort, gather refill)
    //   s  = A + t           (cached union structure, provenance refill)
    //   sq = s · s           (SpgemmPlan execute_into)
    //   h  = sq ∘ A          (cached intersection, provenance refill)
    //   m  = |h|^2           (fused epilogue in h's buffer)
    //   n  = normalize_cols  (fused epilogue, cached colsum scratch)
    //   r  = scale_rows(n)   (fused epilogue)
    let mut g = ExprGraph::new();
    let ia = g.input();
    let vf = g.vec_input();
    let t = g.transpose(ia);
    let s = g.add(ia, t);
    let sq = g.multiply(s, s);
    let h = g.hadamard(sq, ia);
    let m = g.map(h, ElemMap::AbsPow(2.0));
    let n = g.normalize_cols(m);
    let root = g.scale_rows(n, vf);

    let mut plan = ExprPlan::new_in(&g, root, &[&a], &[&rf], Algorithm::Hash, &pool).unwrap();
    assert_eq!(plan.fused_nodes(), 3, "map, normalize and scale all fuse");
    assert!(plan.fused_bytes_eliminated() > 0);

    let mut out = Csr::<f64>::zero(0, 0);
    // Warm-up: size the output and every pooled accumulator.
    for _ in 0..3 {
        plan.execute_into_in(&[&a], &[&rf], &mut out, &pool)
            .unwrap();
    }
    let nnz = out.nnz();
    assert!(nnz > 0);

    let before = allocations();
    for _ in 0..10 {
        plan.execute_into_in(&[&a], &[&rf], &mut out, &pool)
            .unwrap();
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "steady-state expression execution must not allocate"
    );
    assert_eq!(out.nnz(), nnz, "result drifted");
    assert!(out.validate().is_ok());
}

/// The same pipeline with the multiply nodes running RowClass: the
/// bucketed passes (u16-compressed indices at 192 columns) must reach
/// the allocation-free steady state inside an expression plan too.
#[test]
fn expr_rowclass_steady_state_allocates_nothing() {
    let a = banded(192);
    let pool = Pool::new(1);
    let mut g = ExprGraph::new();
    let ia = g.input();
    let t = g.transpose(ia);
    let s = g.add(ia, t);
    let sq = g.multiply(s, s);
    let root = g.hadamard(sq, ia);

    let mut plan = ExprPlan::new_in(&g, root, &[&a], &[], Algorithm::RowClass, &pool).unwrap();
    let mut out = Csr::<f64>::zero(0, 0);
    for _ in 0..3 {
        plan.execute_into_in(&[&a], &[], &mut out, &pool).unwrap();
    }
    let nnz = out.nnz();
    assert!(nnz > 0);

    let before = allocations();
    for _ in 0..10 {
        plan.execute_into_in(&[&a], &[], &mut out, &pool).unwrap();
    }
    assert_eq!(
        allocations() - before,
        0,
        "steady-state RowClass expression execution must not allocate"
    );
    assert_eq!(out.nnz(), nnz, "result drifted");
    assert!(out.validate().is_ok());
}

#[test]
fn expr_bind_does_allocate_and_results_stay_valid() {
    // Sanity that the instrumentation sees the real code path: the
    // bind pass must allocate (it builds every cached structure).
    let a = banded(64);
    let pool = Pool::new(1);
    let mut g = ExprGraph::new();
    let ia = g.input();
    let sq = g.multiply(ia, ia);
    let root = g.normalize_cols(sq);
    let before = allocations();
    let mut plan = ExprPlan::new_in(&g, root, &[&a], &[], Algorithm::Hash, &pool).unwrap();
    assert!(allocations() > before, "binding builds structures");
    let mut out = Csr::zero(0, 0);
    plan.execute_into_in(&[&a], &[], &mut out, &pool).unwrap();
    assert!(out.validate().is_ok());
    assert_eq!(out.nrows(), 64);
}
