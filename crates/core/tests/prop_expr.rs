//! Property tests for the expression-plan layer: compiled DAGs must
//! equal the hand-composed `ops` + `multiply_in` pipelines byte for
//! byte, fusion must be value-invisible, drift must rebind safely, and
//! the error paths must hold.

use proptest::prelude::*;
use spgemm::expr::{ElemMap, ExprCache, ExprGraph, ExprPlan};
use spgemm::{multiply_in, Algorithm, OutputOrder};
use spgemm_par::Pool;
use spgemm_sparse::{ops, ColIdx, Coo, Csr, PlusTimes, SparseError};

type P = PlusTimes<f64>;

/// Random square matrix with small-integer values (exact arithmetic).
fn arb_square(max_dim: usize, max_nnz: usize) -> impl Strategy<Value = Csr<f64>> {
    (2..=max_dim).prop_flat_map(move |n| {
        proptest::collection::vec((0..n, 0..n, -4i64..=4), 1..=max_nnz).prop_map(move |trips| {
            let mut coo = Coo::new(n, n).unwrap();
            for (r, c, v) in trips {
                coo.push(r, c as ColIdx, v as f64).unwrap();
            }
            coo.into_csr_sum()
        })
    })
}

/// Pair of equal-size square matrices.
fn arb_square_pair(max_dim: usize, max_nnz: usize) -> impl Strategy<Value = (Csr<f64>, Csr<f64>)> {
    (2..=max_dim).prop_flat_map(move |n| {
        let one = move || {
            proptest::collection::vec((0..n, 0..n, -4i64..=4), 1..=max_nnz).prop_map(move |trips| {
                let mut coo = Coo::new(n, n).unwrap();
                for (r, c, v) in trips {
                    coo.push(r, c as ColIdx, v as f64).unwrap();
                }
                coo.into_csr_sum()
            })
        };
        (one(), one())
    })
}

fn bits_eq(a: &Csr<f64>, b: &Csr<f64>) -> bool {
    a.shape() == b.shape()
        && a.rpts() == b.rpts()
        && a.cols() == b.cols()
        && a.vals()
            .iter()
            .zip(b.vals())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

/// The unfused reference for the composite DAG below.
fn composite_reference(a: &Csr<f64>, b: &Csr<f64>, rf: &[f64], pool: &Pool) -> Csr<f64> {
    let t = ops::transpose(b);
    let s = ops::add(a, &t).unwrap();
    let prod = multiply_in::<P>(&s, b, Algorithm::Hash, OutputOrder::Sorted, pool).unwrap();
    let h = ops::hadamard(&prod, a).unwrap();
    let m = h.map(|v| v * 1.5);
    ops::scale_rows(&m, rf).unwrap()
}

/// Build the composite DAG: scale_rows(1.5 * ((A + Bᵀ)·B ∘ A), rf).
fn composite_graph() -> (ExprGraph, spgemm::expr::NodeId) {
    let mut g = ExprGraph::new();
    let a = g.input();
    let b = g.input();
    let rf = g.vec_input();
    let t = g.transpose(b);
    let s = g.add(a, t);
    let prod = g.multiply(s, b);
    let h = g.hadamard(prod, a);
    let m = g.map(h, ElemMap::Scale(1.5));
    let root = g.scale_rows(m, rf);
    (g, root)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn composite_dag_matches_manual_composition((a, b) in arb_square_pair(20, 80), nt in 1usize..=3) {
        let pool = Pool::new(nt);
        let rf: Vec<f64> = (0..a.nrows()).map(|i| (i % 5) as f64 - 2.0).collect();
        let (g, root) = composite_graph();
        let mut plan = ExprPlan::new_in(&g, root, &[&a, &b], &[&rf], Algorithm::Hash, &pool).unwrap();
        let expect = composite_reference(&a, &b, &rf, &pool);
        let mut out = Csr::zero(0, 0);
        for round in 0..3 {
            plan.execute_into_in(&[&a, &b], &[&rf], &mut out, &pool).unwrap();
            prop_assert!(bits_eq(&out, &expect), "round {}", round);
            prop_assert!(out.validate().is_ok());
        }
        // Values drift under a fixed structure: still numeric-only.
        let a2 = a.map(|v| v * -0.5);
        let b2 = b.map(|v| v + 0.25);
        plan.execute_into_in(&[&a2, &b2], &[&rf], &mut out, &pool).unwrap();
        prop_assert!(bits_eq(&out, &composite_reference(&a2, &b2, &rf, &pool)));
    }

    #[test]
    fn masked_multiply_matches_product_then_hadamard((a, mask) in arb_square_pair(18, 70)) {
        let pool = Pool::new(2);
        let mut g = ExprGraph::new();
        let ia = g.input();
        let im = g.input();
        let root = g.masked_multiply(ia, ia, im);
        let mut plan = ExprPlan::new_in(&g, root, &[&a, &mask], &[], Algorithm::Hash, &pool).unwrap();
        let mut out = Csr::zero(0, 0);
        plan.execute_into_in(&[&a, &mask], &[], &mut out, &pool).unwrap();
        let prod = multiply_in::<P>(&a, &a, Algorithm::Hash, OutputOrder::Sorted, &pool).unwrap();
        let expect = ops::hadamard(&prod, &mask).unwrap();
        prop_assert!(bits_eq(&out, &expect));
    }

    #[test]
    fn fusion_is_value_invisible(a in arb_square(18, 70)) {
        let pool = Pool::new(2);
        // Fused: the map's operand (the product) has one consumer.
        let mut gf = ExprGraph::new();
        let ia = gf.input();
        let sq = gf.multiply(ia, ia);
        let rootf = gf.map(sq, ElemMap::AbsPow(2.0));
        let mut fused = ExprPlan::new_in(&gf, rootf, &[&a], &[], Algorithm::Hash, &pool).unwrap();
        prop_assert_eq!(fused.fused_nodes(), 1);
        prop_assert!(fused.fused_bytes_eliminated() > 0 || a.nnz() == 0);
        // Unfused: an extra consumer of the product forces the map to
        // materialize its own copy.
        let mut gu = ExprGraph::new();
        let ia = gu.input();
        let sq = gu.multiply(ia, ia);
        let m = gu.map(sq, ElemMap::AbsPow(2.0));
        let rootu = gu.hadamard(m, sq);
        let mut unfused = ExprPlan::new_in(&gu, rootu, &[&a], &[], Algorithm::Hash, &pool).unwrap();
        prop_assert_eq!(unfused.fused_nodes(), 0);

        let mut of = Csr::zero(0, 0);
        let mut ou = Csr::zero(0, 0);
        fused.execute_into_in(&[&a], &[], &mut of, &pool).unwrap();
        unfused.execute_into_in(&[&a], &[], &mut ou, &pool).unwrap();
        // same map values: |A²|² on the product structure (runtime
        // exponent so release builds can't const-fold powf into x*x
        // and diverge from the runtime-parameterized ElemMap)
        let r = std::hint::black_box(2.0f64);
        let sqm = multiply_in::<P>(&a, &a, Algorithm::Hash, OutputOrder::Sorted, &pool).unwrap();
        let expect_f = sqm.map(|v| v.abs().powf(r));
        prop_assert!(bits_eq(&of, &expect_f));
        let expect_u = ops::hadamard(&expect_f, &sqm).unwrap();
        prop_assert!(bits_eq(&ou, &expect_u));
    }

    #[test]
    fn cache_hits_on_stable_structure_and_rebinds_on_drift((a, b) in arb_square_pair(16, 60)) {
        prop_assume!(a.structure_fingerprint() != b.structure_fingerprint());
        let pool = Pool::new(2);
        let mut g = ExprGraph::new();
        let ia = g.input();
        let sq = g.multiply(ia, ia);
        let root = g.normalize_cols(sq);
        let mut cache = ExprCache::new(g, root, Algorithm::Hash);
        let mut out = Csr::zero(0, 0);
        let oracle = |m: &Csr<f64>| {
            let sq = multiply_in::<P>(m, m, Algorithm::Hash, OutputOrder::Sorted, &pool).unwrap();
            ops::normalize_columns(&sq)
        };
        for _ in 0..3 {
            cache.execute_into_in(&[&a], &[], &mut out, &pool).unwrap();
            prop_assert!(bits_eq(&out, &oracle(&a)));
        }
        prop_assert_eq!(cache.stats().rebuilds, 1);
        prop_assert_eq!(cache.stats().hits, 2);
        // drift to a different pattern and back
        cache.execute_into_in(&[&b], &[], &mut out, &pool).unwrap();
        prop_assert!(bits_eq(&out, &oracle(&b)));
        prop_assert_eq!(cache.stats().rebuilds, 2);
        cache.execute_into_in(&[&a], &[], &mut out, &pool).unwrap();
        prop_assert!(bits_eq(&out, &oracle(&a)));
        prop_assert_eq!(cache.stats().rebuilds, 3);
    }
}

#[test]
fn plan_rejects_binding_and_execution_mismatches() {
    let pool = Pool::new(2);
    let a = Csr::<f64>::identity(6);
    let (g, root) = composite_graph();
    let rf = vec![1.0; 6];
    // wrong input count
    assert!(matches!(
        ExprPlan::new_in(&g, root, &[&a], &[&rf], Algorithm::Hash, &pool),
        Err(SparseError::PlanMismatch { .. })
    ));
    // unsorted input
    let two_per_row =
        Csr::from_triplets(6, 6, &[(0, 0, 1.0), (0, 3, 2.0), (1, 1, 1.0), (1, 4, 2.0)]).unwrap();
    let unsorted = ops::permute_cols(&two_per_row, &[3, 2, 1, 0, 5, 4]).unwrap();
    assert!(!unsorted.is_sorted());
    assert!(matches!(
        ExprPlan::new_in(&g, root, &[&unsorted, &a], &[&rf], Algorithm::Hash, &pool),
        Err(SparseError::Unsorted { .. })
    ));
    // shape mismatch inside the DAG (add of 6x6 with 4x4ᵀ)
    let small = Csr::<f64>::identity(4);
    assert!(matches!(
        ExprPlan::new_in(&g, root, &[&a, &small], &[&rf], Algorithm::Hash, &pool),
        Err(SparseError::ShapeMismatch { .. })
    ));
    // bad vector length
    let short = vec![1.0; 3];
    assert!(matches!(
        ExprPlan::new_in(&g, root, &[&a, &a], &[&short], Algorithm::Hash, &pool),
        Err(SparseError::ShapeMismatch { .. })
    ));
    // execution drift without rebind
    let mut plan = ExprPlan::new_in(&g, root, &[&a, &a], &[&rf], Algorithm::Hash, &pool).unwrap();
    let denser = ops::add(&a, &ops::transpose(&Csr::<f64>::identity(6))).unwrap();
    let with_more = Csr::from_triplets(6, 6, &[(0, 0, 1.0), (1, 2, 3.0)]).unwrap();
    let mut out = Csr::zero(0, 0);
    assert!(matches!(
        plan.execute_into_in(&[&with_more, &a], &[&rf], &mut out, &pool),
        Err(SparseError::PlanMismatch { .. })
    ));
    let _ = denser;
    // wrong pool width
    let wide = Pool::new(3);
    assert!(matches!(
        plan.execute_into_in(&[&a, &a], &[&rf], &mut out, &wide),
        Err(SparseError::PlanMismatch { .. })
    ));
    // matches_inputs: values may change, structure may not
    assert!(plan.matches_inputs(&[&a.map(|v| v * 3.0), &a]));
    assert!(!plan.matches_inputs(&[&with_more, &a]));
    assert!(!plan.matches_inputs(&[&a]));
}

#[test]
fn rebind_keeps_multiply_workspaces() {
    let pool = Pool::new(2);
    let mut g = ExprGraph::new();
    let ia = g.input();
    let root = g.multiply(ia, ia);
    let a = spgemm_gen::suite::uniform_matrix(40, 300, &mut spgemm_gen::rng(3));
    let b = spgemm_gen::suite::uniform_matrix(40, 280, &mut spgemm_gen::rng(4));
    let mut plan = ExprPlan::new_in(&g, root, &[&a], &[], Algorithm::Hash, &pool).unwrap();
    let mut out = Csr::zero(0, 0);
    plan.execute_into_in(&[&a], &[], &mut out, &pool).unwrap();
    let before = plan.workspace_stats();
    assert!(before.created >= 1);
    plan.rebind_in(&[&b], &[], &pool).unwrap();
    plan.execute_into_in(&[&b], &[], &mut out, &pool).unwrap();
    let after = plan.workspace_stats();
    assert_eq!(
        after.created, before.created,
        "rebinding must keep the pooled accumulators: {before:?} -> {after:?}"
    );
    assert!(after.reused > before.reused);
    let expect = multiply_in::<P>(&b, &b, Algorithm::Hash, OutputOrder::Sorted, &pool).unwrap();
    assert!(bits_eq(&out, &expect));
}

#[test]
fn dag_fingerprint_tracks_structure_and_kernel() {
    let pool = Pool::new(1);
    let mut g = ExprGraph::new();
    let ia = g.input();
    let root = g.multiply(ia, ia);
    let a = Csr::<f64>::identity(8);
    let b = Csr::from_triplets(8, 8, &[(0, 1, 1.0), (2, 3, 1.0)]).unwrap();
    let p1 = ExprPlan::new_in(&g, root, &[&a], &[], Algorithm::Hash, &pool).unwrap();
    let p2 = ExprPlan::new_in(
        &g,
        root,
        &[&a.map(|v| v * 2.0)],
        &[],
        Algorithm::Hash,
        &pool,
    )
    .unwrap();
    let p3 = ExprPlan::new_in(&g, root, &[&b], &[], Algorithm::Hash, &pool).unwrap();
    let p4 = ExprPlan::new_in(&g, root, &[&a], &[], Algorithm::Heap, &pool).unwrap();
    assert_eq!(p1.fingerprint(), p2.fingerprint(), "values don't matter");
    assert_ne!(p1.fingerprint(), p3.fingerprint(), "structure matters");
    assert_ne!(p1.fingerprint(), p4.fingerprint(), "kernel matters");
    assert_eq!(p1.node_fingerprints().len(), g.len());
}

#[test]
fn failed_rebind_poisons_the_plan_until_a_good_rebind() {
    // Regression: a failed rebind must not leave a half-rebound plan
    // that later "matches" the bad inputs and serves stale results.
    let pool = Pool::new(1);
    let mut g = ExprGraph::new();
    let ia = g.input();
    let ib = g.input();
    let root = g.add(ia, ib);
    let a = Csr::<f64>::identity(4);
    let mut plan = ExprPlan::new_in(&g, root, &[&a, &a], &[], Algorithm::Hash, &pool).unwrap();
    let mut out = Csr::zero(0, 0);
    plan.execute_into_in(&[&a, &a], &[], &mut out, &pool)
        .unwrap();
    // rebind with incompatible shapes: the Add node fails mid-bind
    let bigger = Csr::<f64>::identity(5);
    assert!(matches!(
        plan.rebind_in(&[&bigger, &a], &[], &pool),
        Err(SparseError::ShapeMismatch { .. })
    ));
    // the poisoned plan must not match anything or execute/publish
    assert!(!plan.matches_inputs(&[&bigger, &a]));
    assert!(!plan.matches_inputs(&[&a, &a]));
    assert!(matches!(
        plan.execute_into_in(&[&a, &a], &[], &mut out, &pool),
        Err(SparseError::PlanMismatch { .. })
    ));
    assert!(matches!(
        plan.root_into(&mut out),
        Err(SparseError::PlanMismatch { .. })
    ));
    // a successful rebind recovers the plan fully
    plan.rebind_in(&[&bigger, &bigger], &[], &pool).unwrap();
    assert!(plan.matches_inputs(&[&bigger, &bigger]));
    plan.execute_into_in(&[&bigger, &bigger], &[], &mut out, &pool)
        .unwrap();
    let expect = ops::add(&bigger, &bigger).unwrap();
    assert!(bits_eq(&out, &expect));
}

#[test]
fn expr_cache_recovers_after_a_failed_rebind() {
    // Through the cache: a bad execution errors, then the same bad
    // inputs error AGAIN (no stale hit), and good inputs recover.
    let pool = Pool::new(1);
    let mut g = ExprGraph::new();
    let ia = g.input();
    let ib = g.input();
    let root = g.add(ia, ib);
    let mut cache = ExprCache::new(g, root, Algorithm::Hash);
    let a = Csr::<f64>::identity(4);
    let bigger = Csr::<f64>::identity(5);
    let mut out = Csr::zero(0, 0);
    cache
        .execute_into_in(&[&a, &a], &[], &mut out, &pool)
        .unwrap();
    for _ in 0..2 {
        assert!(matches!(
            cache.execute_into_in(&[&bigger, &a], &[], &mut out, &pool),
            Err(SparseError::ShapeMismatch { .. })
        ));
    }
    cache
        .execute_into_in(&[&a, &a], &[], &mut out, &pool)
        .unwrap();
    let expect = ops::add(&a, &a).unwrap();
    assert!(bits_eq(&out, &expect));
}
