//! The central correctness property of the whole reproduction: every
//! SpGEMM algorithm, at every thread count, in both output orders,
//! over multiple semirings, computes the same product as the
//! sequential `BTreeMap` oracle.

use proptest::prelude::*;
use spgemm::{algos, multiply_in, Algorithm, OutputOrder};
use spgemm_par::Pool;
use spgemm_sparse::{approx_eq_f64, ColIdx, Coo, Csr, OrAnd, PlusTimes};

type P = PlusTimes<f64>;

fn arb_square(max_dim: usize, max_nnz: usize) -> impl Strategy<Value = Csr<f64>> {
    (2..=max_dim).prop_flat_map(move |n| {
        proptest::collection::vec((0..n, 0..n, -3.0f64..3.0), 0..=max_nnz).prop_map(move |trips| {
            let mut coo = Coo::new(n, n).unwrap();
            for (r, c, v) in trips {
                coo.push(r, c as ColIdx, v).unwrap();
            }
            coo.into_csr_sum()
        })
    })
}

fn arb_pair(max_dim: usize, max_nnz: usize) -> impl Strategy<Value = (Csr<f64>, Csr<f64>)> {
    (2..=max_dim, 2..=max_dim, 2..=max_dim).prop_flat_map(move |(m, k, n)| {
        let a = proptest::collection::vec((0..m, 0..k, -3.0f64..3.0), 0..=max_nnz).prop_map(
            move |trips| {
                let mut coo = Coo::new(m, k).unwrap();
                for (r, c, v) in trips {
                    coo.push(r, c as ColIdx, v).unwrap();
                }
                coo.into_csr_sum()
            },
        );
        let b = proptest::collection::vec((0..k, 0..n, -3.0f64..3.0), 0..=max_nnz).prop_map(
            move |trips| {
                let mut coo = Coo::new(k, n).unwrap();
                for (r, c, v) in trips {
                    coo.push(r, c as ColIdx, v).unwrap();
                }
                coo.into_csr_sum()
            },
        );
        (a, b)
    })
}

fn all_concrete() -> Vec<Algorithm> {
    vec![
        Algorithm::Hash,
        Algorithm::HashVec,
        Algorithm::Heap,
        Algorithm::Spa,
        Algorithm::Merge,
        Algorithm::Inspector,
        Algorithm::KkHash,
        Algorithm::Ikj,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_algorithm_matches_oracle_on_squares(a in arb_square(28, 160)) {
        let expect = algos::reference::multiply::<P>(&a, &a);
        for nt in [1usize, 3] {
            let pool = Pool::new(nt);
            for algo in all_concrete() {
                for order in [OutputOrder::Sorted, OutputOrder::Unsorted] {
                    let got = multiply_in::<P>(&a, &a, algo, order, &pool).unwrap();
                    prop_assert!(
                        approx_eq_f64(&expect, &got, 1e-9),
                        "{algo} nt={nt} {order:?}"
                    );
                    prop_assert!(got.validate().is_ok(), "{algo}");
                }
            }
        }
    }

    #[test]
    fn every_algorithm_matches_oracle_rectangular((a, b) in arb_pair(20, 120)) {
        let expect = algos::reference::multiply::<P>(&a, &b);
        let pool = Pool::new(2);
        for algo in all_concrete() {
            let got = multiply_in::<P>(&a, &b, algo, OutputOrder::Sorted, &pool).unwrap();
            prop_assert!(approx_eq_f64(&expect, &got, 1e-9), "{algo}");
        }
    }

    #[test]
    fn unsorted_inputs_accepted_by_any_input_kernels(a in arb_square(24, 140)) {
        // reverse-permute columns to unsort
        let n = a.ncols();
        let perm: Vec<ColIdx> = (0..n as ColIdx).rev().collect();
        let unsorted = spgemm_sparse::ops::permute_cols(&a, &perm).unwrap();
        let sorted_twin = unsorted.to_sorted();
        let expect = algos::reference::multiply::<P>(&sorted_twin, &sorted_twin);
        let pool = Pool::new(2);
        for algo in [Algorithm::Hash, Algorithm::HashVec, Algorithm::Spa,
                     Algorithm::KkHash, Algorithm::Inspector, Algorithm::Ikj] {
            let got = multiply_in::<P>(&unsorted, &unsorted, algo, OutputOrder::Sorted, &pool)
                .unwrap();
            prop_assert!(approx_eq_f64(&expect, &got, 1e-9), "{algo}");
        }
    }

    #[test]
    fn sorted_only_kernels_reject_unsorted(a in arb_square(12, 80)) {
        let n = a.ncols();
        let perm: Vec<ColIdx> = (0..n as ColIdx).rev().collect();
        let unsorted = spgemm_sparse::ops::permute_cols(&a, &perm).unwrap();
        prop_assume!(!unsorted.is_sorted());
        let pool = Pool::new(1);
        for algo in [Algorithm::Heap, Algorithm::Merge] {
            let r = multiply_in::<P>(&unsorted, &unsorted, algo, OutputOrder::Sorted, &pool);
            prop_assert!(r.is_err(), "{algo} must reject unsorted inputs");
        }
    }

    #[test]
    fn boolean_semiring_consistent_across_algorithms(a in arb_square(20, 120)) {
        let ab = a.map(|_| true);
        let expect = algos::reference::multiply::<OrAnd>(&ab, &ab);
        let pool = Pool::new(2);
        for algo in all_concrete() {
            let got = multiply_in::<OrAnd>(&ab, &ab, algo, OutputOrder::Sorted, &pool).unwrap();
            prop_assert!(got.eq_unordered(&expect), "{algo}");
        }
    }

    #[test]
    fn symbolic_count_equals_numeric_nnz(a in arb_square(24, 140)) {
        // two-phase kernels promise rpts built in symbolic == filled in
        // numeric; cross-validated via the oracle's nnz
        let expect = algos::reference::multiply::<P>(&a, &a);
        let pool = Pool::new(2);
        for algo in [Algorithm::Hash, Algorithm::HashVec, Algorithm::Spa, Algorithm::KkHash] {
            let got = multiply_in::<P>(&a, &a, algo, OutputOrder::Unsorted, &pool).unwrap();
            prop_assert_eq!(got.nnz(), expect.nnz(), "{}", algo);
            for i in 0..got.nrows() {
                prop_assert_eq!(got.row_nnz(i), expect.row_nnz(i), "{} row {}", algo, i);
            }
        }
    }

    #[test]
    fn auto_always_resolves_and_matches(a in arb_square(20, 120)) {
        let expect = algos::reference::multiply::<P>(&a, &a);
        let pool = Pool::new(2);
        for order in [OutputOrder::Sorted, OutputOrder::Unsorted] {
            let got = multiply_in::<P>(&a, &a, Algorithm::Auto, order, &pool).unwrap();
            prop_assert!(approx_eq_f64(&expect, &got, 1e-9));
        }
    }

    #[test]
    fn output_row_pointers_always_monotone(a in arb_square(24, 140)) {
        let pool = Pool::new(3);
        for algo in all_concrete() {
            let got = multiply_in::<P>(&a, &a, algo, OutputOrder::Sorted, &pool).unwrap();
            prop_assert!(got.rpts().windows(2).all(|w| w[0] <= w[1]), "{algo}");
            prop_assert_eq!(*got.rpts().last().unwrap(), got.nnz(), "{}", algo);
        }
    }
}

#[test]
fn shape_mismatch_rejected_at_api_boundary() {
    let a = Csr::<f64>::zero(3, 4);
    let b = Csr::<f64>::zero(3, 4);
    let pool = Pool::new(1);
    let r = multiply_in::<P>(&a, &b, Algorithm::Hash, OutputOrder::Sorted, &pool);
    assert!(r.is_err());
}

#[test]
fn generated_rmat_squares_match_oracle() {
    // a denser, more realistic workload than the proptest shrink space
    for kind in [spgemm_gen::RmatKind::Er, spgemm_gen::RmatKind::G500] {
        let a = spgemm_gen::rmat::generate_kind(kind, 8, 8, &mut spgemm_gen::rng(42));
        let expect = algos::reference::multiply::<P>(&a, &a);
        let pool = Pool::new(2);
        for algo in all_concrete() {
            let got = multiply_in::<P>(&a, &a, algo, OutputOrder::Sorted, &pool).unwrap();
            assert!(
                approx_eq_f64(&expect, &got, 1e-9),
                "{algo} on {kind:?} diverged from oracle"
            );
        }
    }
}
