//! Plan-path equivalence properties: `SpgemmPlan::new + execute` must
//! be indistinguishable from the pre-plan one-shot kernel drivers for
//! every algorithm and output order — byte for byte, not just up to
//! tolerance — and repeated executions must be deterministic.

use proptest::prelude::*;
use spgemm::{algos, Algorithm, OutputOrder, PlanCache, SpgemmPlan};
use spgemm_par::Pool;
use spgemm_sparse::{ColIdx, Coo, Csr, PlusTimes};

type P = PlusTimes<f64>;

/// The pre-plan one-shot dispatch: each algorithm's raw kernel driver
/// exactly as `multiply_in` called them before the inspector–executor
/// refactor. The plan path must reproduce these outputs bit-for-bit.
fn oneshot_direct(
    a: &Csr<f64>,
    b: &Csr<f64>,
    algo: Algorithm,
    order: OutputOrder,
    pool: &Pool,
) -> Csr<f64> {
    match algo {
        Algorithm::Hash => algos::hash::multiply::<P>(a, b, order, pool),
        Algorithm::HashVec => algos::hashvec::multiply::<P>(a, b, order, pool),
        Algorithm::Heap => algos::heap::multiply::<P>(a, b, pool),
        Algorithm::Spa => algos::spa::multiply::<P>(a, b, order, pool),
        Algorithm::Merge => algos::merge::multiply::<P>(a, b, pool),
        Algorithm::Inspector => {
            let mut c = algos::inspector::multiply::<P>(a, b, pool);
            if order.is_sorted() {
                c.sort_rows();
            }
            c
        }
        Algorithm::KkHash => algos::kkhash::multiply::<P>(a, b, order, pool),
        Algorithm::Ikj => algos::ikj::multiply::<P>(a, b, order, pool),
        // RowClass's contract *is* byte-parity with the hash kernel
        // (every class accumulates duplicates in k-encounter order and
        // emits first-encounter or ascending order exactly like the
        // hash table) — so the hash driver is its one-shot oracle.
        Algorithm::RowClass => algos::hash::multiply::<P>(a, b, order, pool),
        Algorithm::Reference => algos::reference::multiply::<P>(a, b),
        Algorithm::Auto => unreachable!("test enumerates concrete algorithms"),
    }
}

fn arb_square(max_dim: usize, max_nnz: usize) -> impl Strategy<Value = Csr<f64>> {
    (2..=max_dim).prop_flat_map(move |n| {
        proptest::collection::vec((0..n, 0..n, -3.0f64..3.0), 0..=max_nnz).prop_map(move |trips| {
            let mut coo = Coo::new(n, n).unwrap();
            for (r, c, v) in trips {
                coo.push(r, c as ColIdx, v).unwrap();
            }
            coo.into_csr_sum()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn plan_execute_equals_oneshot_byte_for_byte(a in arb_square(24, 140)) {
        for nt in [1usize, 3] {
            let pool = Pool::new(nt);
            for algo in Algorithm::ALL {
                for order in [OutputOrder::Sorted, OutputOrder::Unsorted] {
                    let expect = oneshot_direct(&a, &a, algo, order, &pool);
                    let plan = SpgemmPlan::<P>::new_in(&a, &a, algo, order, &pool).unwrap();
                    // first execution (staged for one-phase algorithms)
                    let first = plan.execute_in(&a, &a, &pool).unwrap();
                    prop_assert_eq!(&expect, &first, "{} {:?} nt={} (first)", algo, order, nt);
                    // steady-state numeric-only execution
                    let second = plan.execute_in(&a, &a, &pool).unwrap();
                    prop_assert_eq!(&expect, &second, "{} {:?} nt={} (second)", algo, order, nt);
                }
            }
        }
    }

    #[test]
    fn repeated_execute_into_is_deterministic(a in arb_square(20, 120)) {
        let pool = Pool::new(2);
        for algo in Algorithm::ALL {
            for order in [OutputOrder::Sorted, OutputOrder::Unsorted] {
                let plan = SpgemmPlan::<P>::new_in(&a, &a, algo, order, &pool).unwrap();
                let mut c = Csr::<f64>::zero(0, 0);
                plan.execute_into_in(&a, &a, &mut c, &pool).unwrap();
                let baseline = c.clone();
                for round in 0..3 {
                    plan.execute_into_in(&a, &a, &mut c, &pool).unwrap();
                    prop_assert_eq!(&baseline, &c, "{} {:?} round {}", algo, order, round);
                }
            }
        }
    }

    /// The RowClass keystone invariant, stated directly: across
    /// structure drift (one plan rebound over a random sequence of
    /// operands) its output is byte-for-byte the hash kernel's under
    /// both output orders, and byte-for-byte Reference's when sorted.
    /// This is what lets tune swap RowClass in for Hash sight unseen.
    #[test]
    fn rowclass_parity_across_drift_and_rebind(
        a in arb_square(20, 120),
        b in arb_square(20, 120),
        c in arb_square(20, 120),
    ) {
        let pool = Pool::new(2);
        for order in [OutputOrder::Sorted, OutputOrder::Unsorted] {
            let mut plan =
                SpgemmPlan::<P>::new_in(&a, &a, Algorithm::RowClass, order, &pool).unwrap();
            for m in [&a, &b, &c, &a, &c] {
                plan.rebind_in(m, m, &pool).unwrap();
                let got = plan.execute_in(m, m, &pool).unwrap();
                let hash = algos::hash::multiply::<P>(m, m, order, &pool);
                prop_assert_eq!(&got, &hash, "vs hash, {:?}", order);
                if order.is_sorted() {
                    let oracle = algos::reference::multiply::<P>(m, m);
                    prop_assert_eq!(&got, &oracle, "vs reference");
                }
            }
        }
    }

    #[test]
    fn plan_cache_tracks_multiply_across_structure_drift(
        a in arb_square(16, 60),
        b in arb_square(16, 60),
    ) {
        // A cache fed a sequence of differently-structured operands
        // must agree with the one-shot path on every step.
        let pool = Pool::new(2);
        let mut cache = PlanCache::<P>::new(Algorithm::Hash, OutputOrder::Sorted);
        for m in [&a, &a, &b, &a, &b, &b] {
            let expect = spgemm::multiply_in::<P>(m, m, Algorithm::Hash, OutputOrder::Sorted, &pool).unwrap();
            let got = cache.multiply_in(m, m, &pool).unwrap();
            prop_assert_eq!(&expect, &got);
        }
        let st = cache.stats();
        prop_assert_eq!(st.hits + st.rebuilds, 6);
        prop_assert!(st.rebuilds <= 4, "at most one rebuild per structure change: {:?}", st);
    }
}

/// The latent-reuse-bug regression: one plan rebound across matrices
/// with *disjoint* patterns (and growing dimensions/densities) must
/// keep producing correct results. Before accumulators re-validated
/// their capacity on acquisition, a pooled hash table sized for the
/// first (sparse) operand would livelock or index out of bounds on the
/// denser rebind, and stale accumulator state could leak entries of
/// the first product into the second.
#[test]
fn rebind_across_disjoint_patterns_regression() {
    // Matrix 1: tiny rows in the lower-left corner of a 12x12.
    let m1 = Csr::from_triplets(12, 12, &[(9, 0, 1.0), (10, 1, 2.0), (11, 2, 3.0)]).unwrap();
    // Matrix 2: disjoint, much denser pattern in the upper-right of a
    // larger 40x40 — per-row flop far above anything planned for m1.
    let mut trips = Vec::new();
    for i in 0..20usize {
        for j in 20..40u32 {
            if (i + j as usize).is_multiple_of(2) {
                trips.push((i, j, (i as f64 + 1.0) * 0.5));
            }
        }
        for j in 0..20u32 {
            trips.push((20 + i, j, 1.0 + j as f64 * 0.25));
        }
    }
    let m2 = Csr::from_triplets(40, 40, &trips).unwrap();

    for nt in [1usize, 2, 4] {
        let pool = Pool::new(nt);
        for algo in Algorithm::ALL {
            for order in [OutputOrder::Sorted, OutputOrder::Unsorted] {
                let mut plan = SpgemmPlan::<P>::new_in(&m1, &m1, algo, order, &pool).unwrap();
                let got1 = plan.execute_in(&m1, &m1, &pool).unwrap();
                assert_eq!(
                    got1,
                    oneshot_direct(&m1, &m1, algo, order, &pool),
                    "{algo} {order:?} pre-rebind"
                );

                plan.rebind_in(&m2, &m2, &pool).unwrap();
                let got2 = plan.execute_in(&m2, &m2, &pool).unwrap();
                assert_eq!(
                    got2,
                    oneshot_direct(&m2, &m2, algo, order, &pool),
                    "{algo} {order:?} post-rebind nt={nt}"
                );

                // and back down: shrinking must also stay correct
                plan.rebind_in(&m1, &m1, &pool).unwrap();
                let got3 = plan.execute_in(&m1, &m1, &pool).unwrap();
                assert_eq!(got3, got1, "{algo} {order:?} rebind back");
            }
        }
    }
}

/// Rebinding a rectangular plan to wider outputs grows the dense
/// accumulators (SPA / IKJ) and the chained hash arrays.
#[test]
fn rebind_grows_output_width() {
    let a1 = Csr::from_triplets(3, 4, &[(0, 0, 1.0), (1, 3, 2.0), (2, 1, 3.0)]).unwrap();
    let b1 = Csr::from_triplets(4, 5, &[(0, 4, 1.0), (1, 0, 2.0), (3, 2, 3.0)]).unwrap();
    let a2 =
        Csr::from_triplets(6, 8, &[(0, 7, 1.0), (2, 0, 2.0), (3, 4, 1.5), (5, 1, -1.0)]).unwrap();
    let mut trips = Vec::new();
    for i in 0..8usize {
        for j in 0..30u32 {
            if (i * 31 + j as usize).is_multiple_of(3) {
                trips.push((i, j, 0.5 + j as f64));
            }
        }
    }
    let b2 = Csr::from_triplets(8, 30, &trips).unwrap();

    let pool = Pool::new(2);
    for algo in Algorithm::ALL {
        let mut plan = SpgemmPlan::<P>::new_in(&a1, &b1, algo, OutputOrder::Sorted, &pool).unwrap();
        let got1 = plan.execute_in(&a1, &b1, &pool).unwrap();
        assert_eq!(
            got1,
            oneshot_direct(&a1, &b1, algo, OutputOrder::Sorted, &pool),
            "{algo} narrow"
        );
        plan.rebind_in(&a2, &b2, &pool).unwrap();
        let got2 = plan.execute_in(&a2, &b2, &pool).unwrap();
        assert_eq!(
            got2,
            oneshot_direct(&a2, &b2, algo, OutputOrder::Sorted, &pool),
            "{algo} wide"
        );
    }
}
