//! Stress and failure-injection tests for the kernel stack: repeated
//! multiplies on shared pools, degenerate shapes, adversarial
//! structures, and contract violations.

use spgemm::{multiply_in, Algorithm, OutputOrder};
use spgemm_par::Pool;
use spgemm_sparse::{approx_eq_f64, ColIdx, Coo, Csr, PlusTimes, SparseError};

type P = PlusTimes<f64>;

#[test]
fn repeated_multiplies_on_one_pool_are_stable() {
    let pool = Pool::new(3);
    let a =
        spgemm_gen::rmat::generate_kind(spgemm_gen::RmatKind::G500, 8, 8, &mut spgemm_gen::rng(1));
    let first = multiply_in::<P>(&a, &a, Algorithm::Hash, OutputOrder::Sorted, &pool).unwrap();
    for round in 0..50 {
        let again = multiply_in::<P>(&a, &a, Algorithm::Hash, OutputOrder::Sorted, &pool).unwrap();
        assert_eq!(first, again, "round {round}: nondeterminism detected");
    }
}

#[test]
fn alternating_algorithms_share_a_pool() {
    let pool = Pool::new(2);
    let a =
        spgemm_gen::rmat::generate_kind(spgemm_gen::RmatKind::Er, 8, 6, &mut spgemm_gen::rng(2));
    let oracle = spgemm::algos::reference::multiply::<P>(&a, &a);
    for round in 0..30 {
        let algo = [
            Algorithm::Hash,
            Algorithm::Heap,
            Algorithm::Merge,
            Algorithm::KkHash,
        ][round % 4];
        let c = multiply_in::<P>(&a, &a, algo, OutputOrder::Sorted, &pool).unwrap();
        assert!(approx_eq_f64(&oracle, &c, 1e-9), "round {round} ({algo})");
    }
}

#[test]
fn degenerate_shapes() {
    let pool = Pool::new(2);
    // 1x1
    let one = Csr::from_triplets(1, 1, &[(0, 0, 3.0)]).unwrap();
    for algo in [Algorithm::Hash, Algorithm::Heap, Algorithm::Spa] {
        let c = multiply_in::<P>(&one, &one, algo, OutputOrder::Sorted, &pool).unwrap();
        assert_eq!(c.get(0, 0), Some(&9.0), "{algo}");
    }
    // 0xN and Nx0
    let tall = Csr::<f64>::zero(5, 0);
    let wide = Csr::<f64>::zero(0, 5);
    let c = multiply_in::<P>(&tall, &wide, Algorithm::Hash, OutputOrder::Sorted, &pool).unwrap();
    assert_eq!(c.shape(), (5, 5));
    assert_eq!(c.nnz(), 0);
    // inner dimension zero but outer nonzero
    let c = multiply_in::<P>(&wide, &tall, Algorithm::Hash, OutputOrder::Sorted, &pool).unwrap();
    assert_eq!(c.shape(), (0, 0));
}

#[test]
fn single_dense_row_into_dense_column() {
    // one row of A containing every column; B a dense column — the
    // maximal-fan-in accumulation with a single output entry
    let n = 512usize;
    let a_trips: Vec<(usize, ColIdx, f64)> = (0..n).map(|k| (0, k as u32, 1.0)).collect();
    let a = Csr::from_triplets(1, n, &a_trips).unwrap();
    let b_trips: Vec<(usize, ColIdx, f64)> = (0..n).map(|k| (k, 0, 2.0)).collect();
    let b = Csr::from_triplets(n, 1, &b_trips).unwrap();
    let pool = Pool::new(2);
    for algo in [
        Algorithm::Hash,
        Algorithm::HashVec,
        Algorithm::Heap,
        Algorithm::Spa,
        Algorithm::Merge,
        Algorithm::KkHash,
        Algorithm::Inspector,
    ] {
        let c = multiply_in::<P>(&a, &b, algo, OutputOrder::Sorted, &pool).unwrap();
        assert_eq!(c.nnz(), 1, "{algo}");
        assert_eq!(c.get(0, 0), Some(&(2.0 * n as f64)), "{algo}");
    }
}

#[test]
fn pathological_hash_keys_still_correct() {
    // columns spaced by large powers of two cluster in low-bit-masked
    // hash tables — correctness must survive worst-case probing
    let n = 1 << 14;
    let stride = 1 << 9;
    let cols: Vec<ColIdx> = (0..24u32).map(|k| k * stride).collect();
    let mut coo = Coo::new(4, n).unwrap();
    for (i, &c) in cols.iter().enumerate() {
        coo.push(i % 4, c, 1.0).unwrap();
    }
    // B maps every clustered column back onto the same few outputs
    let mut bcoo = Coo::new(n, 8).unwrap();
    for &c in &cols {
        bcoo.push(c as usize, c % 8, 1.0).unwrap();
    }
    let a = coo.into_csr_sum();
    let b = bcoo.into_csr_sum();
    let oracle = spgemm::algos::reference::multiply::<P>(&a, &b);
    let pool = Pool::new(2);
    for algo in [Algorithm::Hash, Algorithm::HashVec, Algorithm::KkHash] {
        let c = multiply_in::<P>(&a, &b, algo, OutputOrder::Sorted, &pool).unwrap();
        assert!(approx_eq_f64(&oracle, &c, 1e-12), "{algo}");
    }
}

#[test]
fn contract_violations_reported_not_panicked() {
    let pool = Pool::new(1);
    let a = Csr::<f64>::zero(3, 4);
    let b = Csr::<f64>::zero(5, 3);
    let r = multiply_in::<P>(&a, &b, Algorithm::Hash, OutputOrder::Sorted, &pool);
    assert!(matches!(r, Err(SparseError::ShapeMismatch { .. })));

    // a multi-entry row is required: single-entry rows remain sorted
    // under any column relabelling
    let sorted = Csr::from_triplets(3, 3, &[(0, 0, 1.0), (0, 1, 2.0), (1, 2, 1.0)]).unwrap();
    let unsorted = spgemm_sparse::ops::permute_cols(&sorted, &[2, 1, 0]).unwrap();
    assert!(!unsorted.is_sorted());
    for algo in [Algorithm::Heap, Algorithm::Merge] {
        let r = multiply_in::<P>(&unsorted, &unsorted, algo, OutputOrder::Sorted, &pool);
        assert!(matches!(r, Err(SparseError::Unsorted { .. })), "{algo}");
    }
}

#[test]
fn oversubscribed_pool_correctness() {
    // many more workers than cores: scheduling still covers all rows
    let pool = Pool::new(16);
    let a =
        spgemm_gen::rmat::generate_kind(spgemm_gen::RmatKind::G500, 9, 8, &mut spgemm_gen::rng(4));
    let oracle = spgemm::algos::reference::multiply::<P>(&a, &a);
    for algo in [Algorithm::Hash, Algorithm::Heap, Algorithm::Inspector] {
        let c = multiply_in::<P>(&a, &a, algo, OutputOrder::Sorted, &pool).unwrap();
        assert!(approx_eq_f64(&oracle, &c, 1e-9), "{algo}");
    }
}

#[test]
fn wide_value_types_and_semirings() {
    use spgemm_sparse::MaxTimes;
    // max-times over probabilities: widest-path one step
    let a =
        Csr::from_triplets(3, 3, &[(0, 1, 0.5), (0, 2, 0.9), (1, 2, 0.8), (2, 0, 1.0)]).unwrap();
    let pool = Pool::new(2);
    let c = multiply_in::<MaxTimes>(&a, &a, Algorithm::Hash, OutputOrder::Sorted, &pool).unwrap();
    let oracle = spgemm::algos::reference::multiply::<MaxTimes>(&a, &a);
    assert!(c.eq_unordered_by(&oracle, |x, y| (x - y).abs() < 1e-12));
    // path 0->2->0 gives (0,0) = max over k of a0k * ak0 = 0.9 * 1.0
    assert_eq!(c.get(0, 0), Some(&0.9));
}

#[test]
fn u64_counting_semiring_exact() {
    use spgemm_sparse::PlusTimes;
    // counting walks of length 2 in a small functional graph: exact
    // integer arithmetic end-to-end
    let a = Csr::from_triplets(4, 4, &[(0, 1, 1u64), (1, 2, 1), (2, 3, 1), (3, 0, 1)]).unwrap();
    let pool = Pool::new(2);
    let c =
        multiply_in::<PlusTimes<u64>>(&a, &a, Algorithm::Heap, OutputOrder::Sorted, &pool).unwrap();
    assert_eq!(c.nnz(), 4);
    assert_eq!(c.get(0, 2), Some(&1));
    assert_eq!(c.get(3, 1), Some(&1));
}
