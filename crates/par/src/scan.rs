//! Sequential and parallel prefix sums.
//!
//! Both the flop-balanced partitioner (§4.1: "then do prefix sum") and
//! the symbolic→numeric hand-off of every two-phase kernel (per-row
//! counts → row pointers) reduce to prefix sums over machine integers.

use crate::{Pool, Schedule};

/// In-place *inclusive* prefix sum: `v[i] ← Σ_{j ≤ i} v[j]`. Returns
/// the total (the last element, or 0 for an empty slice).
pub fn inclusive_scan_in_place(v: &mut [u64]) -> u64 {
    let mut acc = 0u64;
    for x in v.iter_mut() {
        acc += *x;
        *x = acc;
    }
    acc
}

/// In-place *exclusive* prefix sum: `v[i] ← Σ_{j < i} v[j]`. Returns
/// the total of the original values.
pub fn exclusive_scan_in_place(v: &mut [usize]) -> usize {
    let mut acc = 0usize;
    for x in v.iter_mut() {
        let cur = *x;
        *x = acc;
        acc += cur;
    }
    acc
}

/// Exclusive prefix sum of `counts` into a fresh `counts.len() + 1`
/// vector whose last element is the total — exactly the shape of a CSR
/// row-pointer array built from per-row entry counts.
pub fn counts_to_offsets(counts: &[usize]) -> Vec<usize> {
    let mut out = Vec::with_capacity(counts.len() + 1);
    let mut acc = 0usize;
    out.push(0);
    for &c in counts {
        acc += c;
        out.push(acc);
    }
    out
}

/// Pool-parallel inclusive prefix sum (three-pass block scan). Falls
/// back to the sequential scan for small inputs where the barrier cost
/// exceeds the work.
pub fn parallel_inclusive_scan(pool: &Pool, v: &mut [u64]) -> u64 {
    const SEQ_CUTOFF: usize = 1 << 14;
    let n = v.len();
    let nt = pool.nthreads();
    if nt == 1 || n < SEQ_CUTOFF {
        return inclusive_scan_in_place(v);
    }
    // Pass 1: each worker scans its static block locally.
    let block_totals: Vec<parking_lot::Mutex<u64>> =
        (0..nt).map(|_| parking_lot::Mutex::new(0)).collect();
    {
        let slice = crate::unsync::SharedMutSlice::new(v);
        pool.broadcast(|wid| {
            let r = crate::schedule::static_block(n, wid, nt);
            // SAFETY: static blocks are disjoint per worker.
            let block = unsafe { slice.slice_mut(r) };
            *block_totals[wid].lock() = inclusive_scan_in_place(block);
        });
    }
    // Pass 2: exclusive scan of block totals (tiny, sequential).
    let mut carry = vec![0u64; nt];
    let mut acc = 0u64;
    for (c, t) in carry.iter_mut().zip(&block_totals) {
        *c = acc;
        acc += *t.lock();
    }
    // Pass 3: rebase each block by its carry.
    {
        let slice = crate::unsync::SharedMutSlice::new(v);
        pool.broadcast(|wid| {
            let add = carry[wid];
            if add == 0 {
                return;
            }
            let r = crate::schedule::static_block(n, wid, nt);
            // SAFETY: same disjoint blocks as pass 1.
            let block = unsafe { slice.slice_mut(r) };
            for x in block {
                *x += add;
            }
        });
    }
    acc
}

/// Pool-parallel element-wise fill of `out[i] = f(i)`; a convenience
/// used when building per-row work estimates.
pub fn parallel_fill<T: Send + Sync>(pool: &Pool, out: &mut [T], f: impl Fn(usize) -> T + Sync) {
    let n = out.len();
    let slice = crate::unsync::SharedMutSlice::new(out);
    pool.parallel_for(n, Schedule::Static, |i| {
        // SAFETY: `parallel_for` visits each index exactly once.
        unsafe { slice.write(i, f(i)) };
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inclusive_scan_basics() {
        let mut v = vec![1u64, 2, 3, 4];
        assert_eq!(inclusive_scan_in_place(&mut v), 10);
        assert_eq!(v, vec![1, 3, 6, 10]);
        let mut empty: Vec<u64> = vec![];
        assert_eq!(inclusive_scan_in_place(&mut empty), 0);
    }

    #[test]
    fn exclusive_scan_basics() {
        let mut v = vec![5usize, 0, 2];
        assert_eq!(exclusive_scan_in_place(&mut v), 7);
        assert_eq!(v, vec![0, 5, 5]);
    }

    #[test]
    fn counts_to_offsets_shapes_rpts() {
        assert_eq!(counts_to_offsets(&[2, 0, 3]), vec![0, 2, 2, 5]);
        assert_eq!(counts_to_offsets(&[]), vec![0]);
    }

    #[test]
    fn parallel_scan_matches_sequential() {
        let pool = Pool::new(4);
        for n in [0usize, 1, 100, (1 << 14) + 17, 100_000] {
            let base: Vec<u64> = (0..n as u64).map(|i| (i * 7 + 3) % 11).collect();
            let mut seq = base.clone();
            let t_seq = inclusive_scan_in_place(&mut seq);
            let mut par = base.clone();
            let t_par = parallel_inclusive_scan(&pool, &mut par);
            assert_eq!(t_seq, t_par, "totals for n={n}");
            assert_eq!(seq, par, "scans for n={n}");
        }
    }

    #[test]
    fn parallel_fill_writes_every_slot() {
        let pool = Pool::new(3);
        let mut v = vec![0u64; 1000];
        parallel_fill(&pool, &mut v, |i| i as u64 * 3);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i as u64 * 3));
    }
}
