//! Loop scheduling policies, mirroring OpenMP's `schedule` clause.

/// How the iterations of a [`crate::Pool::parallel_for`] loop are
/// distributed over workers.
///
/// These reproduce the three OpenMP policies the paper benchmarks in
/// §3.1 (Figure 2) plus explicit per-thread offsets for the
/// flop-balanced assignment of §4.1:
///
/// * `Static` — iterations split into one contiguous block per thread
///   up front; near-zero runtime overhead, no load balancing.
/// * `Dynamic { chunk }` — threads repeatedly claim the next `chunk`
///   iterations from a shared atomic counter; balances load at the
///   cost of one atomic RMW per chunk.
/// * `Guided { min_chunk }` — like dynamic but the claimed chunk is
///   `remaining / nthreads`, shrinking exponentially and never below
///   `min_chunk`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Schedule {
    /// One contiguous block of `⌈n / nthreads⌉` iterations per thread.
    Static,
    /// First-come-first-served chunks of the given size (OpenMP
    /// `schedule(dynamic, chunk)`; OpenMP's default chunk is 1).
    Dynamic {
        /// Iterations claimed per atomic fetch.
        chunk: usize,
    },
    /// Exponentially shrinking chunks (OpenMP `schedule(guided)`).
    Guided {
        /// Lower bound on the chunk size.
        min_chunk: usize,
    },
}

impl Schedule {
    /// OpenMP-default dynamic scheduling (`chunk = 1`).
    pub const DYNAMIC: Schedule = Schedule::Dynamic { chunk: 1 };
    /// OpenMP-default guided scheduling (`min_chunk = 1`).
    pub const GUIDED: Schedule = Schedule::Guided { min_chunk: 1 };
}

/// The contiguous iteration block worker `wid` of `nthreads` receives
/// under static scheduling of `n` iterations. Blocks differ in size by
/// at most one and cover `0..n` exactly.
#[inline]
pub(crate) fn static_block(n: usize, wid: usize, nthreads: usize) -> std::ops::Range<usize> {
    debug_assert!(wid < nthreads);
    let base = n / nthreads;
    let extra = n % nthreads;
    // The first `extra` workers get `base + 1` iterations.
    let start = wid * base + wid.min(extra);
    let len = base + usize::from(wid < extra);
    start..(start + len)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_blocks_cover_exactly() {
        for n in [0usize, 1, 2, 5, 64, 100, 101] {
            for t in [1usize, 2, 3, 7, 16] {
                let mut covered = vec![false; n];
                let mut prev_end = 0;
                for w in 0..t {
                    let r = static_block(n, w, t);
                    assert_eq!(r.start, prev_end, "blocks contiguous (n={n}, t={t})");
                    prev_end = r.end;
                    for i in r {
                        assert!(!covered[i]);
                        covered[i] = true;
                    }
                }
                assert_eq!(prev_end, n);
                assert!(covered.iter().all(|&c| c));
            }
        }
    }

    #[test]
    fn static_blocks_balanced_within_one() {
        let sizes: Vec<usize> = (0..7).map(|w| static_block(100, w, 7).len()).collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(max - min <= 1, "{sizes:?}");
    }

    #[test]
    fn schedule_constants() {
        assert_eq!(Schedule::DYNAMIC, Schedule::Dynamic { chunk: 1 });
        assert_eq!(Schedule::GUIDED, Schedule::Guided { min_chunk: 1 });
    }
}
