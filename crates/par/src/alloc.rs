//! Thread-private memory management (§3.2, Figure 3 of the paper).
//!
//! The paper's KNL measurements show "single" deallocation of large
//! buffers costing >100 ms, while per-thread ("parallel")
//! allocation/deallocation of the same total is far cheaper; its
//! kernels therefore (a) compute each thread's requirement up front,
//! (b) allocate inside the parallel region, and (c) *reuse* the buffer
//! across rows. [`ThreadScratch`] packages (a)–(c); the raw
//! single-vs-parallel experiment itself lives in `spgemm-membench`.

use crate::Pool;
use parking_lot::Mutex;
use std::cell::RefCell;

/// Per-worker reusable buffers, allocated lazily on first use by each
/// worker and kept (capacity preserved) across parallel regions.
///
/// Indexed by worker id: each worker may only take its own slot during
/// a region, which makes the `Mutex` always uncontended — it exists to
/// keep the container `Sync` without `unsafe`.
pub struct ThreadScratch<T> {
    slots: Vec<crossbeam_utils::CachePadded<Mutex<Vec<T>>>>,
}

impl<T> ThreadScratch<T> {
    /// Scratch for every worker of `pool`.
    pub fn for_pool(pool: &Pool) -> Self {
        Self::with_threads(pool.nthreads())
    }

    /// Scratch for `nthreads` workers.
    pub fn with_threads(nthreads: usize) -> Self {
        ThreadScratch {
            slots: (0..nthreads)
                .map(|_| crossbeam_utils::CachePadded::new(Mutex::new(Vec::new())))
                .collect(),
        }
    }

    /// Number of worker slots.
    pub fn nthreads(&self) -> usize {
        self.slots.len()
    }

    /// Borrow worker `wid`'s buffer for the duration of a closure.
    /// Panics if the slot is already borrowed (which would mean two
    /// workers shared a `wid` — a pool bug).
    pub fn with<R>(&self, wid: usize, f: impl FnOnce(&mut Vec<T>) -> R) -> R {
        let mut guard = self.slots[wid]
            .try_lock()
            .expect("ThreadScratch slot borrowed by two workers at once");
        f(&mut guard)
    }

    /// Drop every buffer's contents, keeping the slots.
    pub fn clear_all(&mut self) {
        for s in &mut self.slots {
            s.get_mut().clear();
            s.get_mut().shrink_to_fit();
        }
    }
}

thread_local! {
    /// Bytes of thread-local scratch allocated via [`with_thread_buffer`]
    /// on this thread (for tests / instrumentation).
    static LOCAL_BUF: RefCell<Vec<u8>> = const { RefCell::new(Vec::new()) };
}

/// Run `f` with a thread-local byte buffer of at least `bytes`
/// capacity. This is the purest form of the paper's "parallel"
/// allocation: the buffer belongs to the calling OS thread, is reused
/// across calls, and is freed when the thread exits.
pub fn with_thread_buffer<R>(bytes: usize, f: impl FnOnce(&mut [u8]) -> R) -> R {
    LOCAL_BUF.with(|b| {
        let mut buf = b.borrow_mut();
        if buf.len() < bytes {
            buf.resize(bytes, 0);
        }
        f(&mut buf[..bytes])
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Schedule;

    #[test]
    fn scratch_is_private_per_worker() {
        let pool = Pool::new(4);
        let scratch = ThreadScratch::<u64>::for_pool(&pool);
        assert_eq!(scratch.nthreads(), 4);
        pool.broadcast(|wid| {
            scratch.with(wid, |buf| {
                buf.clear();
                buf.extend(std::iter::repeat_n(wid as u64, 100));
            });
        });
        for wid in 0..4 {
            scratch.with(wid, |buf| {
                assert_eq!(buf.len(), 100);
                assert!(buf.iter().all(|&x| x == wid as u64));
            });
        }
    }

    #[test]
    fn scratch_capacity_survives_regions() {
        let pool = Pool::new(2);
        let scratch = ThreadScratch::<u8>::for_pool(&pool);
        pool.broadcast(|wid| {
            scratch.with(wid, |buf| buf.resize(1 << 16, 0));
        });
        let caps: Vec<usize> = (0..2).map(|w| scratch.with(w, |b| b.capacity())).collect();
        pool.broadcast(|wid| {
            scratch.with(wid, |buf| buf.clear());
        });
        for (w, &cap) in caps.iter().enumerate() {
            scratch.with(w, |b| {
                assert!(b.capacity() >= cap.min(1 << 16), "worker {w}")
            });
        }
    }

    #[test]
    fn clear_all_releases() {
        let mut scratch = ThreadScratch::<u32>::with_threads(2);
        scratch.with(0, |b| b.resize(1000, 7));
        scratch.clear_all();
        scratch.with(0, |b| assert!(b.is_empty()));
    }

    #[test]
    fn thread_buffer_reused_within_thread() {
        let p1 = with_thread_buffer(64, |b| b.as_ptr() as usize);
        let p2 = with_thread_buffer(64, |b| b.as_ptr() as usize);
        assert_eq!(p1, p2, "same thread reuses its buffer");
    }

    #[test]
    fn thread_buffer_usable_inside_pool() {
        let pool = Pool::new(3);
        pool.parallel_for(64, Schedule::Static, |i| {
            with_thread_buffer(128, |b| {
                b[0] = i as u8;
                assert_eq!(b.len(), 128);
            });
        });
    }
}
