//! Parallel runtime for the SpGEMM reproduction.
//!
//! The paper's architecture work (§3, §4.1) is about *how* the loop
//! over output rows is scheduled and *where* temporary memory is
//! allocated, not about the arithmetic. Rust has no OpenMP, and rayon's
//! work-stealing matches none of the three OpenMP policies the paper
//! measures, so this crate implements the runtime the paper assumes:
//!
//! * [`Pool`] — a persistent pool of parked worker threads executing
//!   *parallel regions* ([`Pool::broadcast`]) and *scheduled loops*
//!   ([`Pool::parallel_for`]) under [`Schedule::Static`],
//!   [`Schedule::Dynamic`] or [`Schedule::Guided`] — the subjects of
//!   the paper's Figure 2 and Figure 9.
//! * [`partition`] — the flop-balanced row partitioner of §4.1
//!   (Figure 6): per-row work estimates, a prefix sum, and a
//!   lower-bound binary search give each thread an equal-work block of
//!   *contiguous* rows, keeping static scheduling's low overhead.
//! * [`scan`] — sequential and pool-parallel prefix sums (used both by
//!   the partitioner and to build output row pointers).
//! * [`alloc`] — thread-private scratch buffers implementing the
//!   "parallel" memory-management scheme of §3.2 (Figure 3): each
//!   worker allocates, reuses, and frees only its own memory.
//! * [`workspace`] — [`WorkspacePool`], pooled per-worker workspaces
//!   with reuse instrumentation: the steady-state (allocation-free)
//!   form of the same §3.2 scheme, used by the SpGEMM plan layer to
//!   reuse accumulators across repeated products (the Figure 4 cost).
//! * [`unsync`] — a guarded escape hatch ([`unsync::SharedMutSlice`])
//!   for the disjoint-writes idiom every CSR-producing kernel needs
//!   (each thread fills its own precomputed slice of the output).

#![warn(missing_docs)]

pub mod alloc;
pub mod partition;
mod pool;
pub mod scan;
mod schedule;
pub mod unsync;
pub mod workspace;

pub use pool::Pool;
pub use schedule::Schedule;
pub use workspace::{WorkspacePool, WorkspaceStats};

/// Render a `catch_unwind` payload as a human-readable string — the
/// shared helper of every layer that contains worker panics (the
/// serving engine's per-job net, the shard runtime's per-product net).
pub fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Number of hardware threads available to this process.
pub fn hardware_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A lazily-created process-wide pool using every hardware thread.
/// Regions on it are serialized, so it is safe (if not maximally
/// efficient) to share across caller threads.
pub fn global_pool() -> &'static Pool {
    static GLOBAL: std::sync::OnceLock<Pool> = std::sync::OnceLock::new();
    GLOBAL.get_or_init(Pool::with_all_threads)
}
