//! Pooled per-worker workspaces — the steady-state form of the
//! paper's "parallel" memory scheme (§3.2, Figure 3).
//!
//! [`crate::alloc::ThreadScratch`] gives each worker a private `Vec`
//! that survives parallel regions; [`WorkspacePool`] generalizes the
//! idea to *arbitrary* reusable objects (hash tables, dense sparse
//! accumulators, heap buffers) and instruments the reuse so callers
//! can assert that repeated executions hit the pool instead of the
//! allocator — the Figure 4 cost the paper shows dominating repeated
//! products.
//!
//! # Clearing policy: clear on acquire, not on release
//!
//! A workspace is returned to its slot in whatever state the closure
//! left it — including a dirty, half-filled state if the closure
//! panicked. Relying on "everyone cleans up before releasing" is
//! exactly the latent-state-leak bug class this module exists to
//! prevent: a panic, an early return, or one forgotten reset path
//! silently corrupts the *next* execution that reuses the buffer.
//! Callers must therefore treat every acquired workspace as dirty and
//! re-validate it **after acquiring** (the `reused` flag passed to the
//! closure says whether there is anything to clear). The SpGEMM plan
//! layer does this through its accumulators' `ensure`/`scrub` hooks.

use crate::Pool;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// Reuse counters for one [`WorkspacePool`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkspaceStats {
    /// Workspaces constructed because a slot was empty.
    pub created: u64,
    /// Acquisitions served by an existing workspace (no allocation).
    pub reused: u64,
}

impl WorkspaceStats {
    /// Total acquisitions.
    pub fn acquisitions(&self) -> u64 {
        self.created + self.reused
    }
}

/// Workspace constructions across every live pool (rising = slots
/// still warming up or pools churning; flat = steady-state reuse).
static SLOTS_CREATED: spgemm_obs::GaugeSite =
    spgemm_obs::GaugeSite::new("par", "par.workspace.slots_created");
/// Acquisitions served without construction, across every live pool.
static SLOTS_REUSED: spgemm_obs::GaugeSite =
    spgemm_obs::GaugeSite::new("par", "par.workspace.slots_reused");

/// A pool of per-worker reusable workspaces, indexed by worker id.
///
/// Each worker may only acquire its own slot during a parallel region
/// (the same discipline as [`crate::alloc::ThreadScratch`]), which
/// keeps the per-slot `Mutex` uncontended; it exists to make the
/// container `Sync` without `unsafe`. Workspaces are created lazily by
/// the caller-supplied constructor on first acquisition and then live
/// until [`WorkspacePool::clear`] or drop — across arbitrarily many
/// parallel regions, which is what makes repeated plan executions
/// allocation-free in steady state.
///
/// ```
/// use spgemm_par::{Pool, WorkspacePool};
///
/// let pool = Pool::new(2);
/// let ws: WorkspacePool<Vec<u64>> = WorkspacePool::for_pool(&pool);
/// for _ in 0..3 {
///     pool.broadcast(|wid| {
///         ws.with(wid, || Vec::with_capacity(1024), |buf, _reused| {
///             buf.clear(); // clear on acquire
///             buf.push(wid as u64);
///         });
///     });
/// }
/// let stats = ws.stats();
/// assert_eq!(stats.created, 2, "one construction per worker");
/// assert_eq!(stats.reused, 4, "every later region reuses");
/// ```
pub struct WorkspacePool<T> {
    slots: Vec<crossbeam_utils::CachePadded<Mutex<Option<T>>>>,
    created: AtomicU64,
    reused: AtomicU64,
}

impl<T> WorkspacePool<T> {
    /// A pool with one slot per worker of `pool`.
    pub fn for_pool(pool: &Pool) -> Self {
        Self::with_threads(pool.nthreads())
    }

    /// A pool with `nthreads` slots.
    pub fn with_threads(nthreads: usize) -> Self {
        WorkspacePool {
            slots: (0..nthreads)
                .map(|_| crossbeam_utils::CachePadded::new(Mutex::new(None)))
                .collect(),
            created: AtomicU64::new(0),
            reused: AtomicU64::new(0),
        }
    }

    /// Number of worker slots.
    pub fn nthreads(&self) -> usize {
        self.slots.len()
    }

    /// Acquire worker `wid`'s workspace for the duration of `f`,
    /// constructing it with `make` if the slot is empty.
    ///
    /// `f` additionally receives `reused`: `true` when the workspace
    /// was left by a previous acquisition and may hold stale state the
    /// caller must clear (see the module docs on clear-on-acquire).
    /// Panics if the slot is already borrowed, which would mean two
    /// workers shared a `wid` — a pool bug.
    pub fn with<R>(
        &self,
        wid: usize,
        make: impl FnOnce() -> T,
        f: impl FnOnce(&mut T, bool) -> R,
    ) -> R {
        let mut guard = self.slots[wid]
            .try_lock()
            .expect("WorkspacePool slot borrowed by two workers at once");
        let reused = guard.is_some();
        let ws = match guard.as_mut() {
            Some(ws) => {
                self.reused.fetch_add(1, Ordering::Relaxed);
                SLOTS_REUSED.add(1);
                ws
            }
            None => {
                self.created.fetch_add(1, Ordering::Relaxed);
                SLOTS_CREATED.add(1);
                guard.insert(make())
            }
        };
        f(ws, reused)
    }

    /// Current reuse counters.
    pub fn stats(&self) -> WorkspaceStats {
        WorkspaceStats {
            created: self.created.load(Ordering::Relaxed),
            reused: self.reused.load(Ordering::Relaxed),
        }
    }

    /// Drop every pooled workspace (slots stay; the next acquisition
    /// re-creates). Counters are preserved.
    pub fn clear(&mut self) {
        for s in &mut self.slots {
            *s.get_mut() = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn creates_once_per_worker_then_reuses() {
        let pool = Pool::new(3);
        let ws: WorkspacePool<Vec<u8>> = WorkspacePool::for_pool(&pool);
        assert_eq!(ws.nthreads(), 3);
        for round in 0..5 {
            pool.broadcast(|wid| {
                ws.with(
                    wid,
                    || Vec::with_capacity(64),
                    |buf, reused| {
                        assert_eq!(reused, round > 0, "wid {wid} round {round}");
                        buf.push(wid as u8);
                    },
                );
            });
        }
        let st = ws.stats();
        assert_eq!(st.created, 3);
        assert_eq!(st.reused, 12);
        assert_eq!(st.acquisitions(), 15);
    }

    #[test]
    fn dirty_state_survives_release_and_is_flagged() {
        // The pool does NOT clear on release: the second acquisition
        // must see both the stale contents and reused == true.
        let ws: WorkspacePool<Vec<u32>> = WorkspacePool::with_threads(1);
        ws.with(0, Vec::new, |buf, _| buf.extend([1, 2, 3]));
        ws.with(0, Vec::new, |buf, reused| {
            assert!(reused);
            assert_eq!(buf, &[1, 2, 3], "release leaves state in place");
        });
    }

    #[test]
    fn capacity_survives_reuse() {
        let ws: WorkspacePool<Vec<u64>> = WorkspacePool::with_threads(1);
        let p1 = ws.with(
            0,
            || Vec::with_capacity(4096),
            |buf, _| {
                buf.resize(4096, 0);
                buf.as_ptr() as usize
            },
        );
        let p2 = ws.with(0, Vec::new, |buf, _| {
            buf.clear();
            buf.as_ptr() as usize
        });
        assert_eq!(p1, p2, "no reallocation across acquisitions");
    }

    #[test]
    fn clear_drops_workspaces_but_keeps_counters() {
        let mut ws: WorkspacePool<Vec<u8>> = WorkspacePool::with_threads(2);
        ws.with(0, || vec![1], |_, _| ());
        let before = ws.stats();
        ws.clear();
        assert_eq!(ws.stats(), before);
        ws.with(0, Vec::new, |buf, reused| {
            assert!(!reused, "cleared slot constructs anew");
            assert!(buf.is_empty());
        });
        assert_eq!(ws.stats().created, 2);
    }

    #[test]
    fn make_runs_lazily_only_for_touched_slots() {
        let ws: WorkspacePool<u32> = WorkspacePool::with_threads(4);
        let makes = AtomicUsize::new(0);
        ws.with(
            2,
            || {
                makes.fetch_add(1, Ordering::SeqCst);
                7
            },
            |v, _| assert_eq!(*v, 7),
        );
        assert_eq!(makes.load(Ordering::SeqCst), 1);
        assert_eq!(ws.stats().created, 1, "untouched slots stay empty");
    }
}
