//! Flop-balanced row partitioning (§4.1, Figure 6 of the paper).
//!
//! Static scheduling is the cheapest policy (Figure 2) but balances
//! *row counts*, not *work*. The paper's fix — `RowsToThreads` — keeps
//! static scheduling's contiguous per-thread blocks while equalizing
//! work: count per-row flop, prefix-sum it, and binary-search the
//! prefix for each thread's starting row (`lowbnd`).

use crate::{scan, Pool};

/// `lowbnd(vec, value)` from the paper: the smallest index whose
/// element is `>= value`, or `vec.len()` if none is. `vec` must be
/// non-decreasing.
pub fn lower_bound(vec: &[u64], value: u64) -> usize {
    let mut lo = 0usize;
    let mut hi = vec.len();
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if vec[mid] < value {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// `RowsToThreads`: split `0..weights.len()` into `nparts` contiguous
/// ranges of approximately equal total weight.
///
/// Returns `nparts + 1` non-decreasing offsets with `offsets[0] == 0`
/// and `offsets[nparts] == weights.len()`. Part `t` is
/// `offsets[t]..offsets[t+1]`.
///
/// `weights` is consumed as scratch (it holds its inclusive prefix sum
/// afterwards); pass a clone if the caller still needs raw weights.
pub fn balanced_offsets_in_place(weights: &mut [u64], nparts: usize, pool: &Pool) -> Vec<usize> {
    let n = weights.len();
    let nparts = nparts.max(1);
    let total = scan::parallel_inclusive_scan(pool, weights);
    let mut offsets = Vec::with_capacity(nparts + 1);
    offsets.push(0);
    for t in 1..nparts {
        // Average work per part, times the part index: the row whose
        // inclusive prefix first reaches the target *ends* part `t-1`,
        // so part `t` starts one past it (`lowbnd` over an exclusive
        // prefix, expressed against our inclusive scan).
        let target = (total as u128 * t as u128 / nparts as u128) as u64;
        let idx = lower_bound(weights, target.max(1));
        offsets.push((idx + 1).min(n));
    }
    offsets.push(n);
    // Guarantee monotonicity even for degenerate weight vectors
    // (all-zero rows make several targets collapse onto index 0).
    for t in 1..offsets.len() {
        if offsets[t] < offsets[t - 1] {
            offsets[t] = offsets[t - 1];
        }
    }
    offsets
}

/// Convenience wrapper over [`balanced_offsets_in_place`] that clones
/// the weights.
pub fn balanced_offsets(weights: &[u64], nparts: usize, pool: &Pool) -> Vec<usize> {
    let mut w = weights.to_vec();
    balanced_offsets_in_place(&mut w, nparts, pool)
}

/// Maximum total weight of any part under the given offsets; the
/// balance quality metric used in tests and the ablation bench.
pub fn max_part_weight(weights: &[u64], offsets: &[usize]) -> u64 {
    offsets
        .windows(2)
        .map(|w| weights[w[0]..w[1]].iter().sum())
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> Pool {
        Pool::new(2)
    }

    #[test]
    fn lower_bound_agrees_with_std_partition_point() {
        let v = vec![1u64, 3, 3, 7, 9];
        for target in 0..12 {
            assert_eq!(
                lower_bound(&v, target),
                v.partition_point(|&x| x < target),
                "target {target}"
            );
        }
        assert_eq!(lower_bound(&[], 5), 0);
    }

    #[test]
    fn offsets_cover_and_are_monotone() {
        let weights: Vec<u64> = (0..1000).map(|i| (i % 13) as u64).collect();
        for parts in [1usize, 2, 3, 8, 64] {
            let off = balanced_offsets(&weights, parts, &pool());
            assert_eq!(off.len(), parts + 1);
            assert_eq!(off[0], 0);
            assert_eq!(*off.last().unwrap(), weights.len());
            assert!(off.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn balance_beats_naive_split_on_skewed_weights() {
        // One huge row at the front, uniform tail: an equal-rows split
        // puts the huge row plus 1/4 of the tail on thread 0.
        let mut weights = vec![1u64; 4000];
        weights[0] = 4000;
        let p = pool();
        let balanced = balanced_offsets(&weights, 4, &p);
        let naive: Vec<usize> = (0..=4).map(|t| t * 1000).collect();
        let total: u64 = weights.iter().sum();
        let bal_max = max_part_weight(&weights, &balanced);
        let naive_max = max_part_weight(&weights, &naive);
        assert!(
            bal_max < naive_max,
            "balanced {bal_max} should beat naive {naive_max} (total {total})"
        );
        // Within 2x of the ideal per-part weight (single rows are
        // indivisible, so perfection is not generally possible).
        assert!(bal_max as f64 <= (total as f64 / 4.0) * 2.0 + 1.0);
    }

    #[test]
    fn all_zero_weights_degenerate_cleanly() {
        let weights = vec![0u64; 100];
        let off = balanced_offsets(&weights, 4, &pool());
        assert_eq!(off[0], 0);
        assert_eq!(*off.last().unwrap(), 100);
        assert!(off.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn empty_weights() {
        let off = balanced_offsets(&[], 4, &pool());
        assert_eq!(off, vec![0, 0, 0, 0, 0]);
    }

    #[test]
    fn single_part_takes_everything() {
        let weights = vec![5u64, 1, 9];
        let off = balanced_offsets(&weights, 1, &pool());
        assert_eq!(off, vec![0, 3]);
    }

    #[test]
    fn uniform_weights_split_evenly() {
        let weights = vec![1u64; 1024];
        let off = balanced_offsets(&weights, 4, &pool());
        for w in off.windows(2) {
            let len = w[1] - w[0];
            assert!((255..=257).contains(&len), "part size {len}");
        }
    }
}
