//! Disjoint-writes primitive for filling shared output buffers.
//!
//! Every CSR-producing kernel in the paper follows the same pattern:
//! row pointers decide, ahead of time, which disjoint slice of the
//! output arrays each thread fills. Rust's borrow checker cannot see
//! that the ranges are disjoint across a `Fn` closure shared by the
//! pool workers, so this module provides a minimal, well-documented
//! unsafe cell for exactly that idiom (the same role rayon's internal
//! `SendPtr` plays).

use std::cell::UnsafeCell;
use std::marker::PhantomData;
use std::ops::Range;

/// A shareable pointer to a mutable slice whose regions are written by
/// multiple threads under a caller-guaranteed disjointness contract.
///
/// # Safety contract
///
/// * Each index may be written by at most one thread between two
///   synchronization points (the pool's region barrier).
/// * No reads may overlap writes to the same index within a region.
///
/// Both [`SharedMutSlice::write`] and [`SharedMutSlice::slice_mut`] are
/// `unsafe` to keep the contract at every use site.
pub struct SharedMutSlice<'a, T> {
    ptr: *mut T,
    len: usize,
    _borrow: PhantomData<&'a UnsafeCell<[T]>>,
}

// SAFETY: the pointer is only dereferenced through the `unsafe`
// methods, whose contracts require disjoint access; `T: Send` makes
// moving values across threads sound and the barrier in
// `Pool::broadcast` provides the necessary happens-before edges for
// subsequent reads by the caller.
unsafe impl<'a, T: Send> Send for SharedMutSlice<'a, T> {}
unsafe impl<'a, T: Send> Sync for SharedMutSlice<'a, T> {}

impl<'a, T> SharedMutSlice<'a, T> {
    /// Wrap a mutable slice for disjoint multi-threaded writing.
    pub fn new(slice: &'a mut [T]) -> Self {
        SharedMutSlice {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _borrow: PhantomData,
        }
    }

    /// Length of the underlying slice.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the underlying slice is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Write one element.
    ///
    /// # Safety
    /// `idx < len()`, and no other thread reads or writes `idx` within
    /// the current parallel region.
    #[inline]
    pub unsafe fn write(&self, idx: usize, value: T) {
        debug_assert!(idx < self.len);
        unsafe { self.ptr.add(idx).write(value) };
    }

    /// Reborrow a subrange as a mutable slice.
    ///
    /// # Safety
    /// `range` is in bounds, and no other thread accesses any index in
    /// `range` within the current parallel region.
    #[inline]
    #[allow(clippy::mut_from_ref)] // the whole point, guarded by the contract
    pub unsafe fn slice_mut(&self, range: Range<usize>) -> &mut [T] {
        debug_assert!(range.start <= range.end && range.end <= self.len);
        unsafe {
            std::slice::from_raw_parts_mut(self.ptr.add(range.start), range.end - range.start)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Pool, Schedule};

    #[test]
    fn disjoint_parallel_writes_land() {
        let pool = Pool::new(4);
        let mut v = vec![0u32; 4096];
        {
            let s = SharedMutSlice::new(&mut v);
            pool.parallel_for(4096, Schedule::Dynamic { chunk: 64 }, |i| unsafe {
                s.write(i, i as u32 + 1);
            });
        }
        assert!(v.iter().enumerate().all(|(i, &x)| x == i as u32 + 1));
    }

    #[test]
    fn disjoint_subslices_are_independent() {
        let pool = Pool::new(3);
        let mut v = vec![0u8; 300];
        let offsets = [0usize, 100, 200, 300];
        {
            let s = SharedMutSlice::new(&mut v);
            pool.parallel_ranges(&offsets, |wid, r| {
                let sub = unsafe { s.slice_mut(r) };
                sub.fill(wid as u8 + 1);
            });
        }
        assert!(v[..100].iter().all(|&x| x == 1));
        assert!(v[100..200].iter().all(|&x| x == 2));
        assert!(v[200..].iter().all(|&x| x == 3));
    }

    #[test]
    fn len_and_empty() {
        let mut v = vec![1, 2, 3];
        let s = SharedMutSlice::new(&mut v);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        let mut e: Vec<i32> = vec![];
        let s = SharedMutSlice::new(&mut e);
        assert!(s.is_empty());
    }
}
