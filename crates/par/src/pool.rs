//! Persistent worker pool executing parallel regions.
//!
//! The pool mirrors the OpenMP execution model the paper's kernels are
//! written against: a fixed team of threads that all enter the same
//! *parallel region* (here a closure receiving the worker id), with
//! the calling thread participating as worker 0. Workers park between
//! regions, so repeated regions pay only a wake/notify — this is what
//! lets Figure 2's scheduling-cost measurements see the scheduler, not
//! thread spawning.

use crate::schedule::{static_block, Schedule};
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A fixed-size team of worker threads executing parallel regions.
///
/// Dropping the pool shuts the workers down and joins them.
pub struct Pool {
    shared: Option<Arc<Shared>>,
    handles: Vec<std::thread::JoinHandle<()>>,
    nthreads: usize,
    /// Serializes whole regions so a pool shared between caller threads
    /// (e.g. [`crate::global_pool`]) is safe: one region at a time.
    region: Mutex<()>,
}

struct Shared {
    state: Mutex<State>,
    work_cv: Condvar,
    done_cv: Condvar,
}

struct State {
    /// Type-erased pointer to the current region body (valid for the
    /// duration of the owning `broadcast` call only).
    job: Option<JobRef>,
    /// Incremented for every published region so parked workers can
    /// tell "new job" from spurious wakeups.
    epoch: u64,
    /// Workers (excluding the caller) still inside the current region.
    active: usize,
    shutdown: bool,
}

/// Lifetime-erased reference to the region body. See the SAFETY
/// discussion in [`Pool::broadcast`] for why sending it across threads
/// and calling it there is sound.
#[derive(Clone, Copy)]
struct JobRef(&'static (dyn Fn(usize) + Sync));

impl Pool {
    /// Create a pool running regions on `nthreads` threads (the
    /// calling thread plus `nthreads - 1` spawned workers).
    ///
    /// `nthreads == 1` degenerates to inline execution with no spawned
    /// threads and no synchronization, so single-thread baselines in
    /// the benchmarks measure pure kernel time.
    pub fn new(nthreads: usize) -> Self {
        let nthreads = nthreads.max(1);
        if nthreads == 1 {
            return Pool {
                shared: None,
                handles: Vec::new(),
                nthreads,
                region: Mutex::new(()),
            };
        }
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                job: None,
                epoch: 0,
                active: 0,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let mut handles = Vec::with_capacity(nthreads - 1);
        for wid in 1..nthreads {
            let shared = Arc::clone(&shared);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("spgemm-worker-{wid}"))
                    .spawn(move || worker_loop(&shared, wid))
                    .expect("failed to spawn pool worker"),
            );
        }
        Pool {
            shared: Some(shared),
            handles,
            nthreads,
            region: Mutex::new(()),
        }
    }

    /// A pool using every hardware thread.
    pub fn with_all_threads() -> Self {
        Pool::new(crate::hardware_threads())
    }

    /// Number of workers (including the calling thread).
    #[inline]
    pub fn nthreads(&self) -> usize {
        self.nthreads
    }

    /// Execute `body(wid)` once on every worker, `wid ∈ 0..nthreads`,
    /// with the caller participating as worker 0. Returns after *all*
    /// workers finish — a full OpenMP-style parallel region with
    /// implicit barrier.
    pub fn broadcast(&self, body: impl Fn(usize) + Sync) {
        let Some(shared) = &self.shared else {
            body(0);
            return;
        };
        let _region = self.region.lock();
        // Erase the closure's lifetime for the workers. SAFETY: we
        // block below until `active == 0`, i.e. every worker has
        // finished calling through this reference, before `body` can be
        // dropped; the pointee is `Sync` so concurrent calls are fine.
        let wide: &(dyn Fn(usize) + Sync) = &body;
        let job = JobRef(unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(wide)
        });
        {
            let mut st = shared.state.lock();
            debug_assert!(st.job.is_none(), "nested broadcast on the same pool");
            st.job = Some(job);
            st.epoch += 1;
            st.active = self.nthreads - 1;
            shared.work_cv.notify_all();
        }
        // The caller is worker 0.
        body(0);
        let mut st = shared.state.lock();
        while st.active > 0 {
            shared.done_cv.wait(&mut st);
        }
        st.job = None;
    }

    /// Run `body(i)` for every `i in 0..n` under the given
    /// [`Schedule`]. This is the `#pragma omp parallel for
    /// schedule(...)` of the paper's Figures 2 and 9.
    pub fn parallel_for(&self, n: usize, sched: Schedule, body: impl Fn(usize) + Sync) {
        match sched {
            Schedule::Static => {
                let nt = self.nthreads;
                self.broadcast(|wid| {
                    for i in static_block(n, wid, nt) {
                        body(i);
                    }
                });
            }
            Schedule::Dynamic { chunk } => {
                let chunk = chunk.max(1);
                let next = AtomicUsize::new(0);
                self.broadcast(|_| loop {
                    let start = next.fetch_add(chunk, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    for i in start..(start + chunk).min(n) {
                        body(i);
                    }
                });
            }
            Schedule::Guided { min_chunk } => {
                let min_chunk = min_chunk.max(1);
                let nt = self.nthreads;
                let next = AtomicUsize::new(0);
                self.broadcast(|_| loop {
                    // Claim `max(min_chunk, remaining / nthreads)`
                    // iterations with a CAS so the shrinking chunk size
                    // is computed against a consistent `remaining`.
                    let mut cur = next.load(Ordering::Relaxed);
                    let (start, end) = loop {
                        if cur >= n {
                            break (n, n);
                        }
                        let chunk = ((n - cur) / nt).max(min_chunk);
                        match next.compare_exchange_weak(
                            cur,
                            cur + chunk,
                            Ordering::Relaxed,
                            Ordering::Relaxed,
                        ) {
                            Ok(_) => break (cur, (cur + chunk).min(n)),
                            Err(seen) => cur = seen,
                        }
                    };
                    if start >= n {
                        break;
                    }
                    for i in start..end {
                        body(i);
                    }
                });
            }
        }
    }

    /// Run `body(t, offsets[t]..offsets[t+1])` on each worker `t`:
    /// static scheduling with *caller-chosen* block boundaries. This is
    /// how kernels consume the flop-balanced partition of §4.1.
    ///
    /// `offsets` must have `nthreads() + 1` non-decreasing entries.
    pub fn parallel_ranges(
        &self,
        offsets: &[usize],
        body: impl Fn(usize, std::ops::Range<usize>) + Sync,
    ) {
        assert_eq!(
            offsets.len(),
            self.nthreads + 1,
            "offsets must have nthreads + 1 entries"
        );
        debug_assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
        self.broadcast(|wid| body(wid, offsets[wid]..offsets[wid + 1]));
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        if let Some(shared) = &self.shared {
            {
                let mut st = shared.state.lock();
                st.shutdown = true;
                shared.work_cv.notify_all();
            }
            for h in self.handles.drain(..) {
                let _ = h.join();
            }
        }
    }
}

fn worker_loop(shared: &Shared, wid: usize) {
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock();
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen_epoch {
                    if let Some(job) = st.job {
                        seen_epoch = st.epoch;
                        break job;
                    }
                }
                shared.work_cv.wait(&mut st);
            }
        };
        // `broadcast` keeps the pointee alive until `active` reaches 0,
        // which happens strictly after this call returns.
        (job.0)(wid);
        let mut st = shared.state.lock();
        st.active -= 1;
        if st.active == 0 {
            shared.done_cv.notify_one();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn broadcast_runs_every_worker_once() {
        for nt in [1usize, 2, 4] {
            let pool = Pool::new(nt);
            let hits = AtomicUsize::new(0);
            let wid_mask = AtomicUsize::new(0);
            pool.broadcast(|wid| {
                hits.fetch_add(1, Ordering::SeqCst);
                wid_mask.fetch_or(1 << wid, Ordering::SeqCst);
            });
            assert_eq!(hits.load(Ordering::SeqCst), nt);
            assert_eq!(wid_mask.load(Ordering::SeqCst), (1 << nt) - 1);
        }
    }

    #[test]
    fn broadcast_reusable_many_times() {
        let pool = Pool::new(3);
        let total = AtomicUsize::new(0);
        for _ in 0..100 {
            pool.broadcast(|_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::SeqCst), 300);
    }

    fn check_cover(nt: usize, n: usize, sched: Schedule) {
        let pool = Pool::new(nt);
        let counts: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        pool.parallel_for(n, sched, |i| {
            counts[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, c) in counts.iter().enumerate() {
            assert_eq!(
                c.load(Ordering::SeqCst),
                1,
                "iteration {i} under {sched:?} x{nt}"
            );
        }
    }

    #[test]
    fn parallel_for_covers_every_iteration_exactly_once() {
        for nt in [1usize, 2, 4] {
            for n in [0usize, 1, 7, 64, 1000] {
                check_cover(nt, n, Schedule::Static);
                check_cover(nt, n, Schedule::Dynamic { chunk: 1 });
                check_cover(nt, n, Schedule::Dynamic { chunk: 8 });
                check_cover(nt, n, Schedule::Guided { min_chunk: 1 });
                check_cover(nt, n, Schedule::Guided { min_chunk: 4 });
            }
        }
    }

    #[test]
    fn parallel_for_sums_correctly() {
        let pool = Pool::new(4);
        let sum = AtomicU64::new(0);
        pool.parallel_for(1000, Schedule::GUIDED, |i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::SeqCst), 999 * 1000 / 2);
    }

    #[test]
    fn parallel_ranges_passes_exact_blocks() {
        let pool = Pool::new(3);
        let offsets = vec![0usize, 5, 5, 12];
        let seen = Mutex::new(vec![None; 3]);
        pool.parallel_ranges(&offsets, |wid, r| {
            seen.lock()[wid] = Some(r);
        });
        let seen = seen.lock();
        assert_eq!(seen[0], Some(0..5));
        assert_eq!(seen[1], Some(5..5));
        assert_eq!(seen[2], Some(5..12));
    }

    #[test]
    #[should_panic(expected = "nthreads + 1")]
    fn parallel_ranges_rejects_bad_offsets() {
        let pool = Pool::new(2);
        pool.parallel_ranges(&[0, 1], |_, _| {});
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = Pool::new(1);
        assert_eq!(pool.nthreads(), 1);
        let tid = std::thread::current().id();
        pool.broadcast(|wid| {
            assert_eq!(wid, 0);
            assert_eq!(std::thread::current().id(), tid);
        });
    }

    #[test]
    fn pool_drop_joins_cleanly() {
        for _ in 0..10 {
            let pool = Pool::new(4);
            pool.broadcast(|_| {});
            drop(pool);
        }
    }

    #[test]
    fn mutation_through_mutex_is_visible_after_region() {
        let pool = Pool::new(4);
        let data = Mutex::new(vec![0u32; 16]);
        pool.parallel_for(16, Schedule::Static, |i| {
            data.lock()[i] = i as u32 * 2;
        });
        let d = data.lock();
        assert!(d.iter().enumerate().all(|(i, &v)| v == i as u32 * 2));
    }
}
