//! Property tests for the parallel runtime: every scheduling policy
//! covers every iteration exactly once, the balanced partitioner is
//! correct for arbitrary weight vectors, and scans agree with their
//! sequential definitions.

use proptest::prelude::*;
use spgemm_par::{partition, scan, Pool, Schedule};
use std::sync::atomic::{AtomicUsize, Ordering};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn any_schedule_covers_exactly_once(
        n in 0usize..500,
        nt in 1usize..5,
        chunk in 1usize..9,
        which in 0u8..3,
    ) {
        let sched = match which {
            0 => Schedule::Static,
            1 => Schedule::Dynamic { chunk },
            _ => Schedule::Guided { min_chunk: chunk },
        };
        let pool = Pool::new(nt);
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        pool.parallel_for(n, sched, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, h) in hits.iter().enumerate() {
            prop_assert_eq!(h.load(Ordering::Relaxed), 1, "iteration {} under {:?}", i, sched);
        }
    }

    #[test]
    fn balanced_offsets_invariants(
        weights in proptest::collection::vec(0u64..1000, 0..400),
        nparts in 1usize..9,
    ) {
        let pool = Pool::new(2);
        let off = partition::balanced_offsets(&weights, nparts, &pool);
        prop_assert_eq!(off.len(), nparts + 1);
        prop_assert_eq!(off[0], 0);
        prop_assert_eq!(*off.last().unwrap(), weights.len());
        prop_assert!(off.windows(2).all(|w| w[0] <= w[1]));
        // no part may exceed total/nparts by more than the single
        // heaviest row (rows are indivisible)
        let total: u64 = weights.iter().sum();
        let heaviest = weights.iter().copied().max().unwrap_or(0);
        let bound = total / nparts as u64 + heaviest + 1;
        prop_assert!(
            partition::max_part_weight(&weights, &off) <= bound,
            "imbalance exceeds indivisibility bound"
        );
    }

    #[test]
    fn parallel_scan_equals_sequential(
        v in proptest::collection::vec(0u64..10_000, 0..50_000),
        nt in 1usize..5,
    ) {
        let pool = Pool::new(nt);
        let mut seq = v.clone();
        let ts = scan::inclusive_scan_in_place(&mut seq);
        let mut par = v.clone();
        let tp = scan::parallel_inclusive_scan(&pool, &mut par);
        prop_assert_eq!(ts, tp);
        prop_assert_eq!(seq, par);
    }

    #[test]
    fn lower_bound_is_partition_point(
        mut v in proptest::collection::vec(0u64..1000, 0..100),
        target in 0u64..1100,
    ) {
        v.sort_unstable();
        prop_assert_eq!(
            partition::lower_bound(&v, target),
            v.partition_point(|&x| x < target)
        );
    }

    #[test]
    fn counts_to_offsets_matches_scan(counts in proptest::collection::vec(0usize..50, 0..200)) {
        let off = scan::counts_to_offsets(&counts);
        prop_assert_eq!(off.len(), counts.len() + 1);
        for (i, &c) in counts.iter().enumerate() {
            prop_assert_eq!(off[i + 1] - off[i], c);
        }
    }
}

#[test]
fn pool_survives_many_mixed_regions() {
    // stress: alternating broadcast / parallel_for shapes on one pool
    let pool = Pool::new(4);
    let total = AtomicUsize::new(0);
    for round in 0..200 {
        if round % 2 == 0 {
            pool.broadcast(|_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        } else {
            pool.parallel_for(round, Schedule::Dynamic { chunk: 3 }, |_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        }
    }
    // 100 broadcasts x 4 workers + sum of odd rounds 1..199
    let expect = 100 * 4 + (0..200).filter(|r| r % 2 == 1).sum::<usize>();
    assert_eq!(total.load(Ordering::Relaxed), expect);
}

#[test]
fn pools_of_many_sizes_coexist() {
    let pools: Vec<Pool> = (1..=6).map(Pool::new).collect();
    for (k, p) in pools.iter().enumerate() {
        let c = AtomicUsize::new(0);
        p.parallel_for(1000, Schedule::Static, |_| {
            c.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(c.load(Ordering::Relaxed), 1000, "pool {k}");
    }
}
