//! Markov clustering (MCL) iteration — the paper's opening example of
//! an SpGEMM-bound application ("Markov clustering … requires A² for
//! a given doubly-stochastic similarity matrix", §5.4), after HipMCL
//! (Azad et al., 2018).
//!
//! One iteration is: **expansion** (`A ← A²`, the SpGEMM), then
//! **inflation** (elementwise power `r` and column renormalization),
//! then **pruning** of near-zero entries to keep the matrix sparse.
//! Iterated to convergence, columns concentrate onto "attractor" rows
//! that identify clusters.
//!
//! Expansion *and* inflation run as one fused expression plan
//! ([`spgemm::expr`]): the pipeline
//! `normalize_cols(|A·A|^r)` compiles to a single SpGEMM whose
//! epilogue applies the inflation power and the column
//! renormalization in place — neither the raw square nor the inflated
//! copy is ever materialized separately. The plan lives in a
//! [`MclPipeline`] across rounds: while pruning still changes the
//! pattern, each round rebinds the plan (keeping the pooled
//! per-thread accumulators — the Figure 4 allocation cost is paid
//! once, not per round), and once the pattern stabilizes near
//! convergence every further expansion is a numeric-only plan hit.

use spgemm::expr::{ElemMap, ExprCache, ExprCacheStats, ExprGraph, ExprPlan};
use spgemm::Algorithm;
use spgemm_obs as obs;
use spgemm_par::Pool;
use spgemm_sparse::{ops, Csr, SparseError};

/// MCL hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct MclParams {
    /// Inflation exponent `r` (HipMCL default: 2).
    pub inflation: f64,
    /// Entries below this (after renormalization) are pruned.
    pub prune_threshold: f64,
    /// Maximum number of expansion/inflation rounds.
    pub max_iters: usize,
    /// Convergence: stop when the largest entry change is below this.
    pub tolerance: f64,
    /// SpGEMM kernel for expansion.
    pub algo: Algorithm,
}

impl Default for MclParams {
    fn default() -> Self {
        MclParams {
            inflation: 2.0,
            prune_threshold: 1e-4,
            max_iters: 32,
            tolerance: 1e-6,
            algo: Algorithm::Hash,
        }
    }
}

/// Normalize columns to sum 1 (column-stochastic). Matrices here are
/// row-major, so this transposes the problem: normalize each column's
/// entries across rows. (Thin wrapper over
/// [`spgemm_sparse::ops::normalize_columns`], which the fused
/// expression epilogue shares.)
pub fn normalize_columns(a: &Csr<f64>) -> Csr<f64> {
    ops::normalize_columns(a)
}

/// Inflation: elementwise power `r`, then column renormalization.
pub fn inflate(a: &Csr<f64>, r: f64) -> Csr<f64> {
    normalize_columns(&a.map(|v| v.abs().powf(r)))
}

/// What the expression-plan cache did for one MCL round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MclRound {
    /// The round's pattern matched the cached plan: expansion +
    /// inflation ran numeric-only.
    Reused,
    /// The pattern drifted (pruning changed the structure): the plan
    /// was rebound, keeping its pooled accumulators.
    Rebuilt,
}

/// Per-run plan-reuse report of [`cluster_with_stats`].
#[derive(Clone, Debug, Default)]
pub struct MclStats {
    /// Aggregate expression-plan cache counters (hits = numeric-only
    /// rounds, rebuilds = first round + every pattern change).
    pub expr: ExprCacheStats,
    /// Per-iteration record, in round order.
    pub rounds: Vec<MclRound>,
}

/// The fused expansion+inflation pipeline MCL threads through its
/// rounds: a cached expression plan for `normalize_cols(|A·A|^r)`
/// plus the reused output buffer it executes into.
pub struct MclPipeline {
    cache: ExprCache,
    /// Reused fused expansion+inflation output.
    expanded: Csr<f64>,
    /// The inflation exponent and kernel baked into the compiled DAG.
    inflation: f64,
    algo: Algorithm,
}

impl MclPipeline {
    /// Build the pipeline for the given parameters. The inflation
    /// exponent and kernel are baked into the compiled DAG; running a
    /// step with *different* values is an error, not a silent
    /// fallback (nothing is planned until the first round binds a
    /// concrete matrix).
    pub fn new(params: &MclParams) -> Self {
        let mut g = ExprGraph::new();
        let a = g.input();
        let sq = g.multiply(a, a);
        let inf = g.map(sq, ElemMap::AbsPow(params.inflation));
        let root = g.normalize_cols(inf);
        MclPipeline {
            cache: ExprCache::new(g, root, params.algo),
            expanded: Csr::zero(0, 0),
            inflation: params.inflation,
            algo: params.algo,
        }
    }

    /// Expression-plan cache counters so far.
    pub fn stats(&self) -> ExprCacheStats {
        self.cache.stats()
    }

    /// The compiled plan, once the first round has bound one.
    pub fn plan(&self) -> Option<&ExprPlan> {
        self.cache.plan()
    }
}

/// One MCL round: fused expansion+inflation, then pruning and
/// renormalization. Returns the new matrix and the max absolute entry
/// change (on the shared structure).
///
/// The expansion plan lives in `pipe` so repeated rounds amortize the
/// symbolic phase and accumulator allocations; build it once with
/// [`MclPipeline::new`] and keep it across rounds.
pub fn mcl_step(
    a: &Csr<f64>,
    params: &MclParams,
    pipe: &mut MclPipeline,
    pool: &Pool,
) -> Result<(Csr<f64>, f64), SparseError> {
    // The pipeline compiled `params.inflation` and `params.algo` into
    // its DAG; a drifting inflation schedule needs a new pipeline,
    // not a silently stale epilogue.
    if params.inflation.to_bits() != pipe.inflation.to_bits() || params.algo != pipe.algo {
        return Err(SparseError::PlanMismatch {
            detail: format!(
                "mcl_step params (inflation {}, algo {}) differ from the \
                 pipeline's compiled (inflation {}, algo {}); build a new \
                 MclPipeline for the new parameters",
                params.inflation, params.algo, pipe.inflation, pipe.algo
            ),
        });
    }
    // expansion + inflation in one fused plan execution (the expr
    // layer traces its own bind/multiply/unary phases)
    pipe.cache
        .execute_into_in(&[a], &[], &mut pipe.expanded, pool)?;
    let renorm = {
        let _g = obs::span!("mcl", "mcl.prune");
        let pruned = pipe.expanded.filter(|_, _, v| v >= params.prune_threshold);
        normalize_columns(&pruned)
    };
    // change metric: max |new - old| over the union of structures
    let _g = obs::span!("mcl", "mcl.delta");
    let mut delta = 0.0f64;
    for i in 0..renorm.nrows() {
        for (&c, &v) in renorm.row_cols(i).iter().zip(renorm.row_vals(i)) {
            let old = a.get(i, c).copied().unwrap_or(0.0);
            delta = delta.max((v - old).abs());
        }
        for (&c, &v) in a.row_cols(i).iter().zip(a.row_vals(i)) {
            if renorm.get(i, c).is_none() {
                delta = delta.max(v.abs());
            }
        }
    }
    Ok((renorm, delta))
}

/// Run MCL to convergence; returns the cluster assignment per node.
///
/// The input is made symmetric, given self-loops (standard MCL
/// regularization), and column-normalized before iterating. Clusters
/// are extracted by assigning each column to its attractor (the row
/// holding its maximum).
pub fn cluster(
    graph: &Csr<f64>,
    params: &MclParams,
    pool: &Pool,
) -> Result<Vec<usize>, SparseError> {
    cluster_with_stats(graph, params, pool).map(|(labels, _)| labels)
}

/// [`cluster`], additionally reporting how the fused expansion plan
/// behaved: aggregate hit/rebuild counters plus the per-iteration
/// record ([`MclStats::rounds`]) — once the pattern converges, the
/// tail of the record is all [`MclRound::Reused`].
pub fn cluster_with_stats(
    graph: &Csr<f64>,
    params: &MclParams,
    pool: &Pool,
) -> Result<(Vec<usize>, MclStats), SparseError> {
    let sym = ops::symmetrize_simple(graph)?;
    // Self-loops at each column's max weight (the MCL regularization
    // HipMCL uses): keeps loop strength proportional to the vertex's
    // edges so inflation does not collapse pairs into singletons.
    let n = sym.nrows();
    let mut colmax = vec![0.0f64; n];
    for i in 0..n {
        for (&c, &v) in sym.row_cols(i).iter().zip(sym.row_vals(i)) {
            let m = &mut colmax[c as usize];
            if v.abs() > *m {
                *m = v.abs();
            }
        }
    }
    let loop_trips: Vec<(usize, u32, f64)> =
        (0..n).map(|i| (i, i as u32, colmax[i].max(1.0))).collect();
    let loops = Csr::from_triplets(n, n, &loop_trips)?;
    let with_loops = ops::add(&sym, &loops)?;
    let mut m = normalize_columns(&with_loops);
    let mut pipe = MclPipeline::new(params);
    let mut rounds = Vec::new();
    for _ in 0..params.max_iters {
        let before = pipe.stats().rebuilds;
        let (next, delta) = mcl_step(&m, params, &mut pipe, pool)?;
        rounds.push(if pipe.stats().rebuilds > before {
            MclRound::Rebuilt
        } else {
            MclRound::Reused
        });
        m = next;
        if delta < params.tolerance {
            break;
        }
    }
    // attractor per column = argmax row
    let n = m.nrows();
    let mut best = vec![(0.0f64, usize::MAX); n]; // per column: (val, row)
    for i in 0..n {
        for (&c, &v) in m.row_cols(i).iter().zip(m.row_vals(i)) {
            let e = &mut best[c as usize];
            if v > e.0 {
                *e = (v, i);
            }
        }
    }
    // canonicalize attractor ids to 0..k
    let mut label_of_attractor = std::collections::HashMap::new();
    let mut labels = vec![0usize; n];
    for (col, &(_, attractor)) in best.iter().enumerate() {
        let a = if attractor == usize::MAX {
            col
        } else {
            attractor
        };
        let next_id = label_of_attractor.len();
        let id = *label_of_attractor.entry(a).or_insert(next_id);
        labels[col] = id;
    }
    Ok((
        labels,
        MclStats {
            expr: pipe.stats(),
            rounds,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_cliques() -> Csr<f64> {
        // vertices 0-2 and 3-5 each fully connected; one weak bridge 2-3
        let mut trips = vec![];
        for &(u, v) in &[(0, 1), (0, 2), (1, 2), (3, 4), (3, 5), (4, 5)] {
            trips.push((u as usize, v as u32, 1.0));
            trips.push((v as usize, u as u32, 1.0));
        }
        trips.push((2, 3, 0.1));
        trips.push((3, 2, 0.1));
        Csr::from_triplets(6, 6, &trips).unwrap()
    }

    #[test]
    fn normalize_columns_makes_stochastic() {
        let m = normalize_columns(&two_cliques());
        let mut colsum = [0.0; 6];
        for i in 0..6 {
            for (&c, &v) in m.row_cols(i).iter().zip(m.row_vals(i)) {
                colsum[c as usize] += v;
            }
        }
        for (c, s) in colsum.iter().enumerate() {
            assert!((s - 1.0).abs() < 1e-12, "column {c} sums to {s}");
        }
    }

    #[test]
    fn inflation_sharpens_columns() {
        let m = normalize_columns(&two_cliques());
        let inf = inflate(&m, 2.0);
        // inflation increases the max entry of each column (or keeps
        // it, for already-concentrated columns)
        let col_max = |x: &Csr<f64>, c: u32| -> f64 {
            (0..x.nrows())
                .filter_map(|i| x.get(i, c))
                .fold(0.0f64, |a, &b| a.max(b))
        };
        for c in 0..6u32 {
            assert!(col_max(&inf, c) >= col_max(&m, c) - 1e-12, "column {c}");
        }
    }

    #[test]
    fn separates_two_cliques() {
        let pool = Pool::new(2);
        let labels = cluster(&two_cliques(), &MclParams::default(), &pool).unwrap();
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_eq!(labels[4], labels[5]);
        assert_ne!(labels[0], labels[3], "weakly-bridged cliques must separate");
    }

    #[test]
    fn converges_on_disconnected_components() {
        let g = Csr::from_triplets(4, 4, &[(0, 1, 1.0), (1, 0, 1.0), (2, 3, 1.0), (3, 2, 1.0)])
            .unwrap();
        let pool = Pool::new(1);
        let labels = cluster(&g, &MclParams::default(), &pool).unwrap();
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[3]);
        assert_ne!(labels[0], labels[2]);
    }

    #[test]
    fn cluster_expr_plan_reuses_once_pattern_stabilizes() {
        let pool = Pool::new(2);
        let (labels, stats) =
            cluster_with_stats(&two_cliques(), &MclParams::default(), &pool).unwrap();
        assert_eq!(labels.len(), 6);
        assert!(
            stats.expr.rebuilds >= 1,
            "first round always binds: {stats:?}"
        );
        assert!(
            stats.expr.hits >= 1,
            "a converging MCL run must reach a stable pattern and hit the plan: {stats:?}"
        );
        assert_eq!(
            stats.rounds.len() as u64,
            stats.expr.hits + stats.expr.rebuilds,
            "per-round record covers every iteration: {stats:?}"
        );
        assert_eq!(stats.rounds[0], MclRound::Rebuilt, "round 0 binds");
        // once the pattern stabilizes, the plan serves a long
        // numeric-only streak (pruning may still perturb the very
        // last round as columns collapse onto their attractors)
        let longest_streak = stats
            .rounds
            .iter()
            .fold((0usize, 0usize), |(best, cur), r| match r {
                MclRound::Reused => (best.max(cur + 1), cur + 1),
                MclRound::Rebuilt => (best, 0),
            })
            .0;
        assert!(
            longest_streak >= 3,
            "stable pattern must yield a numeric-only streak: {stats:?}"
        );
    }

    #[test]
    fn mcl_step_keeps_matrix_stochastic_and_sparse() {
        let pool = Pool::new(2);
        let params = MclParams::default();
        let mut pipe = MclPipeline::new(&params);
        let m = normalize_columns(&ops::add(&two_cliques(), &Csr::<f64>::identity(6)).unwrap());
        let (next, delta) = mcl_step(&m, &params, &mut pipe, &pool).unwrap();
        assert!(delta > 0.0);
        assert!(next.nnz() > 0);
        let mut colsum = vec![0.0; 6];
        for i in 0..6 {
            for (&c, &v) in next.row_cols(i).iter().zip(next.row_vals(i)) {
                assert!(v >= 0.0);
                colsum[c as usize] += v;
            }
        }
        for s in colsum {
            assert!((s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn mcl_step_rejects_params_the_pipeline_was_not_built_for() {
        let pool = Pool::new(1);
        let params = MclParams::default();
        let mut pipe = MclPipeline::new(&params);
        let m = normalize_columns(&two_cliques());
        mcl_step(&m, &params, &mut pipe, &pool).unwrap();
        // an inflation schedule must rebuild the pipeline, not
        // silently run the old epilogue
        let drifted = MclParams {
            inflation: 3.0,
            ..params
        };
        assert!(matches!(
            mcl_step(&m, &drifted, &mut pipe, &pool),
            Err(SparseError::PlanMismatch { .. })
        ));
        let mut pipe2 = MclPipeline::new(&drifted);
        mcl_step(&m, &drifted, &mut pipe2, &pool).unwrap();
    }

    #[test]
    fn pipeline_fuses_inflation_into_the_expansion() {
        let pool = Pool::new(2);
        let params = MclParams::default();
        let mut pipe = MclPipeline::new(&params);
        let m = normalize_columns(&two_cliques());
        mcl_step(&m, &params, &mut pipe, &pool).unwrap();
        let plan = pipe.plan().expect("bound by the first step");
        assert_eq!(
            plan.fused_nodes(),
            2,
            "inflation power and renormalization both fuse into A²"
        );
        assert!(plan.fused_bytes_eliminated() > 0);
    }
}
