//! Markov clustering (MCL) iteration — the paper's opening example of
//! an SpGEMM-bound application ("Markov clustering … requires A² for
//! a given doubly-stochastic similarity matrix", §5.4), after HipMCL
//! (Azad et al., 2018).
//!
//! One iteration is: **expansion** (`A ← A²`, the SpGEMM), then
//! **inflation** (elementwise power `r` and column renormalization),
//! then **pruning** of near-zero entries to keep the matrix sparse.
//! Iterated to convergence, columns concentrate onto "attractor" rows
//! that identify clusters.
//!
//! Expansion runs through a [`spgemm::PlanCache`]: MCL's pattern
//! drifts while pruning is active, so early rounds rebind the plan
//! (keeping the pooled per-thread accumulators — the Figure 4
//! allocation cost is paid once, not per round), and once the pattern
//! stabilizes near convergence every further expansion is a
//! numeric-only plan hit.

use spgemm::{Algorithm, OutputOrder, PlanCache, PlanCacheStats};
use spgemm_par::Pool;
use spgemm_sparse::{ops, Csr, PlusTimes, SparseError};

/// The plan cache type MCL threads through its expansion steps.
pub type MclPlanCache = PlanCache<PlusTimes<f64>>;

/// MCL hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct MclParams {
    /// Inflation exponent `r` (HipMCL default: 2).
    pub inflation: f64,
    /// Entries below this (after renormalization) are pruned.
    pub prune_threshold: f64,
    /// Maximum number of expansion/inflation rounds.
    pub max_iters: usize,
    /// Convergence: stop when the largest entry change is below this.
    pub tolerance: f64,
    /// SpGEMM kernel for expansion.
    pub algo: Algorithm,
}

impl Default for MclParams {
    fn default() -> Self {
        MclParams {
            inflation: 2.0,
            prune_threshold: 1e-4,
            max_iters: 32,
            tolerance: 1e-6,
            algo: Algorithm::Hash,
        }
    }
}

/// Normalize columns to sum 1 (column-stochastic). Matrices here are
/// row-major, so this transposes the problem: normalize each column's
/// entries across rows.
pub fn normalize_columns(a: &Csr<f64>) -> Csr<f64> {
    let mut colsum = vec![0.0f64; a.ncols()];
    for i in 0..a.nrows() {
        for (&c, &v) in a.row_cols(i).iter().zip(a.row_vals(i)) {
            colsum[c as usize] += v;
        }
    }
    let (nr, nc, rpts, cols, mut vals, sorted) = a.clone().into_parts();
    for (v, &c) in vals.iter_mut().zip(&cols) {
        let s = colsum[c as usize];
        if s != 0.0 {
            *v /= s;
        }
    }
    Csr::from_parts_unchecked(nr, nc, rpts, cols, vals, sorted)
}

/// Inflation: elementwise power `r`, then column renormalization.
pub fn inflate(a: &Csr<f64>, r: f64) -> Csr<f64> {
    normalize_columns(&a.map(|v| v.abs().powf(r)))
}

/// One MCL round: expansion, inflation, pruning. Returns the new
/// matrix and the max absolute entry change (on the shared structure).
///
/// The expansion's plan lives in `cache` so repeated rounds amortize
/// the symbolic phase and accumulator allocations; pass a cache built
/// by [`expansion_cache`] and keep it across rounds.
pub fn mcl_step(
    a: &Csr<f64>,
    params: &MclParams,
    cache: &mut MclPlanCache,
    pool: &Pool,
) -> Result<(Csr<f64>, f64), SparseError> {
    let expanded = cache.multiply_in(a, a, pool)?;
    let inflated = inflate(&expanded, params.inflation);
    let pruned = inflated.filter(|_, _, v| v >= params.prune_threshold);
    let renorm = normalize_columns(&pruned);
    // change metric: max |new - old| over the union of structures
    let mut delta = 0.0f64;
    for i in 0..renorm.nrows() {
        for (&c, &v) in renorm.row_cols(i).iter().zip(renorm.row_vals(i)) {
            let old = a.get(i, c).copied().unwrap_or(0.0);
            delta = delta.max((v - old).abs());
        }
        for (&c, &v) in a.row_cols(i).iter().zip(a.row_vals(i)) {
            if renorm.get(i, c).is_none() {
                delta = delta.max(v.abs());
            }
        }
    }
    Ok((renorm, delta))
}

/// A fresh expansion plan cache for the given parameters.
pub fn expansion_cache(params: &MclParams) -> MclPlanCache {
    PlanCache::new(params.algo, OutputOrder::Sorted)
}

/// Run MCL to convergence; returns the cluster assignment per node.
///
/// The input is made symmetric, given self-loops (standard MCL
/// regularization), and column-normalized before iterating. Clusters
/// are extracted by assigning each column to its attractor (the row
/// holding its maximum).
pub fn cluster(
    graph: &Csr<f64>,
    params: &MclParams,
    pool: &Pool,
) -> Result<Vec<usize>, SparseError> {
    cluster_with_stats(graph, params, pool).map(|(labels, _)| labels)
}

/// [`cluster`], additionally reporting how the expansion plan cache
/// behaved (hits = numeric-only rounds, rebuilds = pattern changes).
pub fn cluster_with_stats(
    graph: &Csr<f64>,
    params: &MclParams,
    pool: &Pool,
) -> Result<(Vec<usize>, PlanCacheStats), SparseError> {
    let sym = ops::symmetrize_simple(graph)?;
    // Self-loops at each column's max weight (the MCL regularization
    // HipMCL uses): keeps loop strength proportional to the vertex's
    // edges so inflation does not collapse pairs into singletons.
    let n = sym.nrows();
    let mut colmax = vec![0.0f64; n];
    for i in 0..n {
        for (&c, &v) in sym.row_cols(i).iter().zip(sym.row_vals(i)) {
            let m = &mut colmax[c as usize];
            if v.abs() > *m {
                *m = v.abs();
            }
        }
    }
    let loop_trips: Vec<(usize, u32, f64)> =
        (0..n).map(|i| (i, i as u32, colmax[i].max(1.0))).collect();
    let loops = Csr::from_triplets(n, n, &loop_trips)?;
    let with_loops = ops::add(&sym, &loops)?;
    let mut m = normalize_columns(&with_loops);
    let mut cache = expansion_cache(params);
    for _ in 0..params.max_iters {
        let (next, delta) = mcl_step(&m, params, &mut cache, pool)?;
        m = next;
        if delta < params.tolerance {
            break;
        }
    }
    // attractor per column = argmax row
    let n = m.nrows();
    let mut best = vec![(0.0f64, usize::MAX); n]; // per column: (val, row)
    for i in 0..n {
        for (&c, &v) in m.row_cols(i).iter().zip(m.row_vals(i)) {
            let e = &mut best[c as usize];
            if v > e.0 {
                *e = (v, i);
            }
        }
    }
    // canonicalize attractor ids to 0..k
    let mut label_of_attractor = std::collections::HashMap::new();
    let mut labels = vec![0usize; n];
    for (col, &(_, attractor)) in best.iter().enumerate() {
        let a = if attractor == usize::MAX {
            col
        } else {
            attractor
        };
        let next_id = label_of_attractor.len();
        let id = *label_of_attractor.entry(a).or_insert(next_id);
        labels[col] = id;
    }
    Ok((labels, cache.stats()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_cliques() -> Csr<f64> {
        // vertices 0-2 and 3-5 each fully connected; one weak bridge 2-3
        let mut trips = vec![];
        for &(u, v) in &[(0, 1), (0, 2), (1, 2), (3, 4), (3, 5), (4, 5)] {
            trips.push((u as usize, v as u32, 1.0));
            trips.push((v as usize, u as u32, 1.0));
        }
        trips.push((2, 3, 0.1));
        trips.push((3, 2, 0.1));
        Csr::from_triplets(6, 6, &trips).unwrap()
    }

    #[test]
    fn normalize_columns_makes_stochastic() {
        let m = normalize_columns(&two_cliques());
        let mut colsum = [0.0; 6];
        for i in 0..6 {
            for (&c, &v) in m.row_cols(i).iter().zip(m.row_vals(i)) {
                colsum[c as usize] += v;
            }
        }
        for (c, s) in colsum.iter().enumerate() {
            assert!((s - 1.0).abs() < 1e-12, "column {c} sums to {s}");
        }
    }

    #[test]
    fn inflation_sharpens_columns() {
        let m = normalize_columns(&two_cliques());
        let inf = inflate(&m, 2.0);
        // inflation increases the max entry of each column (or keeps
        // it, for already-concentrated columns)
        let col_max = |x: &Csr<f64>, c: u32| -> f64 {
            (0..x.nrows())
                .filter_map(|i| x.get(i, c))
                .fold(0.0f64, |a, &b| a.max(b))
        };
        for c in 0..6u32 {
            assert!(col_max(&inf, c) >= col_max(&m, c) - 1e-12, "column {c}");
        }
    }

    #[test]
    fn separates_two_cliques() {
        let pool = Pool::new(2);
        let labels = cluster(&two_cliques(), &MclParams::default(), &pool).unwrap();
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_eq!(labels[4], labels[5]);
        assert_ne!(labels[0], labels[3], "weakly-bridged cliques must separate");
    }

    #[test]
    fn converges_on_disconnected_components() {
        let g = Csr::from_triplets(4, 4, &[(0, 1, 1.0), (1, 0, 1.0), (2, 3, 1.0), (3, 2, 1.0)])
            .unwrap();
        let pool = Pool::new(1);
        let labels = cluster(&g, &MclParams::default(), &pool).unwrap();
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[3]);
        assert_ne!(labels[0], labels[2]);
    }

    #[test]
    fn cluster_plan_cache_reuses_once_pattern_stabilizes() {
        let pool = Pool::new(2);
        let (labels, stats) =
            cluster_with_stats(&two_cliques(), &MclParams::default(), &pool).unwrap();
        assert_eq!(labels.len(), 6);
        assert!(stats.rebuilds >= 1, "first round always plans: {stats:?}");
        assert!(
            stats.hits >= 1,
            "a converging MCL run must reach a stable pattern and hit the plan: {stats:?}"
        );
    }

    #[test]
    fn mcl_step_keeps_matrix_stochastic_and_sparse() {
        let pool = Pool::new(2);
        let params = MclParams::default();
        let mut cache = expansion_cache(&params);
        let m = normalize_columns(&ops::add(&two_cliques(), &Csr::<f64>::identity(6)).unwrap());
        let (next, delta) = mcl_step(&m, &params, &mut cache, &pool).unwrap();
        assert!(delta > 0.0);
        assert!(next.nnz() > 0);
        let mut colsum = vec![0.0; 6];
        for i in 0..6 {
            for (&c, &v) in next.row_cols(i).iter().zip(next.row_vals(i)) {
                assert!(v >= 0.0);
                colsum[c as usize] += v;
            }
        }
        for s in colsum {
            assert!((s - 1.0).abs() < 1e-9);
        }
    }
}
