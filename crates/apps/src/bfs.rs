//! Multi-source BFS as repeated square × tall-skinny boolean SpGEMM.
//!
//! "Many graph processing algorithms perform multiple breadth-first
//! searches in parallel … In linear algebraic terms, this corresponds
//! to multiplying a square sparse matrix with a tall skinny one"
//! (§5.5). The frontier stack `F` has one column per source; one
//! SpGEMM over the `(∨, ∧)` semiring advances every frontier one
//! level: `F' = Aᵀ · F` (for our row-major CSR and an undirected or
//! pre-transposed graph, `A · F`).

use spgemm::{multiply_in, Algorithm, OutputOrder};
use spgemm_par::Pool;
use spgemm_sparse::{ColIdx, Coo, Csr, OrAnd, SparseError};

/// Result of a multi-source BFS: `levels[v][s]` is the BFS level of
/// vertex `v` from source `s` (`u32::MAX` when unreachable).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BfsLevels {
    /// Number of vertices.
    pub nverts: usize,
    /// Number of sources.
    pub nsources: usize,
    levels: Vec<u32>,
}

/// Marker for unreachable vertices.
pub const UNREACHED: u32 = u32::MAX;

impl BfsLevels {
    fn new(nverts: usize, nsources: usize) -> Self {
        BfsLevels {
            nverts,
            nsources,
            levels: vec![UNREACHED; nverts * nsources],
        }
    }

    /// Level of `vertex` from `source` (`UNREACHED` if not reached).
    #[inline]
    pub fn level(&self, vertex: usize, source: usize) -> u32 {
        self.levels[vertex * self.nsources + source]
    }

    #[inline]
    fn set(&mut self, vertex: usize, source: usize, level: u32) {
        self.levels[vertex * self.nsources + source] = level;
    }

    /// Vertices reached from `source` (including the source itself).
    pub fn reached_count(&self, source: usize) -> usize {
        (0..self.nverts)
            .filter(|&v| self.level(v, source) != UNREACHED)
            .count()
    }
}

/// Build the initial frontier matrix: `n × s`, one true per column at
/// the source vertex.
fn initial_frontier(n: usize, sources: &[usize]) -> Result<Csr<bool>, SparseError> {
    let mut coo = Coo::with_capacity(n, sources.len(), sources.len())?;
    for (s, &v) in sources.iter().enumerate() {
        coo.push(v, s as ColIdx, true)?;
    }
    Ok(coo.into_csr_sum())
}

/// Multi-source BFS by SpGEMM over the boolean semiring.
///
/// `graph` is interpreted as directed edges `u → v` for entry
/// `(u, v)`; pass a symmetric matrix for undirected search. Because
/// frontiers expand along *incoming* edges of the product's row space,
/// the graph is transposed internally once.
///
/// `algo` selects the SpGEMM kernel (the paper's recipe recommends the
/// hash family for tall-skinny operands, Table 4b).
pub fn multi_source_bfs(
    graph: &Csr<bool>,
    sources: &[usize],
    algo: Algorithm,
    pool: &Pool,
) -> Result<BfsLevels, SparseError> {
    if graph.nrows() != graph.ncols() {
        return Err(SparseError::ShapeMismatch {
            left: graph.shape(),
            right: graph.shape(),
            op: "multi_source_bfs (square graph required)",
        });
    }
    let n = graph.nrows();
    for &s in sources {
        if s >= n {
            return Err(SparseError::ColumnOutOfBounds {
                row: s,
                col: s as u32,
                ncols: n,
            });
        }
    }
    // F' = Aᵀ F: frontier at v spreads to u for each edge u → v... we
    // want the forward direction (v receives from u when u is in the
    // frontier), i.e. F'[v] = ∨_u A[u][v] ∧ F[u] = (Aᵀ F)[v].
    let at = spgemm_sparse::ops::transpose(graph);

    let mut levels = BfsLevels::new(n, sources.len());
    let mut frontier = initial_frontier(n, sources)?;
    for (s, &v) in sources.iter().enumerate() {
        levels.set(v, s, 0);
    }
    let mut depth = 0u32;
    while frontier.nnz() > 0 {
        depth += 1;
        let next = multiply_in::<OrAnd>(&at, &frontier, algo, OutputOrder::Unsorted, pool)?;
        // keep only newly-discovered (vertex, source) pairs
        let mut coo = Coo::with_capacity(n, sources.len(), next.nnz())?;
        for v in 0..n {
            for &s in next.row_cols(v) {
                if levels.level(v, s as usize) == UNREACHED {
                    levels.set(v, s as usize, depth);
                    coo.push(v, s, true)?;
                }
            }
        }
        frontier = coo.into_csr_sum();
    }
    Ok(levels)
}

/// Sequential reference BFS (queue-based), for tests.
pub fn sequential_bfs(graph: &Csr<bool>, source: usize) -> Vec<u32> {
    let n = graph.nrows();
    let mut level = vec![UNREACHED; n];
    let mut queue = std::collections::VecDeque::new();
    level[source] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        for &v in graph.row_cols(u) {
            let v = v as usize;
            if level[v] == UNREACHED {
                level[v] = level[u] + 1;
                queue.push_back(v);
            }
        }
    }
    level
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> Csr<bool> {
        // 0 -> 1 -> 2 -> ... -> n-1
        let trips: Vec<(usize, ColIdx, bool)> =
            (0..n - 1).map(|i| (i, (i + 1) as ColIdx, true)).collect();
        Csr::from_triplets(n, n, &trips).unwrap()
    }

    #[test]
    fn path_levels() {
        let g = path_graph(6);
        let pool = Pool::new(2);
        let l = multi_source_bfs(&g, &[0, 3], Algorithm::Hash, &pool).unwrap();
        for v in 0..6 {
            assert_eq!(l.level(v, 0), v as u32, "from source 0");
        }
        for v in 0..3 {
            assert_eq!(l.level(v, 1), UNREACHED, "3 cannot reach backwards");
        }
        for v in 3..6 {
            assert_eq!(l.level(v, 1), (v - 3) as u32);
        }
    }

    #[test]
    fn matches_sequential_on_random_graph() {
        let a = spgemm_gen::rmat::generate_kind(
            spgemm_gen::RmatKind::G500,
            8,
            8,
            &mut spgemm_gen::rng(77),
        );
        let g = a.map(|_| true);
        let sources = [0usize, 5, 100, 200];
        let pool = Pool::new(2);
        for algo in [Algorithm::Hash, Algorithm::HashVec, Algorithm::Heap] {
            let l = multi_source_bfs(&g, &sources, algo, &pool).unwrap();
            for (s, &src) in sources.iter().enumerate() {
                let seq = sequential_bfs(&g, src);
                for (v, &lvl) in seq.iter().enumerate() {
                    assert_eq!(l.level(v, s), lvl, "{algo} src {src} vertex {v}");
                }
            }
        }
    }

    #[test]
    fn disconnected_vertices_stay_unreached() {
        // two disjoint edges: 0->1, 2->3
        let g = Csr::from_triplets(4, 4, &[(0, 1, true), (2, 3, true)]).unwrap();
        let pool = Pool::new(1);
        let l = multi_source_bfs(&g, &[0], Algorithm::Hash, &pool).unwrap();
        assert_eq!(l.level(1, 0), 1);
        assert_eq!(l.level(2, 0), UNREACHED);
        assert_eq!(l.level(3, 0), UNREACHED);
        assert_eq!(l.reached_count(0), 2);
    }

    #[test]
    fn self_loop_terminates() {
        let g = Csr::from_triplets(2, 2, &[(0, 0, true), (0, 1, true)]).unwrap();
        let pool = Pool::new(1);
        let l = multi_source_bfs(&g, &[0], Algorithm::Hash, &pool).unwrap();
        assert_eq!(l.level(0, 0), 0);
        assert_eq!(l.level(1, 0), 1);
    }

    #[test]
    fn bad_source_rejected() {
        let g = path_graph(3);
        let pool = Pool::new(1);
        assert!(multi_source_bfs(&g, &[9], Algorithm::Hash, &pool).is_err());
    }
}
