//! Algebraic Multigrid Galerkin coarsening `A_c = Pᵀ A P` — the
//! canonical numeric SpGEMM consumer cited in the paper's introduction
//! (Ballard, Siefert & Hu: "Reducing communication costs for sparse
//! matrix multiplication within algebraic multigrid").
//!
//! We implement aggregation-based AMG: grid points are grouped into
//! aggregates; the prolongation `P` is the piecewise-constant
//! `n × n_c` indicator matrix of the aggregation; the coarse operator
//! is the triple product computed as two SpGEMMs (`Pᵀ · (A · P)`).

use spgemm::expr::{ExprGraph, ExprPlan};
use spgemm::{multiply_in, Algorithm, OutputOrder};
use spgemm_par::Pool;
use spgemm_sparse::{ops, ColIdx, Coo, Csr, PlusTimes, SparseError};

/// Piecewise-constant prolongation from an aggregate assignment:
/// `P[i][agg[i]] = 1`. `n_c` is `max(agg) + 1`.
pub fn prolongation_from_aggregates(agg: &[usize]) -> Result<Csr<f64>, SparseError> {
    let n = agg.len();
    let nc = agg.iter().copied().max().map_or(0, |m| m + 1);
    let mut coo = Coo::with_capacity(n, nc, n)?;
    for (i, &a) in agg.iter().enumerate() {
        coo.push(i, a as ColIdx, 1.0)?;
    }
    Ok(coo.into_csr_sum())
}

/// Greedy unsmoothed aggregation along the matrix graph: sweep the
/// vertices; an unaggregated vertex seeds a new aggregate containing
/// itself and its unaggregated neighbours (the classic root-node
/// scheme).
pub fn greedy_aggregate(a: &Csr<f64>) -> Vec<usize> {
    let n = a.nrows();
    let mut agg = vec![usize::MAX; n];
    let mut next = 0usize;
    for i in 0..n {
        if agg[i] != usize::MAX {
            continue;
        }
        agg[i] = next;
        for &j in a.row_cols(i) {
            let j = j as usize;
            if j != i && agg[j] == usize::MAX {
                agg[j] = next;
            }
        }
        next += 1;
    }
    agg
}

/// Galerkin triple product `Pᵀ A P` via two SpGEMMs.
pub fn galerkin_product(
    a: &Csr<f64>,
    p: &Csr<f64>,
    algo: Algorithm,
    pool: &Pool,
) -> Result<Csr<f64>, SparseError> {
    let ap = multiply_in::<PlusTimes<f64>>(a, p, algo, OutputOrder::Sorted, pool)?;
    let pt = ops::transpose(p);
    multiply_in::<PlusTimes<f64>>(&pt, &ap, algo, OutputOrder::Sorted, pool)
}

/// A reusable Galerkin triple product `Pᵀ A P` for a **fixed
/// aggregation**, compiled as one expression plan
/// (`multiply(transpose(P), multiply(A, P))` — see [`spgemm::expr`]):
/// both SpGEMMs are planned once, the transpose of `P` is a cached
/// structure refilled by a value gather, and every re-coarsening
/// (time-dependent coefficients, Jacobian refreshes — `A`'s values
/// change, its pattern does not) is a numeric-only re-execution into
/// reused storage. This is the AMG re-setup loop the paper's
/// introduction cites as a primary SpGEMM consumer, with the Figure 4
/// allocation cost amortized away.
pub struct GalerkinPlan {
    p: Csr<f64>,
    plan: ExprPlan,
    /// Reused coarse operator.
    ac: Csr<f64>,
}

impl GalerkinPlan {
    /// Plan `Pᵀ A P` for the structure of `a` and `p`, computing the
    /// initial coarse operator.
    pub fn new(
        a: &Csr<f64>,
        p: &Csr<f64>,
        algo: Algorithm,
        pool: &Pool,
    ) -> Result<Self, SparseError> {
        let mut g = ExprGraph::new();
        let ia = g.input();
        let ip = g.input();
        let ap = g.multiply(ia, ip);
        let pt = g.transpose(ip);
        let root = g.multiply(pt, ap);
        let plan = ExprPlan::new_in(&g, root, &[a, p], &[], algo, pool)?;
        let mut ac = Csr::zero(0, 0);
        plan.root_into(&mut ac)?;
        Ok(GalerkinPlan {
            p: p.clone(),
            plan,
            ac,
        })
    }

    /// Recompute the coarse operator for new values of `a` (same
    /// sparsity pattern as planned): a numeric-only pipeline
    /// re-execution, no steady-state allocation.
    ///
    /// The pattern is verified (structure fingerprint, `O(nnz)` —
    /// negligible next to the SpGEMMs): a matrix whose entries moved
    /// is rejected with [`SparseError::PlanMismatch`] rather than
    /// silently coarsened against stale row pointers.
    pub fn recoarsen(&mut self, a: &Csr<f64>, pool: &Pool) -> Result<&Csr<f64>, SparseError> {
        let drifted = self.plan.mismatched_inputs(&[a, &self.p]);
        if !drifted.is_empty() {
            let names: Vec<&str> = drifted
                .iter()
                .map(|&slot| if slot == 0 { "A" } else { "P" })
                .collect();
            return Err(SparseError::PlanMismatch {
                detail: format!(
                    "recoarsen: the sparsity pattern of {} differs from the planned one; \
                     build a new GalerkinPlan",
                    names.join(" and ")
                ),
            });
        }
        self.plan
            .execute_into_in(&[a, &self.p], &[], &mut self.ac, pool)?;
        Ok(&self.ac)
    }

    /// The current coarse operator.
    pub fn coarse(&self) -> &Csr<f64> {
        &self.ac
    }

    /// The prolongation this plan was built around.
    pub fn prolongation(&self) -> &Csr<f64> {
        &self.p
    }

    /// Aggregated workspace-reuse counters of the pipeline's SpGEMM
    /// nodes.
    pub fn workspace_stats(&self) -> spgemm_par::WorkspaceStats {
        self.plan.workspace_stats()
    }

    /// The compiled expression plan behind the triple product.
    pub fn expr_plan(&self) -> &ExprPlan {
        &self.plan
    }
}

/// One level of the AMG setup phase: aggregate, build `P`, coarsen.
/// Returns `(P, A_c)`.
pub fn coarsen_level(
    a: &Csr<f64>,
    algo: Algorithm,
    pool: &Pool,
) -> Result<(Csr<f64>, Csr<f64>), SparseError> {
    let agg = greedy_aggregate(a);
    let p = prolongation_from_aggregates(&agg)?;
    let ac = galerkin_product(a, &p, algo, pool)?;
    Ok((p, ac))
}

/// Build a full coarsening hierarchy until the operator is at most
/// `min_size` rows or `max_levels` is reached. Returns the operators
/// `[A_0, A_1, ...]` (finest first).
pub fn setup_hierarchy(
    a: Csr<f64>,
    min_size: usize,
    max_levels: usize,
    algo: Algorithm,
    pool: &Pool,
) -> Result<Vec<Csr<f64>>, SparseError> {
    let mut levels = vec![a];
    while levels.len() < max_levels {
        let fine = levels.last().expect("at least the fine level");
        if fine.nrows() <= min_size {
            break;
        }
        let (_, coarse) = coarsen_level(fine, algo, pool)?;
        if coarse.nrows() >= fine.nrows() {
            break; // aggregation stalled
        }
        levels.push(coarse);
    }
    Ok(levels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spgemm_gen::poisson::poisson2d;

    #[test]
    fn prolongation_columns_partition() {
        let agg = vec![0usize, 0, 1, 1, 2];
        let p = prolongation_from_aggregates(&agg).unwrap();
        assert_eq!(p.shape(), (5, 3));
        assert_eq!(p.nnz(), 5, "each fine point in exactly one aggregate");
        for (i, &a) in agg.iter().enumerate() {
            assert_eq!(p.get(i, a as u32), Some(&1.0));
        }
    }

    #[test]
    fn greedy_aggregation_covers_all_vertices() {
        let a = poisson2d(8);
        let agg = greedy_aggregate(&a);
        assert!(agg.iter().all(|&x| x != usize::MAX));
        let nagg = agg.iter().copied().max().unwrap() + 1;
        assert!(nagg < a.nrows(), "aggregation must coarsen");
        assert!(
            nagg >= a.nrows() / 6,
            "5-point stencil aggregates are ≤ 5+1 points"
        );
    }

    #[test]
    fn galerkin_preserves_nullspace_action() {
        // For the piecewise-constant P, row sums satisfy
        // (A_c · 1)_agg = Σ_{i ∈ agg} (A · 1)_i  — coarsening conserves
        // the operator's action on the constant vector.
        let a = poisson2d(6);
        let agg = greedy_aggregate(&a);
        let p = prolongation_from_aggregates(&agg).unwrap();
        let pool = Pool::new(2);
        let ac = galerkin_product(&a, &p, Algorithm::Hash, &pool).unwrap();

        let row_sum = |m: &Csr<f64>, i: usize| -> f64 { m.row_vals(i).iter().sum() };
        let nc = ac.nrows();
        let mut fine_sums = vec![0.0f64; nc];
        for i in 0..a.nrows() {
            fine_sums[agg[i]] += row_sum(&a, i);
        }
        for (c, &fine) in fine_sums.iter().enumerate() {
            assert!(
                (row_sum(&ac, c) - fine).abs() < 1e-9,
                "aggregate {c}: {} vs {}",
                row_sum(&ac, c),
                fine
            );
        }
    }

    #[test]
    fn galerkin_keeps_symmetry() {
        let a = poisson2d(5);
        let pool = Pool::new(2);
        let (_, ac) = coarsen_level(&a, Algorithm::Hash, &pool).unwrap();
        let act = ops::transpose(&ac);
        assert!(
            spgemm_sparse::approx_eq_f64(&ac, &act, 1e-12),
            "A_c must stay symmetric"
        );
    }

    #[test]
    fn hierarchy_shrinks_monotonically() {
        let a = poisson2d(12);
        let pool = Pool::new(2);
        let levels = setup_hierarchy(a, 8, 10, Algorithm::Hash, &pool).unwrap();
        assert!(
            levels.len() >= 3,
            "144 points should coarsen at least twice"
        );
        for w in levels.windows(2) {
            assert!(w[1].nrows() < w[0].nrows());
        }
        assert!(levels.last().unwrap().nrows() <= 20);
    }

    #[test]
    fn galerkin_plan_recoarsens_match_fresh_products() {
        let a = poisson2d(8);
        let agg = greedy_aggregate(&a);
        let p = prolongation_from_aggregates(&agg).unwrap();
        let pool = Pool::new(2);
        let mut plan = GalerkinPlan::new(&a, &p, Algorithm::Hash, &pool).unwrap();
        assert!(spgemm_sparse::approx_eq_f64(
            plan.coarse(),
            &galerkin_product(&a, &p, Algorithm::Hash, &pool).unwrap(),
            1e-12
        ));
        // "time steps": same stencil pattern, drifting coefficients
        for step in 1..=4 {
            let scaled = a.map(|v| v * (1.0 + step as f64 * 0.1));
            let expect = galerkin_product(&scaled, &p, Algorithm::Hash, &pool).unwrap();
            let got = plan.recoarsen(&scaled, &pool).unwrap();
            assert!(
                spgemm_sparse::approx_eq_f64(got, &expect, 1e-12),
                "step {step}"
            );
        }
        let st = plan.workspace_stats();
        assert!(
            st.reused >= 4,
            "recoarsening must reuse accumulators: {st:?}"
        );
        // a pattern change must be rejected, not silently coarsened —
        // and the error must say *which* operand drifted
        let moved = poisson2d(8).filter(|i, j, _| i != j as usize);
        match plan.recoarsen(&moved, &pool) {
            Err(SparseError::PlanMismatch { detail }) => {
                assert!(
                    detail.contains("pattern of A "),
                    "mismatch must name the drifted operand: {detail:?}"
                );
                assert!(
                    !detail.contains("and P"),
                    "P did not drift and must not be blamed: {detail:?}"
                );
            }
            other => panic!("expected PlanMismatch, got {other:?}"),
        }
    }

    #[test]
    fn triple_product_matches_direct_composition() {
        // (PᵀAP) v == Pᵀ(A(Pv)) for a probe vector v
        let a = poisson2d(4);
        let agg = greedy_aggregate(&a);
        let p = prolongation_from_aggregates(&agg).unwrap();
        let pool = Pool::new(1);
        let ac = galerkin_product(&a, &p, Algorithm::Heap, &pool).unwrap();

        let matvec = |m: &Csr<f64>, v: &[f64]| -> Vec<f64> {
            (0..m.nrows())
                .map(|i| {
                    m.row_cols(i)
                        .iter()
                        .zip(m.row_vals(i))
                        .map(|(&c, &x)| x * v[c as usize])
                        .sum()
                })
                .collect()
        };
        let nc = ac.nrows();
        let probe: Vec<f64> = (0..nc).map(|i| (i as f64 * 0.7).sin() + 2.0).collect();
        let direct = matvec(&ac, &probe);
        // composed: Pv (fine), A(Pv), Pᵀ(...)
        let pv = matvec(&p, &probe);
        let apv = matvec(&a, &pv);
        let pt = ops::transpose(&p);
        let composed = matvec(&pt, &apv);
        for (d, c) in direct.iter().zip(&composed) {
            assert!((d - c).abs() < 1e-9, "{d} vs {c}");
        }
    }
}
