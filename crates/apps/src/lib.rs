//! Application workloads built on the SpGEMM kernels — the use cases
//! that motivate the paper (§1) and shape its evaluation:
//!
//! * [`bfs`] — multi-source breadth-first search as square ×
//!   tall-skinny boolean SpGEMM (§5.5);
//! * [`triangles`] — triangle counting via `L · U` with degree
//!   reordering and a masked reduction (§5.6, after Azad et al.);
//! * [`mcl`] — one Markov-clustering iteration (expansion = `A²`,
//!   inflation, pruning), after HipMCL;
//! * [`amg`] — an aggregation-based Algebraic Multigrid Galerkin
//!   coarsening `Pᵀ A P`, the classic numeric SpGEMM consumer.
//!
//! Each module has a sequential reference implementation used by its
//! tests, so the SpGEMM formulation is verified against first
//! principles, not against itself.

#![warn(missing_docs)]

pub mod amg;
pub mod bc;
pub mod bfs;
pub mod mcl;
pub mod triangles;
