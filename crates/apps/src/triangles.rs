//! Triangle counting via `L · U` SpGEMM (§5.6, after Azad, Buluç &
//! Gilbert, IPDPSW 2015).
//!
//! Pipeline exactly as the paper describes: make the graph simple and
//! symmetric; reorder rows/columns by ascending degree ("For optimal
//! performance in triangle counting, we reorder rows with increasing
//! number of nonzeros"); split `A = L + U` into strict triangles;
//! compute the wedge matrix `B = L · U`; count `Σ_{(i,j) ∈ A} B[i,j]`
//! and divide by 2 (each triangle is found from two of its vertices
//! under this orientation).

use spgemm::expr::{ExprGraph, ExprPlan};
use spgemm::{Algorithm, OutputOrder};
use spgemm_par::Pool;
use spgemm_sparse::{ops, Csr, PlusTimes, SparseError};

/// A triangle-counting pipeline with its preprocessing and masked
/// wedge product precompiled as one expression plan
/// (`masked_multiply(L, U, A)` — see [`spgemm::expr`]), for workloads
/// that count repeatedly over a fixed topology (monitoring a stream
/// of same-structure snapshots, re-counting after weight updates,
/// benchmarking): construction does the symmetrize / degree-reorder /
/// `L + U` split and plans the product once; every
/// [`TriangleCounter::count`] after the first is a numeric-only
/// pipeline execution into reused storage — the wedge matrix refills
/// a cached buffer and the mask application is a cached-intersection
/// value pass.
pub struct TriangleCounter {
    reordered: Csr<f64>,
    l: Csr<f64>,
    u: Csr<f64>,
    plan: ExprPlan,
    /// Reused masked wedge matrix `(L · U) ∘ A`.
    wedges_on_edges: Csr<f64>,
}

impl TriangleCounter {
    /// Preprocess `graph` and plan the masked wedge product with
    /// `algo`.
    pub fn new(graph: &Csr<f64>, algo: Algorithm, pool: &Pool) -> Result<Self, SparseError> {
        let simple = ops::symmetrize_simple(&graph.map(|_| 1.0))?;
        // weights irrelevant; count wedges
        let simple = simple.map(|_| 1.0f64);
        // degree reordering: ascending row size
        let perm = ops::degree_ascending_permutation(&simple);
        let reordered = ops::permute_symmetric(&simple, &perm)?;
        let (l, u) = ops::split_lu(&reordered)?;
        let mut g = ExprGraph::new();
        let il = g.input();
        let iu = g.input();
        let imask = g.input();
        let root = g.masked_multiply(il, iu, imask);
        let plan = ExprPlan::new_in(&g, root, &[&l, &u, &reordered], &[], algo, pool)?;
        Ok(TriangleCounter {
            reordered,
            l,
            u,
            plan,
            wedges_on_edges: Csr::zero(0, 0),
        })
    }

    /// Count triangles (numeric-only after the first call).
    pub fn count(&mut self, pool: &Pool) -> Result<u64, SparseError> {
        self.plan.execute_into_in(
            &[&self.l, &self.u, &self.reordered],
            &[],
            &mut self.wedges_on_edges,
            pool,
        )?;
        // The mask's values are all 1.0, so summing the masked wedge
        // entries equals the masked_sum of the full wedge matrix.
        // Under the L·U orientation every triangle is counted exactly
        // twice (once per wedge endpoint pair present in A).
        let total: f64 = self.wedges_on_edges.vals().iter().sum();
        Ok((total / 2.0).round() as u64)
    }

    /// Workspace reuse counters of the planned wedge product.
    pub fn workspace_stats(&self) -> spgemm_par::WorkspaceStats {
        self.plan.workspace_stats()
    }

    /// The compiled expression plan behind the masked product.
    pub fn expr_plan(&self) -> &ExprPlan {
        &self.plan
    }
}

/// Count triangles in an undirected simple graph.
///
/// The input may be any square pattern; it is symmetrized and its
/// diagonal dropped first, so multi-edges/direction/self-loops do not
/// affect the count. `algo` selects the SpGEMM kernel for the `L · U`
/// step (the recipe: Heap for low compression ratios, Hash otherwise —
/// Table 4a's `LxU` row). This is [`TriangleCounter`] used once; hold
/// the counter instead when counting repeatedly.
pub fn count_triangles(graph: &Csr<f64>, algo: Algorithm, pool: &Pool) -> Result<u64, SparseError> {
    TriangleCounter::new(graph, algo, pool)?.count(pool)
}

/// Triangle counting through **masked** SpGEMM: wedges are only ever
/// accumulated at positions where the graph has an edge, so the wedge
/// matrix `L · U` is never materialized (working set `O(nnz(A))`
/// instead of `O(flop)`). Same preprocessing and result as
/// [`count_triangles`].
pub fn count_triangles_masked(graph: &Csr<f64>, pool: &Pool) -> Result<u64, SparseError> {
    let simple = ops::symmetrize_simple(&graph.map(|_| 1.0))?;
    let simple = simple.map(|_| 1.0f64);
    let perm = ops::degree_ascending_permutation(&simple);
    let reordered = ops::permute_symmetric(&simple, &perm)?;
    let (l, u) = ops::split_lu(&reordered)?;
    let wedges_on_edges = spgemm::multiply_masked::<PlusTimes<f64>, f64>(
        &l,
        &u,
        &reordered,
        OutputOrder::Unsorted,
        pool,
    )?;
    let total: f64 = wedges_on_edges.vals().iter().sum();
    Ok((total / 2.0).round() as u64)
}

/// Brute-force reference: enumerate vertex triples on the symmetrized
/// simple graph (tests and tiny graphs only — O(n³)).
pub fn count_triangles_naive(graph: &Csr<f64>) -> Result<u64, SparseError> {
    let simple = ops::symmetrize_simple(&graph.map(|_| 1.0))?;
    let n = simple.nrows();
    let has = |i: usize, j: usize| simple.get(i, j as u32).is_some();
    let mut count = 0u64;
    for i in 0..n {
        for j in (i + 1)..n {
            if !has(i, j) {
                continue;
            }
            for k in (j + 1)..n {
                if has(i, k) && has(j, k) {
                    count += 1;
                }
            }
        }
    }
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn csr(n: usize, edges: &[(usize, usize)]) -> Csr<f64> {
        let trips: Vec<(usize, u32, f64)> =
            edges.iter().map(|&(u, v)| (u, v as u32, 1.0)).collect();
        Csr::from_triplets(n, n, &trips).unwrap()
    }

    #[test]
    fn single_triangle() {
        let g = csr(3, &[(0, 1), (1, 2), (0, 2)]);
        let pool = Pool::new(2);
        assert_eq!(count_triangles(&g, Algorithm::Hash, &pool).unwrap(), 1);
        assert_eq!(count_triangles_naive(&g).unwrap(), 1);
    }

    #[test]
    fn k4_has_four_triangles() {
        let g = csr(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        let pool = Pool::new(2);
        for algo in [Algorithm::Hash, Algorithm::Heap, Algorithm::HashVec] {
            assert_eq!(count_triangles(&g, algo, &pool).unwrap(), 4, "{algo}");
        }
    }

    #[test]
    fn triangle_free_graph() {
        // a 4-cycle has no triangles
        let g = csr(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let pool = Pool::new(1);
        assert_eq!(count_triangles(&g, Algorithm::Hash, &pool).unwrap(), 0);
    }

    #[test]
    fn directed_input_and_self_loops_normalized() {
        // same triangle given as one-directional edges plus junk
        let g = csr(3, &[(1, 0), (2, 1), (0, 2), (0, 0), (1, 1)]);
        let pool = Pool::new(1);
        assert_eq!(count_triangles(&g, Algorithm::Hash, &pool).unwrap(), 1);
    }

    #[test]
    fn repeated_counts_reuse_the_plan() {
        let pool = Pool::new(2);
        let g = spgemm_gen::suite::uniform_matrix(60, 500, &mut spgemm_gen::rng(7));
        let expect = count_triangles(&g, Algorithm::Hash, &pool).unwrap();
        let mut counter = TriangleCounter::new(&g, Algorithm::Hash, &pool).unwrap();
        for round in 0..5 {
            assert_eq!(counter.count(&pool).unwrap(), expect, "round {round}");
        }
        let st = counter.workspace_stats();
        assert!(st.reused >= 4, "repeated counts must hit the pool: {st:?}");
    }

    #[test]
    fn matches_naive_on_random_graphs() {
        let pool = Pool::new(2);
        for seed in 0..4u64 {
            let a = spgemm_gen::suite::uniform_matrix(40, 300, &mut spgemm_gen::rng(seed));
            let expect = count_triangles_naive(&a).unwrap();
            for algo in [Algorithm::Hash, Algorithm::Heap] {
                let got = count_triangles(&a, algo, &pool).unwrap();
                assert_eq!(got, expect, "seed {seed} {algo}");
            }
        }
    }

    #[test]
    fn masked_path_agrees_with_materialized_path() {
        let pool = Pool::new(2);
        for seed in 0..3u64 {
            let a = spgemm_gen::suite::uniform_matrix(50, 400, &mut spgemm_gen::rng(seed));
            let full = count_triangles(&a, Algorithm::Hash, &pool).unwrap();
            let masked = count_triangles_masked(&a, &pool).unwrap();
            assert_eq!(full, masked, "seed {seed}");
        }
        let g = spgemm_gen::rmat::generate_kind(
            spgemm_gen::RmatKind::G500,
            7,
            8,
            &mut spgemm_gen::rng(9),
        );
        assert_eq!(
            count_triangles(&g, Algorithm::Hash, &pool).unwrap(),
            count_triangles_masked(&g, &pool).unwrap()
        );
    }

    #[test]
    fn rmat_graph_consistency_across_algorithms() {
        let a = spgemm_gen::rmat::generate_kind(
            spgemm_gen::RmatKind::G500,
            7,
            8,
            &mut spgemm_gen::rng(3),
        );
        let pool = Pool::new(2);
        let baseline = count_triangles(&a, Algorithm::Hash, &pool).unwrap();
        assert!(
            baseline > 0,
            "a dense-ish G500 graph should contain triangles"
        );
        for algo in [
            Algorithm::Heap,
            Algorithm::HashVec,
            Algorithm::Spa,
            Algorithm::Merge,
        ] {
            assert_eq!(
                count_triangles(&a, algo, &pool).unwrap(),
                baseline,
                "{algo}"
            );
        }
    }
}
