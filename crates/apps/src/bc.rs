//! Batched betweenness centrality — the workload §5.5 names as the
//! motivation for square × tall-skinny SpGEMM ("Many graph processing
//! algorithms perform multiple breadth-first searches in parallel, an
//! example being Betweenness Centrality on unweighted graphs").
//!
//! This is Brandes' algorithm in matrix form (after Buluç & Gilbert's
//! Combinatorial BLAS formulation): for a batch of sources, the
//! forward sweep advances a tall-skinny *path-count* matrix through
//! SpGEMM over `(+, ×)`, masking to the new frontier each level; the
//! backward sweep accumulates dependencies level by level with the
//! transposed operator.

use spgemm::{multiply_in, Algorithm, OutputOrder};
use spgemm_par::Pool;
use spgemm_sparse::{ops, ColIdx, Coo, Csr, PlusTimes, SparseError};

/// Betweenness-centrality scores for all vertices, accumulated over a
/// batch of sources (exact when the batch is all vertices).
pub fn betweenness_batch(
    graph: &Csr<f64>,
    sources: &[usize],
    algo: Algorithm,
    pool: &Pool,
) -> Result<Vec<f64>, SparseError> {
    if graph.nrows() != graph.ncols() {
        return Err(SparseError::ShapeMismatch {
            left: graph.shape(),
            right: graph.shape(),
            op: "betweenness_batch (square graph required)",
        });
    }
    let n = graph.nrows();
    let s = sources.len();
    let at = ops::transpose(&graph.map(|_| 1.0f64));

    // Forward sweep: frontier path counts per level.
    // paths[v][q] = # shortest paths from sources[q] to v
    let mut paths = vec![vec![0.0f64; s]; n];
    let mut depth_of = vec![vec![u32::MAX; s]; n];
    let mut frontier = {
        let mut coo = Coo::with_capacity(n, s, s)?;
        for (q, &v) in sources.iter().enumerate() {
            if v >= n {
                return Err(SparseError::ColumnOutOfBounds {
                    row: v,
                    col: v as u32,
                    ncols: n,
                });
            }
            coo.push(v, q as ColIdx, 1.0)?;
            paths[v][q] = 1.0;
            depth_of[v][q] = 0;
        }
        coo.into_csr_sum()
    };
    // frontier stacks per level, for the backward sweep
    let mut levels: Vec<Csr<f64>> = vec![frontier.clone()];
    let mut depth = 0u32;
    while frontier.nnz() > 0 {
        depth += 1;
        let next = multiply_in::<PlusTimes<f64>>(&at, &frontier, algo, OutputOrder::Sorted, pool)?;
        // keep only (v, q) pairs not seen at an earlier level
        let mut coo = Coo::with_capacity(n, s, next.nnz())?;
        for v in 0..n {
            for (&q, &cnt) in next.row_cols(v).iter().zip(next.row_vals(v)) {
                let qi = q as usize;
                if depth_of[v][qi] == u32::MAX {
                    depth_of[v][qi] = depth;
                    paths[v][qi] = cnt;
                    coo.push(v, q, cnt)?;
                }
            }
        }
        frontier = coo.into_csr_sum();
        if frontier.nnz() > 0 {
            levels.push(frontier.clone());
        }
    }

    // Backward sweep: delta[v][q] accumulates dependency; walk levels
    // deepest-first: delta[u] += (paths[u]/paths[v]) * (1 + delta[v])
    // for each edge u -> v with depth(v) = depth(u) + 1.
    let a = graph.map(|_| 1.0f64);
    let mut delta = vec![vec![0.0f64; s]; n];
    for lvl in (1..levels.len()).rev() {
        // For every v in level lvl: distribute to predecessors via Aᵀ?
        // Edge u->v contributes when depth(u) = lvl - 1. Iterate rows
        // of A (u) and look at successors v.
        for u in 0..n {
            for &vc in a.row_cols(u) {
                let v = vc as usize;
                for q in 0..s {
                    if depth_of[u][q] == (lvl - 1) as u32 && depth_of[v][q] == lvl as u32 {
                        let pv = paths[v][q];
                        if pv > 0.0 {
                            delta[u][q] += paths[u][q] / pv * (1.0 + delta[v][q]);
                        }
                    }
                }
            }
        }
    }

    // BC(v) = Σ_q delta[v][q], excluding the source itself
    let mut bc = vec![0.0f64; n];
    for v in 0..n {
        for (q, &src) in sources.iter().enumerate() {
            if v != src {
                bc[v] += delta[v][q];
            }
        }
    }
    Ok(bc)
}

/// Sequential Brandes reference (unweighted), for tests.
pub fn brandes_reference(graph: &Csr<f64>, sources: &[usize]) -> Vec<f64> {
    let n = graph.nrows();
    let mut bc = vec![0.0f64; n];
    for &src in sources {
        let mut stack = Vec::new();
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut sigma = vec![0.0f64; n];
        let mut dist = vec![i64::MAX; n];
        sigma[src] = 1.0;
        dist[src] = 0;
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(src);
        while let Some(u) = queue.pop_front() {
            stack.push(u);
            for &vc in graph.row_cols(u) {
                let v = vc as usize;
                if dist[v] == i64::MAX {
                    dist[v] = dist[u] + 1;
                    queue.push_back(v);
                }
                if dist[v] == dist[u] + 1 {
                    sigma[v] += sigma[u];
                    preds[v].push(u);
                }
            }
        }
        let mut delta = vec![0.0f64; n];
        while let Some(v) = stack.pop() {
            for &u in &preds[v] {
                delta[u] += sigma[u] / sigma[v] * (1.0 + delta[v]);
            }
            if v != src {
                bc[v] += delta[v];
            }
        }
    }
    bc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn csr(n: usize, edges: &[(usize, usize)]) -> Csr<f64> {
        // directed edges as given
        let trips: Vec<(usize, u32, f64)> =
            edges.iter().map(|&(u, v)| (u, v as u32, 1.0)).collect();
        Csr::from_triplets(n, n, &trips).unwrap()
    }

    fn undirected(n: usize, edges: &[(usize, usize)]) -> Csr<f64> {
        let mut all = Vec::new();
        for &(u, v) in edges {
            all.push((u, v));
            all.push((v, u));
        }
        csr(n, &all)
    }

    fn assert_close(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < 1e-9, "vertex {i}: {x} vs {y}");
        }
    }

    #[test]
    fn path_graph_center_is_most_between() {
        // 0 - 1 - 2 - 3 - 4: all-sources BC peaks at vertex 2
        let g = undirected(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let pool = Pool::new(2);
        let all: Vec<usize> = (0..5).collect();
        let bc = betweenness_batch(&g, &all, Algorithm::Hash, &pool).unwrap();
        let expect = brandes_reference(&g, &all);
        assert_close(&bc, &expect);
        assert!(bc[2] > bc[1] && bc[1] > bc[0]);
    }

    #[test]
    fn star_graph_hub_carries_everything() {
        let g = undirected(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let pool = Pool::new(1);
        let all: Vec<usize> = (0..5).collect();
        let bc = betweenness_batch(&g, &all, Algorithm::Hash, &pool).unwrap();
        let expect = brandes_reference(&g, &all);
        assert_close(&bc, &expect);
        assert!(bc[0] > 0.0);
        for (v, &score) in bc.iter().enumerate().skip(1) {
            assert_eq!(score, 0.0, "leaf {v} lies on no shortest paths");
        }
    }

    #[test]
    fn matches_brandes_on_random_graph() {
        let a = spgemm_gen::suite::uniform_matrix(30, 120, &mut spgemm_gen::rng(8));
        let sym = ops::symmetrize_simple(&a).unwrap().map(|_| 1.0);
        let pool = Pool::new(2);
        let sources: Vec<usize> = (0..30).collect();
        for algo in [Algorithm::Hash, Algorithm::Heap] {
            let bc = betweenness_batch(&sym, &sources, algo, &pool).unwrap();
            let expect = brandes_reference(&sym, &sources);
            assert_close(&bc, &expect);
        }
    }

    #[test]
    fn partial_batch_is_partial_sum() {
        let g = undirected(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (1, 4)]);
        let pool = Pool::new(2);
        let b1 = betweenness_batch(&g, &[0, 1], Algorithm::Hash, &pool).unwrap();
        let b2 = betweenness_batch(&g, &[2, 3, 4, 5], Algorithm::Hash, &pool).unwrap();
        let all = betweenness_batch(&g, &[0, 1, 2, 3, 4, 5], Algorithm::Hash, &pool).unwrap();
        for v in 0..6 {
            assert!((b1[v] + b2[v] - all[v]).abs() < 1e-9, "vertex {v}");
        }
    }

    #[test]
    fn bad_source_rejected() {
        let g = undirected(3, &[(0, 1)]);
        let pool = Pool::new(1);
        assert!(betweenness_batch(&g, &[7], Algorithm::Hash, &pool).is_err());
    }
}
