//! Property tests for the application layer: BFS against the queue
//! reference on arbitrary digraphs, triangle counts against brute
//! force, and structural invariants of the AMG hierarchy.

use proptest::prelude::*;
use spgemm::Algorithm;
use spgemm_apps::{amg, bfs, triangles};
use spgemm_par::Pool;
use spgemm_sparse::{ColIdx, Coo, Csr};

fn arb_digraph(max_n: usize, max_m: usize) -> impl Strategy<Value = Csr<bool>> {
    (2..=max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n, 0..n), 0..=max_m).prop_map(move |edges| {
            let mut coo = Coo::new(n, n).unwrap();
            for (u, v) in edges {
                coo.push(u, v as ColIdx, true).unwrap();
            }
            coo.into_csr_sum()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn bfs_levels_match_queue_reference(g in arb_digraph(30, 150), src_sel in 0usize..30) {
        let src = src_sel % g.nrows();
        let pool = Pool::new(2);
        let l = bfs::multi_source_bfs(&g, &[src], Algorithm::Hash, &pool).unwrap();
        let seq = bfs::sequential_bfs(&g, src);
        for (v, &lvl) in seq.iter().enumerate() {
            prop_assert_eq!(l.level(v, 0), lvl, "vertex {}", v);
        }
    }

    #[test]
    fn bfs_levels_are_lipschitz_along_edges(g in arb_digraph(25, 120)) {
        // for every edge u -> v: level(v) <= level(u) + 1 when u reached
        let pool = Pool::new(2);
        let l = bfs::multi_source_bfs(&g, &[0], Algorithm::Hash, &pool).unwrap();
        for u in 0..g.nrows() {
            let lu = l.level(u, 0);
            if lu == bfs::UNREACHED {
                continue;
            }
            for &v in g.row_cols(u) {
                let lv = l.level(v as usize, 0);
                prop_assert!(lv != bfs::UNREACHED && lv <= lu + 1,
                    "edge {}->{}: {} then {}", u, v, lu, lv);
            }
        }
    }

    #[test]
    fn triangle_count_matches_bruteforce(g in arb_digraph(16, 60)) {
        let gf = g.map(|_| 1.0f64);
        let pool = Pool::new(2);
        let fast = triangles::count_triangles(&gf, Algorithm::Hash, &pool).unwrap();
        let masked = triangles::count_triangles_masked(&gf, &pool).unwrap();
        let naive = triangles::count_triangles_naive(&gf).unwrap();
        prop_assert_eq!(fast, naive);
        prop_assert_eq!(masked, naive);
    }

    #[test]
    fn amg_levels_conserve_row_sums(k in 3usize..10) {
        // Galerkin with piecewise-constant P conserves total row sum
        let a = spgemm_gen::poisson::poisson2d(k);
        let total: f64 = a.vals().iter().sum();
        let pool = Pool::new(2);
        let levels = amg::setup_hierarchy(a, 4, 6, Algorithm::Hash, &pool).unwrap();
        for (d, op) in levels.iter().enumerate() {
            let s: f64 = op.vals().iter().sum();
            prop_assert!((s - total).abs() < 1e-6, "level {}: {} vs {}", d, s, total);
        }
    }
}
