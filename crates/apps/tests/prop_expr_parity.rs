//! Acceptance parity: the fused expression-plan pipelines behind the
//! app layers must produce **byte-identical** results to the unfused
//! hand-composed paths (one-shot `multiply_in` + `ops` per stage) —
//! proptested for the MCL step, the Galerkin `Pᵀ(AP)` triple product,
//! and the masked triangle wedge product.

use proptest::prelude::*;
use spgemm::{multiply_in, Algorithm, OutputOrder};
use spgemm_apps::{amg, mcl, triangles};
use spgemm_par::Pool;
use spgemm_sparse::{ops, ColIdx, Coo, Csr, PlusTimes};

type P = PlusTimes<f64>;

fn arb_graph(max_n: usize, max_m: usize) -> impl Strategy<Value = Csr<f64>> {
    (3..=max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n, 0..n, 1i64..=4), 1..=max_m).prop_map(move |edges| {
            let mut coo = Coo::new(n, n).unwrap();
            for (u, v, w) in edges {
                coo.push(u, v as ColIdx, w as f64).unwrap();
            }
            coo.into_csr_sum()
        })
    })
}

fn bits_eq(a: &Csr<f64>, b: &Csr<f64>) -> bool {
    a.shape() == b.shape()
        && a.rpts() == b.rpts()
        && a.cols() == b.cols()
        && a.vals()
            .iter()
            .zip(b.vals())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

/// The pre-expression MCL round: one-shot square, materialized
/// inflation, prune, renormalize.
fn mcl_step_unfused(a: &Csr<f64>, params: &mcl::MclParams, pool: &Pool) -> Csr<f64> {
    let expanded = multiply_in::<P>(a, a, params.algo, OutputOrder::Sorted, pool).unwrap();
    let inflated = mcl::inflate(&expanded, params.inflation);
    let pruned = inflated.filter(|_, _, v| v >= params.prune_threshold);
    mcl::normalize_columns(&pruned)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn mcl_step_matches_unfused_path(g in arb_graph(20, 80), nt in 1usize..=3) {
        let pool = Pool::new(nt);
        let params = mcl::MclParams::default();
        // a plausible MCL iterate: symmetric + loops + stochastic
        let sym = ops::symmetrize_simple(&g).unwrap();
        let with_loops = ops::add(&sym, &Csr::<f64>::identity(sym.nrows())).unwrap();
        let mut m = mcl::normalize_columns(&with_loops);
        let mut pipe = mcl::MclPipeline::new(&params);
        for round in 0..3 {
            let expect = mcl_step_unfused(&m, &params, &pool);
            let (got, _) = mcl::mcl_step(&m, &params, &mut pipe, &pool).unwrap();
            prop_assert!(bits_eq(&got, &expect), "round {}", round);
            m = got;
        }
    }

    #[test]
    fn galerkin_plan_matches_unfused_triple_product(g in arb_graph(24, 100), step_scale in 1u32..6) {
        let pool = Pool::new(2);
        // symmetric positive-ish operator and a real aggregation
        let a = ops::add(
            &ops::symmetrize_simple(&g).unwrap(),
            &Csr::<f64>::identity(g.nrows()),
        )
        .unwrap();
        let agg = amg::greedy_aggregate(&a);
        let p = amg::prolongation_from_aggregates(&agg).unwrap();
        let mut plan = amg::GalerkinPlan::new(&a, &p, Algorithm::Hash, &pool).unwrap();
        let expect = amg::galerkin_product(&a, &p, Algorithm::Hash, &pool).unwrap();
        prop_assert!(bits_eq(plan.coarse(), &expect), "initial coarse operator");
        // value drift under the fixed stencil: numeric-only recoarsen
        let scaled = a.map(|v| v * (1.0 + step_scale as f64 * 0.125));
        let expect2 = amg::galerkin_product(&scaled, &p, Algorithm::Hash, &pool).unwrap();
        let got2 = plan.recoarsen(&scaled, &pool).unwrap();
        prop_assert!(bits_eq(got2, &expect2), "recoarsened operator");
    }

    #[test]
    fn triangle_count_matches_unfused_masked_product(g in arb_graph(18, 70)) {
        let pool = Pool::new(2);
        // the unfused pipeline, stage by stage, exactly as the counter
        // preprocesses
        let simple = ops::symmetrize_simple(&g.map(|_| 1.0)).unwrap();
        let simple = simple.map(|_| 1.0f64);
        let perm = ops::degree_ascending_permutation(&simple);
        let reordered = ops::permute_symmetric(&simple, &perm).unwrap();
        let (l, u) = ops::split_lu(&reordered).unwrap();
        let wedges = multiply_in::<P>(&l, &u, Algorithm::Hash, OutputOrder::Sorted, &pool).unwrap();
        let masked = ops::hadamard(&wedges, &reordered).unwrap();
        let unfused_total: f64 = masked.vals().iter().sum();
        let expect = (unfused_total / 2.0).round() as u64;

        let mut counter = triangles::TriangleCounter::new(&g, Algorithm::Hash, &pool).unwrap();
        for round in 0..3 {
            prop_assert_eq!(counter.count(&pool).unwrap(), expect, "round {}", round);
        }
        // and against brute force, for good measure
        prop_assert_eq!(expect, triangles::count_triangles_naive(&g).unwrap());
    }
}
