//! Property-based tests for the sparse substrate: CSR invariants,
//! transpose involution, permutation round-trips, and flop counting
//! against a naive model.

use proptest::prelude::*;
use spgemm_sparse::{approx_eq_f64, ops, stats, ColIdx, Coo, Csr};

/// Strategy: a random sparse matrix with shape up to `max_dim` and a
/// bounded number of (possibly duplicate) triplets.
fn arb_csr(max_dim: usize, max_nnz: usize) -> impl Strategy<Value = Csr<f64>> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(move |(nr, nc)| {
        proptest::collection::vec((0..nr, 0..nc, -4.0f64..4.0), 0..=max_nnz).prop_map(
            move |trips| {
                let mut coo = Coo::new(nr, nc).unwrap();
                for (r, c, v) in trips {
                    coo.push(r, c as ColIdx, v).unwrap();
                }
                coo.into_csr_sum()
            },
        )
    })
}

/// Strategy: a random square matrix.
fn arb_square(max_dim: usize, max_nnz: usize) -> impl Strategy<Value = Csr<f64>> {
    (2..=max_dim).prop_flat_map(move |n| {
        proptest::collection::vec((0..n, 0..n, -4.0f64..4.0), 0..=max_nnz).prop_map(move |trips| {
            let mut coo = Coo::new(n, n).unwrap();
            for (r, c, v) in trips {
                coo.push(r, c as ColIdx, v).unwrap();
            }
            coo.into_csr_sum()
        })
    })
}

fn arb_perm(n: usize) -> impl Strategy<Value = Vec<usize>> {
    Just(()).prop_perturb(move |_, mut rng| {
        let mut p: Vec<usize> = (0..n).collect();
        // Fisher-Yates with proptest's rng for shrink-stability
        for i in (1..n).rev() {
            let j = (rng.random::<u64>() as usize) % (i + 1);
            p.swap(i, j);
        }
        p
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn coo_to_csr_always_valid(m in arb_csr(40, 200)) {
        prop_assert!(m.validate().is_ok());
        prop_assert!(m.is_sorted());
    }

    #[test]
    fn transpose_is_involution(m in arb_csr(40, 200)) {
        let t = ops::transpose(&m);
        prop_assert!(t.validate().is_ok());
        prop_assert_eq!(t.shape(), (m.ncols(), m.nrows()));
        prop_assert_eq!(t.nnz(), m.nnz());
        let tt = ops::transpose(&t);
        prop_assert!(approx_eq_f64(&m, &tt, 0.0));
    }

    #[test]
    fn transpose_moves_every_entry(m in arb_csr(20, 80)) {
        let t = ops::transpose(&m);
        for i in 0..m.nrows() {
            for (&c, &v) in m.row_cols(i).iter().zip(m.row_vals(i)) {
                prop_assert_eq!(t.get(c as usize, i as ColIdx), Some(&v));
            }
        }
    }

    #[test]
    fn sort_rows_preserves_content(m in arb_csr(40, 200)) {
        // permute columns to unsort, then sort back
        let n = m.ncols();
        let perm: Vec<ColIdx> = (0..n as ColIdx).rev().collect();
        let unsorted = ops::permute_cols(&m, &perm).unwrap();
        let mut sorted = unsorted.clone();
        sorted.sort_rows();
        prop_assert!(sorted.is_sorted());
        prop_assert!(sorted.validate().is_ok());
        prop_assert!(approx_eq_f64(&unsorted, &sorted, 0.0));
    }

    #[test]
    fn symmetric_permutation_preserves_spectrum_proxy(
        (m, seed) in arb_square(24, 120).prop_flat_map(|m| {
            let n = m.nrows();
            (Just(m), arb_perm(n))
        })
    ) {
        let p = ops::permute_symmetric(&m, &seed).unwrap();
        prop_assert_eq!(p.nnz(), m.nnz());
        // trace is invariant under symmetric permutation
        let trace = |x: &Csr<f64>| -> f64 {
            (0..x.nrows()).filter_map(|i| x.get(i, i as ColIdx)).sum()
        };
        prop_assert!((trace(&m) - trace(&p)).abs() < 1e-9);
    }

    #[test]
    fn split_lu_partitions_offdiagonal(m in arb_square(24, 120)) {
        let (l, u) = ops::split_lu(&m).unwrap();
        let diag = (0..m.nrows()).filter(|&i| m.get(i, i as ColIdx).is_some()).count();
        prop_assert_eq!(l.nnz() + u.nnz() + diag, m.nnz());
        prop_assert!(l.validate().is_ok());
        prop_assert!(u.validate().is_ok());
    }

    #[test]
    fn add_commutes(a in arb_square(16, 60), b in arb_square(16, 60)) {
        // force equal shapes by truncating to the smaller square
        if a.shape() == b.shape() {
            let ab = ops::add(&a, &b).unwrap();
            let ba = ops::add(&b, &a).unwrap();
            prop_assert!(approx_eq_f64(&ab, &ba, 1e-12));
        }
    }

    #[test]
    fn flop_matches_naive(m in arb_square(24, 120)) {
        let rf = stats::row_flops(&m, &m);
        let mut naive = vec![0u64; m.nrows()];
        for (i, n) in naive.iter_mut().enumerate() {
            for &k in m.row_cols(i) {
                *n += m.row_nnz(k as usize) as u64;
            }
        }
        prop_assert_eq!(rf, naive);
    }

    #[test]
    fn matrix_market_round_trips(m in arb_csr(24, 120)) {
        let mut buf = Vec::new();
        spgemm_sparse::io::write_matrix_market_to(&mut buf, &m).unwrap();
        let back = spgemm_sparse::io::read_matrix_market_from(buf.as_slice()).unwrap();
        prop_assert!(approx_eq_f64(&m, &back, 0.0));
    }

    #[test]
    fn masked_sum_le_total(m in arb_square(20, 100)) {
        let ones = m.map(|_| 1.0f64);
        let s = ops::masked_sum(&ones, &m).unwrap();
        prop_assert_eq!(s, m.nnz() as f64, "self-mask counts every entry");
    }
}
