//! Property tests for the element-wise/structural ops the expression
//! layer composes: `add`, `hadamard`, `scale_rows`, `scale_cols` and
//! `masked_sum` against a dense oracle (including shape-mismatch and
//! factor-length error paths), and the parallel transpose against the
//! serial counting sort, byte for byte, on sorted and unsorted inputs.

use proptest::prelude::*;
use spgemm_par::Pool;
use spgemm_sparse::{ops, ColIdx, Coo, Csr, SparseError};

/// A random sparse matrix with shape up to `max_dim`; values are small
/// integers cast to `f64`, so every sum/product in the oracles is
/// exactly representable and comparisons can be `==`.
fn arb_csr(max_dim: usize, max_nnz: usize) -> impl Strategy<Value = Csr<f64>> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(move |(nr, nc)| {
        proptest::collection::vec((0..nr, 0..nc, -8i64..=8), 0..=max_nnz).prop_map(move |trips| {
            let mut coo = Coo::new(nr, nc).unwrap();
            for (r, c, v) in trips {
                coo.push(r, c as ColIdx, v as f64).unwrap();
            }
            coo.into_csr_sum()
        })
    })
}

/// A pair of equal-shape random matrices.
fn arb_pair(max_dim: usize, max_nnz: usize) -> impl Strategy<Value = (Csr<f64>, Csr<f64>)> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(move |(nr, nc)| {
        let one = move || {
            proptest::collection::vec((0..nr, 0..nc, -8i64..=8), 0..=max_nnz).prop_map(
                move |trips| {
                    let mut coo = Coo::new(nr, nc).unwrap();
                    for (r, c, v) in trips {
                        coo.push(r, c as ColIdx, v as f64).unwrap();
                    }
                    coo.into_csr_sum()
                },
            )
        };
        (one(), one())
    })
}

fn is_shape_mismatch<T>(r: &Result<T, SparseError>) -> bool {
    matches!(r, Err(SparseError::ShapeMismatch { .. }))
}

fn is_unsorted<T>(r: &Result<T, SparseError>) -> bool {
    matches!(r, Err(SparseError::Unsorted { .. }))
}

/// Exact structural + value equality (rpts, cols and value bits).
fn bits_eq(a: &Csr<f64>, b: &Csr<f64>) -> bool {
    a.shape() == b.shape()
        && a.rpts() == b.rpts()
        && a.cols() == b.cols()
        && a.vals()
            .iter()
            .zip(b.vals())
            .all(|(x, y)| x.to_bits() == y.to_bits())
        && a.is_sorted() == b.is_sorted()
}

/// Unsort a matrix's rows by reversing each row's entries (keeps the
/// (row, col, val) content identical).
fn reversed_rows(a: &Csr<f64>) -> Csr<f64> {
    let mut rpts = vec![0usize];
    let mut cols = Vec::with_capacity(a.nnz());
    let mut vals = Vec::with_capacity(a.nnz());
    for i in 0..a.nrows() {
        cols.extend(a.row_cols(i).iter().rev());
        vals.extend(a.row_vals(i).iter().rev());
        rpts.push(cols.len());
    }
    Csr::from_parts(a.nrows(), a.ncols(), rpts, cols, vals).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn parallel_transpose_matches_serial_sorted(m in arb_csr(48, 400), nt in 2usize..=4) {
        let pool = Pool::new(nt);
        let par = ops::transpose_in(&m, &pool);
        let ser = ops::transpose_serial(&m);
        prop_assert!(bits_eq(&par, &ser));
        prop_assert!(par.validate().is_ok());
    }

    #[test]
    fn parallel_transpose_matches_serial_unsorted(m in arb_csr(32, 300), nt in 2usize..=4) {
        // Unsorted *input* rows: the transpose visits source rows in
        // order regardless, so both paths must still agree bit-wise.
        let u = reversed_rows(&m);
        let pool = Pool::new(nt);
        prop_assert!(bits_eq(&ops::transpose_in(&u, &pool), &ops::transpose_serial(&u)));
    }

    #[test]
    fn add_matches_dense_oracle((a, b) in arb_pair(24, 160)) {
        let s = ops::add(&a, &b).unwrap();
        prop_assert!(s.validate().is_ok());
        prop_assert!(s.is_sorted());
        let (da, db, ds) = (a.to_dense(), b.to_dense(), s.to_dense());
        for i in 0..a.nrows() {
            for j in 0..a.ncols() {
                prop_assert_eq!(ds[i][j], da[i][j] + db[i][j], "({}, {})", i, j);
            }
        }
        // structural union, not numeric support: a zero sum of two
        // explicit entries stays stored.
        let union: std::collections::BTreeSet<(usize, u32)> = (0..a.nrows())
            .flat_map(|i| {
                a.row_cols(i).iter().chain(b.row_cols(i)).map(move |&c| (i, c)).collect::<Vec<_>>()
            })
            .collect();
        prop_assert_eq!(s.nnz(), union.len());
    }

    #[test]
    fn hadamard_matches_dense_oracle((a, b) in arb_pair(24, 160)) {
        let h = ops::hadamard(&a, &b).unwrap();
        prop_assert!(h.validate().is_ok());
        let (da, db) = (a.to_dense(), b.to_dense());
        // every stored entry is the product at an intersection...
        for i in 0..h.nrows() {
            for (&c, &v) in h.row_cols(i).iter().zip(h.row_vals(i)) {
                prop_assert!(a.get(i, c).is_some() && b.get(i, c).is_some());
                prop_assert_eq!(v, da[i][c as usize] * db[i][c as usize]);
            }
        }
        // ...and every intersection is stored.
        let inter = (0..a.nrows())
            .map(|i| a.row_cols(i).iter().filter(|&&c| b.get(i, c).is_some()).count())
            .sum::<usize>();
        prop_assert_eq!(h.nnz(), inter);
    }

    #[test]
    fn scaling_matches_dense_oracle(a in arb_csr(24, 160), seed in 0u64..1000) {
        let rf: Vec<f64> = (0..a.nrows()).map(|i| ((seed + i as u64) % 7) as f64 - 3.0).collect();
        let cf: Vec<f64> = (0..a.ncols()).map(|j| ((seed + 3 * j as u64) % 5) as f64 - 2.0).collect();
        let r = ops::scale_rows(&a, &rf).unwrap();
        let c = ops::scale_cols(&a, &cf).unwrap();
        prop_assert_eq!(r.rpts(), a.rpts());
        prop_assert_eq!(c.cols(), a.cols());
        let da = a.to_dense();
        let (dr, dc) = (r.to_dense(), c.to_dense());
        for i in 0..a.nrows() {
            for j in 0..a.ncols() {
                prop_assert_eq!(dr[i][j], da[i][j] * rf[i]);
                prop_assert_eq!(dc[i][j], da[i][j] * cf[j]);
            }
        }
    }

    #[test]
    fn masked_sum_matches_dense_oracle((b, mask) in arb_pair(24, 160)) {
        let got = ops::masked_sum(&b, &mask).unwrap();
        let db = b.to_dense();
        let mut expect = 0.0f64;
        for (i, row) in db.iter().enumerate() {
            for &c in mask.row_cols(i) {
                if b.get(i, c).is_some() {
                    expect += row[c as usize];
                }
            }
        }
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn binary_ops_reject_shape_mismatch(a in arb_csr(12, 40), b in arb_csr(12, 40)) {
        prop_assume!(a.shape() != b.shape());
        prop_assert!(is_shape_mismatch(&ops::add(&a, &b)));
        prop_assert!(is_shape_mismatch(&ops::hadamard(&a, &b)));
        prop_assert!(is_shape_mismatch(&ops::masked_sum(&a, &b)));
    }

    #[test]
    fn scaling_rejects_bad_factor_lengths(a in arb_csr(12, 40), extra in 1usize..4) {
        let short_r = vec![1.0; a.nrows().saturating_sub(1)];
        let long_r = vec![1.0; a.nrows() + extra];
        let short_c = vec![1.0; a.ncols().saturating_sub(1)];
        let long_c = vec![1.0; a.ncols() + extra];
        prop_assert!(is_shape_mismatch(&ops::scale_rows(&a, &short_r)));
        prop_assert!(is_shape_mismatch(&ops::scale_rows(&a, &long_r)));
        prop_assert!(is_shape_mismatch(&ops::scale_cols(&a, &short_c)));
        prop_assert!(is_shape_mismatch(&ops::scale_cols(&a, &long_c)));
    }

    #[test]
    fn sorted_contract_enforced((a, b) in arb_pair(12, 60)) {
        prop_assume!(a.nnz() > 0 && a.max_row_nnz() > 1);
        let u = reversed_rows(&a);
        prop_assume!(!u.is_sorted());
        prop_assert!(is_unsorted(&ops::add(&u, &b)));
        prop_assert!(is_unsorted(&ops::hadamard(&u, &b)));
        prop_assert!(is_unsorted(&ops::masked_sum(&u, &b)));
        prop_assert!(is_unsorted(&ops::masked_sum(&b, &u)));
    }

    #[test]
    fn normalize_columns_is_column_stochastic(a in arb_csr(20, 120)) {
        let pos = a.map(|v| v.abs() + 1.0); // strictly positive entries
        let n = ops::normalize_columns(&pos);
        prop_assert_eq!(n.rpts(), pos.rpts());
        let mut colsum = vec![0.0f64; n.ncols()];
        for i in 0..n.nrows() {
            for (&c, &v) in n.row_cols(i).iter().zip(n.row_vals(i)) {
                colsum[c as usize] += v;
            }
        }
        for (c, s) in colsum.iter().enumerate() {
            let entries = (0..n.nrows()).filter(|&i| n.get(i, c as u32).is_some()).count();
            if entries > 0 {
                prop_assert!((s - 1.0).abs() < 1e-12, "column {} sums to {}", c, s);
            }
        }
    }
}
