//! Property tests: Matrix Market write ↔ read is lossless across the
//! supported format matrix — general/symmetric/pattern storage and
//! plain/scientific value notation. Rust's shortest-round-trip float
//! formatting makes `real` round trips bit-exact, so comparisons are
//! full `Csr` equality, not approximate.

use proptest::prelude::*;
use spgemm_sparse::io::{
    read_matrix_market_from, write_matrix_market_to_with, Field, Symmetry, WriteOptions,
};
use spgemm_sparse::Csr;

/// A value mixing magnitudes so scientific notation actually differs
/// from positional (1e-30 .. 1e18), plus exact small numbers.
fn value_strategy() -> impl Strategy<Value = f64> {
    (0u32..1000, -30i32..19).prop_map(|(mant, exp)| {
        let mant = mant as f64 + 1.0; // non-zero
        mant * 10f64.powi(exp)
    })
}

fn triplets_strategy() -> impl Strategy<Value = (usize, usize, Vec<(usize, u32, f64)>)> {
    (1usize..12, 1usize..12).prop_flat_map(|(nr, nc)| {
        let entries = prop::collection::vec((0..nr, 0..nc as u32, value_strategy()), 0..24);
        (Just(nr), Just(nc), entries)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn general_real_round_trips_bit_exact(
        (nr, nc, trips) in triplets_strategy(),
        scientific in prop::bool::ANY,
    ) {
        let m = Csr::from_triplets(nr, nc, &trips).unwrap();
        let mut buf = Vec::new();
        write_matrix_market_to_with(&mut buf, &m, WriteOptions {
            scientific,
            ..WriteOptions::default()
        }).unwrap();
        let back = read_matrix_market_from(buf.as_slice()).unwrap();
        prop_assert_eq!(back, m);
    }

    #[test]
    fn symmetric_round_trips_through_lower_triangle(
        (n, _, trips) in triplets_strategy(),
        scientific in prop::bool::ANY,
    ) {
        // Symmetrize by construction: keep generated entries at (max, min)
        // and mirror them.
        let mut sym: Vec<(usize, u32, f64)> = Vec::new();
        for &(r, c, v) in &trips {
            let (lo, hi) = (r.min(c as usize).min(n - 1), r.max(c as usize).min(n - 1));
            sym.push((hi, lo as u32, v));
            sym.push((lo, hi as u32, v));
        }
        let m = Csr::from_triplets(n, n, &sym).unwrap();
        let mut buf = Vec::new();
        write_matrix_market_to_with(&mut buf, &m, WriteOptions {
            symmetry: Symmetry::Symmetric,
            scientific,
            ..WriteOptions::default()
        }).unwrap();
        let back = read_matrix_market_from(buf.as_slice()).unwrap();
        prop_assert_eq!(back, m);
    }

    #[test]
    fn pattern_round_trips_structure(
        (nr, nc, trips) in triplets_strategy(),
    ) {
        // Pattern files carry no values; write the unit-valued matrix
        // so the round trip is exact end to end.
        let m = Csr::from_triplets(nr, nc, &trips).unwrap().map(|_| 1.0);
        let mut buf = Vec::new();
        write_matrix_market_to_with(&mut buf, &m, WriteOptions {
            field: Field::Pattern,
            ..WriteOptions::default()
        }).unwrap();
        let back = read_matrix_market_from(buf.as_slice()).unwrap();
        prop_assert_eq!(back, m);
    }
}
