//! Block-partitioned CSR storage: [`PartitionedCsr`].
//!
//! A [`crate::Csr`] is one allocation; the largest product a
//! monolithic kernel can form is bounded by it. Blocked storage — the
//! route DBCSR takes to distributed SpGEMM, and the partition-wise
//! execution Deveci et al. use to keep accumulators in fast memory on
//! a single node — splits a matrix into a grid of independent blocks,
//! each a standalone `Csr` with localized (rebased) indices.
//!
//! Two partition shapes cover the sharded runtime's needs:
//!
//! * **1D block-row** ([`PartitionedCsr::block_rows`] /
//!   [`PartitionedCsr::block_rows_balanced`]): `R` row blocks over the
//!   full column space — how `A` and `C` are owned by shards;
//! * **2D grid** ([`PartitionedCsr::grid`] /
//!   [`PartitionedCsr::grid_balanced`]): `R × C` blocks — how `B` is
//!   staged for broadcast.
//!
//! Cut selection reuses the paper's §4.1 machinery: any per-row weight
//! vector (nnz, or the flop counts the SpGEMM work analysis already
//! produces) goes through `spgemm_par::partition::balanced_offsets`,
//! the same `RowsToThreads` binary search that balances the
//! single-node kernels' thread ranges.
//!
//! [`PartitionedCsr::assemble`] is the inverse: gather the blocks back
//! into one `Csr`. For a sorted source matrix the round trip is
//! byte-for-byte (`partition → assemble == original`, including the
//! sorted flag); unsorted sources round-trip up to within-row entry
//! order (blocks regroup entries by column range).

use crate::csr::validate_cuts;
use crate::{ColIdx, Csr, SparseError};
use spgemm_par::{partition, Pool};

/// A matrix stored as an `R × C` grid of CSR blocks with localized
/// column indices (block `(r, c)` spans rows
/// `row_cuts[r]..row_cuts[r+1]` and columns
/// `col_cuts[c]..col_cuts[c+1]` of the source).
#[derive(Clone, Debug, PartialEq)]
pub struct PartitionedCsr<T> {
    nrows: usize,
    ncols: usize,
    row_cuts: Vec<usize>,
    col_cuts: Vec<usize>,
    /// Row-major: `blocks[r * grid_cols + c]`.
    blocks: Vec<Csr<T>>,
}

impl<T: Copy + Send + Sync> PartitionedCsr<T> {
    /// 1D block-row partition at explicit `row_cuts` (must span
    /// `0..=nrows`, non-decreasing; empty blocks are allowed).
    pub fn block_rows(m: &Csr<T>, row_cuts: Vec<usize>) -> Result<Self, SparseError> {
        Self::grid(m, row_cuts, vec![0, m.ncols()])
    }

    /// 1D block-row partition into `nparts` contiguous blocks of
    /// approximately equal total `weights` (one weight per row —
    /// typically nnz, or the per-row flop counts of an upcoming
    /// product), selected by the paper's `RowsToThreads` binary search
    /// (`spgemm_par::partition::balanced_offsets`).
    pub fn block_rows_balanced(
        m: &Csr<T>,
        weights: &[u64],
        nparts: usize,
        pool: &Pool,
    ) -> Result<Self, SparseError> {
        if weights.len() != m.nrows() {
            return Err(SparseError::BadPartition {
                detail: format!(
                    "block_rows_balanced: {} weights for {} rows",
                    weights.len(),
                    m.nrows()
                ),
            });
        }
        Self::block_rows(m, partition::balanced_offsets(weights, nparts, pool))
    }

    /// 2D grid partition at explicit row and column cuts.
    pub fn grid(
        m: &Csr<T>,
        row_cuts: Vec<usize>,
        col_cuts: Vec<usize>,
    ) -> Result<Self, SparseError> {
        validate_cuts(&row_cuts, m.nrows(), "PartitionedCsr row cuts")?;
        validate_cuts(&col_cuts, m.ncols(), "PartitionedCsr col cuts")?;
        let mut blocks = Vec::with_capacity((row_cuts.len() - 1) * (col_cuts.len() - 1));
        for r in row_cuts.windows(2) {
            let strip = m.extract_rows(r[0]..r[1]);
            blocks.extend(strip.split_col_ranges(&col_cuts)?);
        }
        Ok(PartitionedCsr {
            nrows: m.nrows(),
            ncols: m.ncols(),
            row_cuts,
            col_cuts,
            blocks,
        })
    }

    /// 2D grid partition into `grid_rows × grid_cols` blocks: row cuts
    /// balance the given per-row `weights`, column cuts balance the
    /// per-column nnz (both via
    /// `spgemm_par::partition::balanced_offsets`).
    pub fn grid_balanced(
        m: &Csr<T>,
        weights: &[u64],
        grid_rows: usize,
        grid_cols: usize,
        pool: &Pool,
    ) -> Result<Self, SparseError> {
        if weights.len() != m.nrows() {
            return Err(SparseError::BadPartition {
                detail: format!(
                    "grid_balanced: {} weights for {} rows",
                    weights.len(),
                    m.nrows()
                ),
            });
        }
        let row_cuts = partition::balanced_offsets(weights, grid_rows, pool);
        let col_weights = column_nnz(m);
        let col_cuts = partition::balanced_offsets(&col_weights, grid_cols, pool);
        Self::grid(m, row_cuts, col_cuts)
    }

    /// Rebuild a partition from blocks produced elsewhere (the sharded
    /// runtime's gather path). Block shapes must agree with the cuts;
    /// `blocks` is row-major over the `(row_cuts - 1) × (col_cuts - 1)`
    /// grid.
    pub fn from_blocks(
        row_cuts: Vec<usize>,
        col_cuts: Vec<usize>,
        blocks: Vec<Csr<T>>,
    ) -> Result<Self, SparseError> {
        let (Some(&nrows), Some(&ncols)) = (row_cuts.last(), col_cuts.last()) else {
            return Err(SparseError::BadPartition {
                detail: "from_blocks: empty cut vector".into(),
            });
        };
        validate_cuts(&row_cuts, nrows, "from_blocks row cuts")?;
        validate_cuts(&col_cuts, ncols, "from_blocks col cuts")?;
        let (gr, gc) = (row_cuts.len() - 1, col_cuts.len() - 1);
        if blocks.len() != gr * gc {
            return Err(SparseError::BadPartition {
                detail: format!("from_blocks: {} blocks for a {gr}x{gc} grid", blocks.len()),
            });
        }
        for r in 0..gr {
            for c in 0..gc {
                let b = &blocks[r * gc + c];
                let want = (row_cuts[r + 1] - row_cuts[r], col_cuts[c + 1] - col_cuts[c]);
                if b.shape() != want {
                    return Err(SparseError::BadPartition {
                        detail: format!(
                            "from_blocks: block ({r}, {c}) is {:?}, cuts say {want:?}",
                            b.shape()
                        ),
                    });
                }
            }
        }
        Ok(PartitionedCsr {
            nrows,
            ncols,
            row_cuts,
            col_cuts,
            blocks,
        })
    }

    /// `(nrows, ncols)` of the whole matrix.
    pub fn shape(&self) -> (usize, usize) {
        (self.nrows, self.ncols)
    }

    /// `(row blocks, column blocks)`.
    pub fn grid_shape(&self) -> (usize, usize) {
        (self.row_cuts.len() - 1, self.col_cuts.len() - 1)
    }

    /// Row cut offsets (`grid_shape().0 + 1` entries).
    pub fn row_cuts(&self) -> &[usize] {
        &self.row_cuts
    }

    /// Column cut offsets (`grid_shape().1 + 1` entries).
    pub fn col_cuts(&self) -> &[usize] {
        &self.col_cuts
    }

    /// The block at grid position `(r, c)`.
    pub fn block(&self, r: usize, c: usize) -> &Csr<T> {
        &self.blocks[r * (self.col_cuts.len() - 1) + c]
    }

    /// All blocks, row-major.
    pub fn blocks(&self) -> &[Csr<T>] {
        &self.blocks
    }

    /// Total stored entries across all blocks.
    pub fn nnz(&self) -> usize {
        self.blocks.iter().map(|b| b.nnz()).sum()
    }

    /// Total weight (nnz) of the heaviest block — the balance metric
    /// the dist bench reports.
    pub fn max_block_nnz(&self) -> usize {
        self.blocks.iter().map(|b| b.nnz()).max().unwrap_or(0)
    }

    /// Gather the blocks back into one [`Csr`]. Within each row,
    /// entries appear in ascending column-block order (each block's
    /// row kept in its stored order), so a partition of a sorted
    /// matrix assembles back byte-for-byte.
    pub fn assemble(&self) -> Csr<T> {
        let gc = self.col_cuts.len() - 1;
        let nnz = self.nnz();
        let mut rpts = Vec::with_capacity(self.nrows + 1);
        rpts.push(0usize);
        let mut cols: Vec<ColIdx> = Vec::with_capacity(nnz);
        let mut vals: Vec<T> = Vec::with_capacity(nnz);
        let mut sorted = true;
        for r in 0..self.row_cuts.len() - 1 {
            let strip = &self.blocks[r * gc..(r + 1) * gc];
            sorted &= strip.iter().all(|b| b.is_sorted());
            for i in 0..self.row_cuts[r + 1] - self.row_cuts[r] {
                for (c, b) in strip.iter().enumerate() {
                    let off = self.col_cuts[c] as ColIdx;
                    cols.extend(b.row_cols(i).iter().map(|&j| j + off));
                    vals.extend_from_slice(b.row_vals(i));
                }
                rpts.push(cols.len());
            }
        }
        // `sorted` is conservative: every block carries a verified
        // flag, and ascending disjoint column ranges preserve strict
        // increase across block boundaries.
        Csr::from_parts_unchecked(self.nrows, self.ncols, rpts, cols, vals, sorted)
    }
}

/// Per-column stored-entry counts — the column weight vector for
/// [`PartitionedCsr::grid_balanced`] column cuts.
pub fn column_nnz<T>(m: &Csr<T>) -> Vec<u64> {
    let mut counts = vec![0u64; m.ncols()];
    for &c in m.cols() {
        counts[c as usize] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    fn sample() -> Csr<f64> {
        // 6x6, mixed row densities.
        Csr::from_triplets(
            6,
            6,
            &[
                (0, 0, 1.0),
                (0, 3, 2.0),
                (0, 5, 3.0),
                (1, 1, 4.0),
                (2, 0, 5.0),
                (2, 2, 6.0),
                (2, 4, 7.0),
                (4, 3, 8.0),
                (5, 0, 9.0),
                (5, 5, 10.0),
            ],
        )
        .unwrap()
    }

    fn pool() -> Pool {
        Pool::new(2)
    }

    #[test]
    fn block_rows_round_trip_byte_for_byte() {
        let m = sample();
        let p = PartitionedCsr::block_rows(&m, vec![0, 2, 4, 6]).unwrap();
        assert_eq!(p.grid_shape(), (3, 1));
        assert_eq!(p.nnz(), m.nnz());
        assert_eq!(p.assemble(), m);
    }

    #[test]
    fn grid_round_trip_byte_for_byte() {
        let m = sample();
        let p = PartitionedCsr::grid(&m, vec![0, 3, 6], vec![0, 2, 4, 6]).unwrap();
        assert_eq!(p.grid_shape(), (2, 3));
        for r in 0..2 {
            for c in 0..3 {
                assert!(p.block(r, c).validate().is_ok(), "block ({r}, {c})");
            }
        }
        assert_eq!(p.block(0, 1).get(0, 1), Some(&2.0), "A[0,3] localized");
        assert_eq!(p.assemble(), m);
    }

    #[test]
    fn balanced_rows_use_weights() {
        let m = sample();
        let weights: Vec<u64> = (0..6).map(|i| m.row_nnz(i) as u64).collect();
        let p = PartitionedCsr::block_rows_balanced(&m, &weights, 2, &pool()).unwrap();
        let (r0, r1) = (p.block(0, 0).nnz(), p.block(1, 0).nnz());
        assert_eq!(r0 + r1, m.nnz());
        assert!(r0.abs_diff(r1) <= 4, "roughly balanced: {r0} vs {r1}");
        assert_eq!(p.assemble(), m);
    }

    #[test]
    fn grid_balanced_round_trips_and_covers() {
        let m = sample();
        let w = stats::row_flops(&m, &m);
        let p = PartitionedCsr::grid_balanced(&m, &w, 2, 2, &pool()).unwrap();
        assert_eq!(p.grid_shape(), (2, 2));
        assert_eq!(p.assemble(), m);
    }

    #[test]
    fn unsorted_source_round_trips_up_to_order() {
        let m = Csr::from_parts(
            2,
            4,
            vec![0, 3, 4],
            vec![3, 0, 2, 1],
            vec![1.0, 2.0, 3.0, 4.0],
        )
        .unwrap();
        assert!(!m.is_sorted());
        let p = PartitionedCsr::grid(&m, vec![0, 1, 2], vec![0, 2, 4]).unwrap();
        let back = p.assemble();
        assert!(crate::approx_eq_f64(&m, &back, 0.0));
    }

    #[test]
    fn empty_blocks_are_fine() {
        let m = Csr::<f64>::zero(4, 4);
        let p = PartitionedCsr::grid(&m, vec![0, 0, 4], vec![0, 2, 2, 4]).unwrap();
        assert_eq!(p.nnz(), 0);
        assert_eq!(p.assemble(), m);
        assert_eq!(p.max_block_nnz(), 0);
    }

    #[test]
    fn rejects_bad_cuts() {
        let m = sample();
        for cuts in [vec![0, 7], vec![1, 6], vec![0, 4, 2, 6], vec![0], vec![]] {
            assert!(
                matches!(
                    PartitionedCsr::block_rows(&m, cuts.clone()),
                    Err(SparseError::BadPartition { .. })
                ),
                "cuts {cuts:?}"
            );
        }
        assert!(PartitionedCsr::block_rows_balanced(&m, &[1, 2], 2, &pool()).is_err());
    }

    #[test]
    fn from_blocks_validates_shapes() {
        let m = sample();
        let p = PartitionedCsr::grid(&m, vec![0, 3, 6], vec![0, 6]).unwrap();
        let blocks = p.blocks().to_vec();
        let rebuilt = PartitionedCsr::from_blocks(vec![0, 3, 6], vec![0, 6], blocks).unwrap();
        assert_eq!(rebuilt.assemble(), m);
        // Swapping the cuts so shapes disagree is rejected.
        let blocks = p.blocks().to_vec();
        assert!(matches!(
            PartitionedCsr::from_blocks(vec![0, 2, 6], vec![0, 6], blocks),
            Err(SparseError::BadPartition { .. })
        ));
    }

    #[test]
    fn column_nnz_counts() {
        let m = sample();
        let counts = column_nnz(&m);
        assert_eq!(counts, vec![3, 1, 1, 2, 1, 2]);
        assert_eq!(counts.iter().sum::<u64>() as usize, m.nnz());
    }
}
