//! Structural operations on CSR matrices.
//!
//! These are the substrate operations the paper's workloads need around
//! the SpGEMM kernel itself: transposition (AMG's `Pᵀ A P`), random
//! column permutation (the unsorted-input experiments of §5.1 permute
//! column indices), degree reordering and triangular splitting (the
//! triangle-counting pipeline of §5.6), column selection (tall-skinny
//! frontier matrices of §5.5), element-wise addition, and masked
//! reduction.

use crate::{ColIdx, Csr, Scalar, SparseError};
use spgemm_par::Pool;
use std::sync::Mutex;

/// Below this many nonzeros [`transpose`] stays on the serial
/// counting sort: the parallel path's per-slab arrays and extra
/// region barriers cost more than they save on small inputs.
const PAR_TRANSPOSE_MIN_NNZ: usize = 1 << 14;

/// Transpose via per-column counting sort: `O(nnz + ncols)`, output
/// rows sorted. Large inputs fan out over the process-global pool
/// ([`transpose_in`]); small ones run the serial sort directly. Either
/// way the result is byte-for-byte [`transpose_serial`]'s output.
pub fn transpose<T: Copy + Send + Sync>(a: &Csr<T>) -> Csr<T> {
    let pool = spgemm_par::global_pool();
    if a.nnz() < PAR_TRANSPOSE_MIN_NNZ {
        transpose_serial(a)
    } else {
        transpose_in(a, pool)
    }
}

/// The structural half of a transpose: output row pointers, output
/// column indices, and the permutation `val_order` such that
/// `out.vals[k] = a.vals[val_order[k]]`. Splitting structure from the
/// value gather lets callers that transpose the *same pattern*
/// repeatedly (the expression-plan layer's cached `Transpose` nodes)
/// pay the counting sort once and refill values numeric-only.
pub fn transpose_structure<T: Copy + Send + Sync>(
    a: &Csr<T>,
) -> (Vec<usize>, Vec<ColIdx>, Vec<usize>) {
    let (nrows, ncols) = a.shape();
    let mut rpts = vec![0usize; ncols + 1];
    for &c in a.cols() {
        rpts[c as usize + 1] += 1;
    }
    for i in 0..ncols {
        rpts[i + 1] += rpts[i];
    }
    let nnz = a.nnz();
    let mut cols = vec![0 as ColIdx; nnz];
    let mut val_order = vec![0usize; nnz];
    let mut cursor = rpts.clone();
    for i in 0..nrows {
        let r = a.row_range(i);
        for (off, &c) in a.cols()[r.clone()].iter().enumerate() {
            let p = cursor[c as usize];
            cols[p] = i as ColIdx;
            val_order[p] = r.start + off;
            cursor[c as usize] += 1;
        }
    }
    (rpts, cols, val_order)
}

/// Serial transpose: [`transpose_structure`] plus the value gather.
pub fn transpose_serial<T: Copy + Send + Sync>(a: &Csr<T>) -> Csr<T> {
    let (rpts, cols, val_order) = transpose_structure(a);
    let avals = a.vals();
    let vals: Vec<T> = val_order.iter().map(|&idx| avals[idx]).collect();
    // Source rows are visited in increasing order, so each output row's
    // column indices (= source row ids) are strictly increasing,
    // provided the input had at most one entry per (row, col) — which
    // is a `Csr` invariant.
    Csr::from_parts_unchecked(a.ncols(), a.nrows(), rpts, cols, vals, true)
}

/// Parallel transpose on an explicit pool, without a line of `unsafe`
/// (this crate forbids it): each worker counting-sorts a contiguous,
/// nnz-balanced *row* slab into worker-local arrays, then workers take
/// ownership of contiguous *column* blocks of the output — disjoint
/// `split_at_mut` chunks — and concatenate the per-slab segments of
/// their columns in slab order. Within one output row the source rows
/// therefore appear in globally ascending order, exactly like the
/// serial scatter, so the result — structure *and* value bytes — is
/// [`transpose_serial`]'s output verbatim.
pub fn transpose_in<T: Copy + Send + Sync>(a: &Csr<T>, pool: &Pool) -> Csr<T> {
    let (nrows, ncols) = a.shape();
    let nnz = a.nnz();
    let nt = pool.nthreads();
    if nt == 1 || nnz == 0 || ncols == 0 {
        return transpose_serial(a);
    }

    // Contiguous row slabs with roughly equal nnz.
    let rpts_in = a.rpts();
    let mut row_offsets = Vec::with_capacity(nt + 1);
    row_offsets.push(0usize);
    for t in 1..nt {
        let target = nnz * t / nt;
        let r = rpts_in.partition_point(|&x| x < target).min(nrows);
        row_offsets.push(r.max(row_offsets[t - 1]));
    }
    row_offsets.push(nrows);

    // Phase 1: per-slab local counting transposes. Each worker fills
    // its own slot (the Mutex only makes the slot vector `Sync`; slots
    // are never contended).
    #[derive(Default)]
    struct Slab {
        /// Per-output-row (source column) pointers, length `ncols + 1`.
        rpts: Vec<usize>,
        /// Source row of each local entry, grouped by output row.
        rows: Vec<ColIdx>,
        /// Index into `a.vals()` of each local entry.
        src: Vec<usize>,
    }
    let slots: Vec<Mutex<Slab>> = (0..nt).map(|_| Mutex::new(Slab::default())).collect();
    pool.parallel_ranges(&row_offsets, |t, range| {
        let mut guard = slots[t].lock().expect("slab slot poisoned");
        let slab = &mut *guard;
        slab.rpts = vec![0usize; ncols + 1];
        for i in range.clone() {
            for &c in a.row_cols(i) {
                slab.rpts[c as usize + 1] += 1;
            }
        }
        for c in 0..ncols {
            slab.rpts[c + 1] += slab.rpts[c];
        }
        let local_nnz = slab.rpts[ncols];
        slab.rows = vec![0 as ColIdx; local_nnz];
        slab.src = vec![0usize; local_nnz];
        let mut cursor = slab.rpts.clone();
        for i in range {
            let r = a.row_range(i);
            for (off, &c) in a.cols()[r.clone()].iter().enumerate() {
                let p = cursor[c as usize];
                slab.rows[p] = i as ColIdx;
                slab.src[p] = r.start + off;
                cursor[c as usize] += 1;
            }
        }
    });
    let slabs: Vec<Slab> = slots
        .into_iter()
        .map(|m| m.into_inner().expect("slab slot poisoned"))
        .collect();

    // Phase 2: global output row pointers.
    let mut rpts = vec![0usize; ncols + 1];
    for c in 0..ncols {
        rpts[c + 1] = rpts[c]
            + slabs
                .iter()
                .map(|s| s.rpts[c + 1] - s.rpts[c])
                .sum::<usize>();
    }

    // Phase 3: contiguous output-row (column) blocks balanced by
    // output nnz; each worker owns disjoint `split_at_mut` chunks of
    // the output arrays and gathers its columns slab-by-slab.
    let mut col_offsets = Vec::with_capacity(nt + 1);
    col_offsets.push(0usize);
    for w in 1..nt {
        let target = nnz * w / nt;
        let c = rpts.partition_point(|&x| x < target).min(ncols);
        col_offsets.push(c.max(col_offsets[w - 1]));
    }
    col_offsets.push(ncols);

    let avals = a.vals();
    let mut cols = vec![0 as ColIdx; nnz];
    let mut vals = vec![avals[0]; nnz];
    {
        let mut rest_c: &mut [ColIdx] = &mut cols;
        let mut rest_v: &mut [T] = &mut vals;
        let mut chunks: Vec<Mutex<(&mut [ColIdx], &mut [T])>> = Vec::with_capacity(nt);
        for w in 0..nt {
            let here = rpts[col_offsets[w + 1]] - rpts[col_offsets[w]];
            let (cc, cr) = std::mem::take(&mut rest_c).split_at_mut(here);
            let (vc, vr) = std::mem::take(&mut rest_v).split_at_mut(here);
            rest_c = cr;
            rest_v = vr;
            chunks.push(Mutex::new((cc, vc)));
        }
        pool.parallel_ranges(&col_offsets, |w, crange| {
            let mut guard = chunks[w].lock().expect("chunk slot poisoned");
            let (out_c, out_v) = &mut *guard;
            let mut k = 0usize;
            for c in crange {
                for slab in &slabs {
                    let seg = slab.rpts[c]..slab.rpts[c + 1];
                    for (&row, &src) in slab.rows[seg.clone()].iter().zip(&slab.src[seg]) {
                        out_c[k] = row;
                        out_v[k] = avals[src];
                        k += 1;
                    }
                }
            }
            debug_assert_eq!(k, out_c.len());
        });
    }
    Csr::from_parts_unchecked(ncols, nrows, rpts, cols, vals, true)
}

/// Apply a column permutation: entry `(i, j)` moves to `(i, perm[j])`.
///
/// This is how the paper produces unsorted inputs ("the column indices
/// of input matrices are randomly permuted", §5.1): the structure is
/// relabelled in place and rows are intentionally **not** re-sorted.
/// The result's sorted flag reflects the actual post-permutation order.
pub fn permute_cols<T: Copy + Send + Sync>(
    a: &Csr<T>,
    perm: &[ColIdx],
) -> Result<Csr<T>, SparseError> {
    if perm.len() != a.ncols() {
        return Err(SparseError::ShapeMismatch {
            left: a.shape(),
            right: (perm.len(), 0),
            op: "permute_cols",
        });
    }
    debug_assert!(is_permutation(perm));
    let cols: Vec<ColIdx> = a.cols().iter().map(|&c| perm[c as usize]).collect();
    Csr::from_parts(
        a.nrows(),
        a.ncols(),
        a.rpts().to_vec(),
        cols,
        a.vals().to_vec(),
    )
}

/// Apply a row permutation: row `i` of the input becomes row
/// `perm[i]` of the output. Sortedness of rows is preserved.
pub fn permute_rows<T: Copy + Send + Sync>(
    a: &Csr<T>,
    perm: &[usize],
) -> Result<Csr<T>, SparseError> {
    if perm.len() != a.nrows() {
        return Err(SparseError::ShapeMismatch {
            left: a.shape(),
            right: (perm.len(), 0),
            op: "permute_rows",
        });
    }
    // inverse: output row r comes from input row inv[r]
    let mut inv = vec![usize::MAX; perm.len()];
    for (i, &p) in perm.iter().enumerate() {
        inv[p] = i;
    }
    debug_assert!(
        inv.iter().all(|&x| x != usize::MAX),
        "perm is not a permutation"
    );
    let mut rpts = Vec::with_capacity(a.nrows() + 1);
    rpts.push(0usize);
    let mut cols = Vec::with_capacity(a.nnz());
    let mut vals = Vec::with_capacity(a.nnz());
    for &src in inv.iter().take(a.nrows()) {
        cols.extend_from_slice(a.row_cols(src));
        vals.extend_from_slice(a.row_vals(src));
        rpts.push(cols.len());
    }
    Ok(Csr::from_parts_unchecked(
        a.nrows(),
        a.ncols(),
        rpts,
        cols,
        vals,
        a.is_sorted(),
    ))
}

/// Symmetric permutation `P A Pᵀ`: vertex `i` is relabelled to
/// `perm[i]` on both axes. Used by the triangle-counting preprocessing
/// (rows reordered by increasing degree, §5.6). Rows of the result are
/// re-sorted.
pub fn permute_symmetric<T: Copy + Send + Sync>(
    a: &Csr<T>,
    perm: &[usize],
) -> Result<Csr<T>, SparseError> {
    if a.nrows() != a.ncols() {
        return Err(SparseError::ShapeMismatch {
            left: a.shape(),
            right: a.shape(),
            op: "permute_symmetric (square required)",
        });
    }
    let col_perm: Vec<ColIdx> = perm.iter().map(|&p| p as ColIdx).collect();
    let mut m = permute_cols(a, &col_perm)?;
    m = permute_rows(&m, perm)?;
    m.sort_rows();
    Ok(m)
}

/// Permutation ordering rows by ascending stored-entry count (degree),
/// ties broken by original index for determinism. Returns `perm` with
/// the meaning of [`permute_rows`]: `perm[i]` is the new id of old row
/// `i`.
pub fn degree_ascending_permutation<T: Copy + Send + Sync>(a: &Csr<T>) -> Vec<usize> {
    let mut order: Vec<usize> = (0..a.nrows()).collect();
    order.sort_by_key(|&i| (a.row_nnz(i), i));
    let mut perm = vec![0usize; a.nrows()];
    for (new_id, &old_id) in order.iter().enumerate() {
        perm[old_id] = new_id;
    }
    perm
}

/// Split a square matrix into strictly-lower and strictly-upper
/// triangular parts, `A = L + D + U` with the diagonal discarded.
/// The triangle-counting pipeline computes `L · U` (§5.6).
pub fn split_lu<T: Copy + Send + Sync>(a: &Csr<T>) -> Result<(Csr<T>, Csr<T>), SparseError> {
    if a.nrows() != a.ncols() {
        return Err(SparseError::ShapeMismatch {
            left: a.shape(),
            right: a.shape(),
            op: "split_lu (square required)",
        });
    }
    let n = a.nrows();
    let mut l_rpts = Vec::with_capacity(n + 1);
    let mut u_rpts = Vec::with_capacity(n + 1);
    l_rpts.push(0usize);
    u_rpts.push(0usize);
    let mut l_cols = Vec::new();
    let mut l_vals = Vec::new();
    let mut u_cols = Vec::new();
    let mut u_vals = Vec::new();
    for i in 0..n {
        for (&c, &v) in a.row_cols(i).iter().zip(a.row_vals(i)) {
            use std::cmp::Ordering::*;
            match (c as usize).cmp(&i) {
                Less => {
                    l_cols.push(c);
                    l_vals.push(v);
                }
                Greater => {
                    u_cols.push(c);
                    u_vals.push(v);
                }
                Equal => {}
            }
        }
        l_rpts.push(l_cols.len());
        u_rpts.push(u_cols.len());
    }
    let sorted = a.is_sorted();
    Ok((
        Csr::from_parts_unchecked(n, n, l_rpts, l_cols, l_vals, sorted),
        Csr::from_parts_unchecked(n, n, u_rpts, u_cols, u_vals, sorted),
    ))
}

/// Restrict to a subset of columns, relabelling them `0..k` in the
/// order given by the (deduplicated, ascending) `selection`. Produces
/// the tall-skinny right-hand operand of §5.5 when applied to a graph's
/// own columns. Requires sorted input so the output stays sorted.
pub fn select_columns<T: Copy + Send + Sync>(
    a: &Csr<T>,
    selection: &[ColIdx],
) -> Result<Csr<T>, SparseError> {
    if !a.is_sorted() {
        return Err(SparseError::Unsorted {
            op: "select_columns",
        });
    }
    debug_assert!(
        selection.windows(2).all(|w| w[0] < w[1]),
        "selection must be ascending"
    );
    let mut map = vec![ColIdx::MAX; a.ncols()];
    for (new_id, &old) in selection.iter().enumerate() {
        if old as usize >= a.ncols() {
            return Err(SparseError::ColumnOutOfBounds {
                row: 0,
                col: old,
                ncols: a.ncols(),
            });
        }
        map[old as usize] = new_id as ColIdx;
    }
    let mut rpts = Vec::with_capacity(a.nrows() + 1);
    rpts.push(0usize);
    let mut cols = Vec::new();
    let mut vals = Vec::new();
    for i in 0..a.nrows() {
        for (&c, &v) in a.row_cols(i).iter().zip(a.row_vals(i)) {
            let m = map[c as usize];
            if m != ColIdx::MAX {
                cols.push(m);
                vals.push(v);
            }
        }
        rpts.push(cols.len());
    }
    Ok(Csr::from_parts_unchecked(
        a.nrows(),
        selection.len(),
        rpts,
        cols,
        vals,
        true,
    ))
}

/// Element-wise sum `A + B` of equal-shaped, sorted matrices by
/// per-row merging. Entries summing to the additive identity are kept
/// (structural union), matching the convention of the SpGEMM kernels.
pub fn add<T: Scalar>(a: &Csr<T>, b: &Csr<T>) -> Result<Csr<T>, SparseError> {
    if a.shape() != b.shape() {
        return Err(SparseError::ShapeMismatch {
            left: a.shape(),
            right: b.shape(),
            op: "add",
        });
    }
    if !a.is_sorted() || !b.is_sorted() {
        return Err(SparseError::Unsorted { op: "add" });
    }
    let mut rpts = Vec::with_capacity(a.nrows() + 1);
    rpts.push(0usize);
    let mut cols = Vec::with_capacity(a.nnz() + b.nnz());
    let mut vals = Vec::with_capacity(a.nnz() + b.nnz());
    for i in 0..a.nrows() {
        let (ac, av) = (a.row_cols(i), a.row_vals(i));
        let (bc, bv) = (b.row_cols(i), b.row_vals(i));
        let (mut p, mut q) = (0usize, 0usize);
        while p < ac.len() && q < bc.len() {
            use std::cmp::Ordering::*;
            match ac[p].cmp(&bc[q]) {
                Less => {
                    cols.push(ac[p]);
                    vals.push(av[p]);
                    p += 1;
                }
                Greater => {
                    cols.push(bc[q]);
                    vals.push(bv[q]);
                    q += 1;
                }
                Equal => {
                    cols.push(ac[p]);
                    vals.push(av[p].add(bv[q]));
                    p += 1;
                    q += 1;
                }
            }
        }
        cols.extend_from_slice(&ac[p..]);
        vals.extend_from_slice(&av[p..]);
        cols.extend_from_slice(&bc[q..]);
        vals.extend_from_slice(&bv[q..]);
        rpts.push(cols.len());
    }
    Ok(Csr::from_parts_unchecked(
        a.nrows(),
        a.ncols(),
        rpts,
        cols,
        vals,
        true,
    ))
}

/// Sum the values of `b` at the coordinates present in `mask`
/// (`Σ_{(i,j) ∈ mask} b[i][j]`). Both operands must be sorted. This is
/// the final reduction of triangle counting: wedges `L·U` summed over
/// the edges of `A`.
pub fn masked_sum<T: Scalar, M: Copy + Send + Sync>(
    b: &Csr<T>,
    mask: &Csr<M>,
) -> Result<T, SparseError> {
    if b.shape() != mask.shape() {
        return Err(SparseError::ShapeMismatch {
            left: b.shape(),
            right: mask.shape(),
            op: "masked_sum",
        });
    }
    if !b.is_sorted() || !mask.is_sorted() {
        return Err(SparseError::Unsorted { op: "masked_sum" });
    }
    let mut total = T::ZERO;
    for i in 0..b.nrows() {
        let bc = b.row_cols(i);
        let bv = b.row_vals(i);
        let mc = mask.row_cols(i);
        let (mut p, mut q) = (0usize, 0usize);
        while p < bc.len() && q < mc.len() {
            use std::cmp::Ordering::*;
            match bc[p].cmp(&mc[q]) {
                Less => p += 1,
                Greater => q += 1,
                Equal => {
                    total = total.add(bv[p]);
                    p += 1;
                    q += 1;
                }
            }
        }
    }
    Ok(total)
}

/// Make a pattern symmetric: `A ∨ Aᵀ` structurally, values combined by
/// [`Scalar::add`] where both sides are present. Diagonal entries are
/// removed (simple-graph convention used by the triangle counter).
pub fn symmetrize_simple<T: Scalar>(a: &Csr<T>) -> Result<Csr<T>, SparseError> {
    if a.nrows() != a.ncols() {
        return Err(SparseError::ShapeMismatch {
            left: a.shape(),
            right: a.shape(),
            op: "symmetrize_simple (square required)",
        });
    }
    let at = transpose(&a.to_sorted());
    let sum = add(&a.to_sorted(), &at)?;
    Ok(sum.filter(|i, c, _| i != c as usize))
}

/// Sparse matrix–dense vector product `y = A x`.
///
/// The downstream sanity check for every SpGEMM identity in the tests:
/// `(A·B)x == A(Bx)` holds for exact arithmetic and approximately for
/// floats.
pub fn spmv<T: Scalar>(a: &Csr<T>, x: &[T]) -> Result<Vec<T>, SparseError> {
    if x.len() != a.ncols() {
        return Err(SparseError::ShapeMismatch {
            left: a.shape(),
            right: (x.len(), 1),
            op: "spmv",
        });
    }
    Ok((0..a.nrows())
        .map(|i| {
            a.row_cols(i)
                .iter()
                .zip(a.row_vals(i))
                .fold(T::ZERO, |acc, (&c, &v)| acc.add(v.mul(x[c as usize])))
        })
        .collect())
}

/// Scale row `i` by `factors[i]` (diagonal left-multiplication
/// `D · A`).
pub fn scale_rows<T: Scalar>(a: &Csr<T>, factors: &[T]) -> Result<Csr<T>, SparseError> {
    if factors.len() != a.nrows() {
        return Err(SparseError::ShapeMismatch {
            left: a.shape(),
            right: (factors.len(), 0),
            op: "scale_rows",
        });
    }
    let (nr, nc, rpts, cols, mut vals, sorted) = a.clone().into_parts();
    for i in 0..nr {
        let f = factors[i];
        for v in &mut vals[rpts[i]..rpts[i + 1]] {
            *v = v.mul(f);
        }
    }
    Ok(Csr::from_parts_unchecked(nr, nc, rpts, cols, vals, sorted))
}

/// Scale column `j` by `factors[j]` (diagonal right-multiplication
/// `A · D`).
pub fn scale_cols<T: Scalar>(a: &Csr<T>, factors: &[T]) -> Result<Csr<T>, SparseError> {
    if factors.len() != a.ncols() {
        return Err(SparseError::ShapeMismatch {
            left: a.shape(),
            right: (factors.len(), 0),
            op: "scale_cols",
        });
    }
    let (nr, nc, rpts, cols, mut vals, sorted) = a.clone().into_parts();
    for (v, &c) in vals.iter_mut().zip(&cols) {
        *v = v.mul(factors[c as usize]);
    }
    Ok(Csr::from_parts_unchecked(nr, nc, rpts, cols, vals, sorted))
}

/// The main diagonal as a dense vector (absent entries are zero).
pub fn diagonal<T: Scalar>(a: &Csr<T>) -> Vec<T> {
    (0..a.nrows().min(a.ncols()))
        .map(|i| a.get(i, i as ColIdx).copied().unwrap_or(T::ZERO))
        .collect()
}

/// Element-wise (Hadamard) product `A ∘ B`: entries present in both
/// operands, multiplied. Both inputs sorted; output sorted. Triangle
/// counting's masked reduction is `sum(hadamard(B, mask))`.
pub fn hadamard<T: Scalar>(a: &Csr<T>, b: &Csr<T>) -> Result<Csr<T>, SparseError> {
    if a.shape() != b.shape() {
        return Err(SparseError::ShapeMismatch {
            left: a.shape(),
            right: b.shape(),
            op: "hadamard",
        });
    }
    if !a.is_sorted() || !b.is_sorted() {
        return Err(SparseError::Unsorted { op: "hadamard" });
    }
    let mut rpts = Vec::with_capacity(a.nrows() + 1);
    rpts.push(0usize);
    let mut cols = Vec::new();
    let mut vals = Vec::new();
    for i in 0..a.nrows() {
        let (ac, av) = (a.row_cols(i), a.row_vals(i));
        let (bc, bv) = (b.row_cols(i), b.row_vals(i));
        let (mut p, mut q) = (0usize, 0usize);
        while p < ac.len() && q < bc.len() {
            use std::cmp::Ordering::*;
            match ac[p].cmp(&bc[q]) {
                Less => p += 1,
                Greater => q += 1,
                Equal => {
                    cols.push(ac[p]);
                    vals.push(av[p].mul(bv[q]));
                    p += 1;
                    q += 1;
                }
            }
        }
        rpts.push(cols.len());
    }
    Ok(Csr::from_parts_unchecked(
        a.nrows(),
        a.ncols(),
        rpts,
        cols,
        vals,
        true,
    ))
}

/// Normalize each column of `a` to sum 1 (column-stochastic), leaving
/// all-zero columns untouched. This is MCL's renormalization step
/// (matrices here are row-major, so it is the "transposed" problem:
/// each column's entries are scattered across rows). Structure is
/// unchanged; only values move.
pub fn normalize_columns(a: &Csr<f64>) -> Csr<f64> {
    let (nr, nc, rpts, cols, mut vals, sorted) = a.clone().into_parts();
    let mut colsum = Vec::new();
    normalize_columns_values(nc, &cols, &mut vals, &mut colsum);
    Csr::from_parts_unchecked(nr, nc, rpts, cols, vals, sorted)
}

/// The in-place value pass of [`normalize_columns`], over raw CSR
/// arrays: sum each column (in storage order) into `colsum` — which is
/// cleared and resized, so a caller-retained scratch makes repeated
/// calls allocation-free — then divide every entry by its column's
/// sum, skipping zero-sum columns. Exposed separately so fused
/// pipeline epilogues (`spgemm::expr`) can renormalize a produced
/// buffer without materializing a copy, byte-for-byte like the
/// matrix-level function.
pub fn normalize_columns_values(
    ncols: usize,
    cols: &[ColIdx],
    vals: &mut [f64],
    colsum: &mut Vec<f64>,
) {
    colsum.clear();
    colsum.resize(ncols, 0.0);
    for (&c, &v) in cols.iter().zip(vals.iter()) {
        colsum[c as usize] += v;
    }
    for (v, &c) in vals.iter_mut().zip(cols) {
        let s = colsum[c as usize];
        if s != 0.0 {
            *v /= s;
        }
    }
}

fn is_permutation(perm: &[ColIdx]) -> bool {
    let mut seen = vec![false; perm.len()];
    for &p in perm {
        if p as usize >= perm.len() || seen[p as usize] {
            return false;
        }
        seen[p as usize] = true;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::approx_eq_f64;

    fn sample() -> Csr<f64> {
        // [ 1 0 2 ]
        // [ 0 3 0 ]
        // [ 4 5 6 ]
        Csr::from_triplets(
            3,
            3,
            &[
                (0, 0, 1.0),
                (0, 2, 2.0),
                (1, 1, 3.0),
                (2, 0, 4.0),
                (2, 1, 5.0),
                (2, 2, 6.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn transpose_round_trip() {
        let a = sample();
        let at = transpose(&a);
        assert!(at.is_sorted());
        assert_eq!(at.get(0, 2), Some(&4.0));
        assert_eq!(at.get(2, 0), Some(&2.0));
        let att = transpose(&at);
        assert!(approx_eq_f64(&a, &att, 0.0));
    }

    #[test]
    fn transpose_rectangular() {
        let a = Csr::from_triplets(2, 4, &[(0, 3, 1.0), (1, 0, 2.0)]).unwrap();
        let at = transpose(&a);
        assert_eq!(at.shape(), (4, 2));
        assert_eq!(at.get(3, 0), Some(&1.0));
        assert_eq!(at.get(0, 1), Some(&2.0));
        assert!(at.validate().is_ok());
    }

    #[test]
    fn permute_cols_relabels_without_sorting() {
        let a = sample();
        // reverse the columns
        let perm = vec![2u32, 1, 0];
        let p = permute_cols(&a, &perm).unwrap();
        assert_eq!(p.get(0, 2), Some(&1.0));
        assert_eq!(p.get(0, 0), Some(&2.0));
        // row 0 was [0, 2] -> [2, 0]: no longer ascending
        assert!(!p.is_sorted());
        assert!(p.validate().is_ok());
    }

    #[test]
    fn permute_rows_moves_rows() {
        let a = sample();
        let perm = vec![1usize, 2, 0]; // old row 0 -> new row 1, etc.
        let p = permute_rows(&a, &perm).unwrap();
        assert_eq!(p.get(1, 0), Some(&1.0));
        assert_eq!(p.get(2, 1), Some(&3.0));
        assert_eq!(p.get(0, 2), Some(&6.0));
        assert!(p.is_sorted());
    }

    #[test]
    fn symmetric_permutation_preserves_graph() {
        let a = sample();
        let perm = vec![2usize, 0, 1];
        let p = permute_symmetric(&a, &perm).unwrap();
        // entry (i, j) must appear at (perm[i], perm[j])
        for i in 0..3 {
            for (&c, &v) in a.row_cols(i).iter().zip(a.row_vals(i)) {
                assert_eq!(p.get(perm[i], perm[c as usize] as u32), Some(&v));
            }
        }
        assert_eq!(p.nnz(), a.nnz());
    }

    #[test]
    fn degree_permutation_orders_by_row_nnz() {
        let a = sample(); // degrees: 2, 1, 3
        let perm = degree_ascending_permutation(&a);
        // old row 1 (degree 1) must become new row 0, old row 2 -> last.
        assert_eq!(perm[1], 0);
        assert_eq!(perm[2], 2);
        assert_eq!(perm[0], 1);
        let p = permute_symmetric(&a, &perm).unwrap();
        let degs: Vec<usize> = (0..3).map(|i| p.row_nnz(i)).collect();
        assert!(degs.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn split_lu_excludes_diagonal() {
        let a = sample();
        let (l, u) = split_lu(&a).unwrap();
        assert_eq!(l.nnz(), 2); // (2,0), (2,1)
        assert_eq!(u.nnz(), 1); // (0,2)
        assert_eq!(l.get(2, 0), Some(&4.0));
        assert_eq!(u.get(0, 2), Some(&2.0));
        for i in 0..3 {
            assert!(l.row_cols(i).iter().all(|&c| (c as usize) < i));
            assert!(u.row_cols(i).iter().all(|&c| (c as usize) > i));
        }
    }

    #[test]
    fn select_columns_relabels() {
        let a = sample();
        let s = select_columns(&a, &[0, 2]).unwrap();
        assert_eq!(s.shape(), (3, 2));
        assert_eq!(s.get(0, 0), Some(&1.0));
        assert_eq!(s.get(0, 1), Some(&2.0));
        assert_eq!(s.get(1, 0), None); // column 1 dropped
        assert_eq!(s.get(2, 1), Some(&6.0));
        assert!(s.is_sorted());
    }

    #[test]
    fn add_merges_rows() {
        let a = sample();
        let i = Csr::<f64>::identity(3);
        let s = add(&a, &i).unwrap();
        assert_eq!(s.get(0, 0), Some(&2.0));
        assert_eq!(s.get(1, 1), Some(&4.0));
        assert_eq!(s.get(2, 2), Some(&7.0));
        assert_eq!(s.get(0, 2), Some(&2.0));
        // union structure: row0 {0,2}, row1 {1}, row2 {0,1,2}
        assert_eq!(s.nnz(), 6);
        assert!(s.is_sorted());
    }

    #[test]
    fn add_shape_mismatch_rejected() {
        let a = sample();
        let b = Csr::<f64>::zero(2, 3);
        assert!(matches!(
            add(&a, &b),
            Err(SparseError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn masked_sum_counts_matches() {
        let b = sample();
        let mask = Csr::<u8>::from_triplets(3, 3, &[(0, 2, 1u8), (2, 0, 1), (1, 0, 1)]).unwrap();
        // matches: (0,2)=2.0 and (2,0)=4.0 present in b; (1,0) absent.
        let s = masked_sum(&b, &mask).unwrap();
        assert_eq!(s, 6.0);
    }

    #[test]
    fn symmetrize_simple_produces_symmetric_hollow() {
        let a = Csr::from_triplets(3, 3, &[(0, 1, 1.0), (1, 1, 9.0), (2, 0, 2.0)]).unwrap();
        let s = symmetrize_simple(&a).unwrap();
        assert_eq!(s.get(0, 1), Some(&1.0));
        assert_eq!(s.get(1, 0), Some(&1.0));
        assert_eq!(s.get(2, 0), Some(&2.0));
        assert_eq!(s.get(0, 2), Some(&2.0));
        assert_eq!(s.get(1, 1), None, "diagonal removed");
        assert_eq!(s.nnz(), 4);
    }

    #[test]
    fn spmv_matches_dense() {
        let a = sample();
        let x = vec![1.0, 2.0, 3.0];
        let y = spmv(&a, &x).unwrap();
        assert_eq!(y, vec![1.0 + 6.0, 6.0, 4.0 + 10.0 + 18.0]);
        assert!(spmv(&a, &[1.0]).is_err());
    }

    #[test]
    fn scaling_rows_and_cols() {
        let a = sample();
        let r = scale_rows(&a, &[2.0, 3.0, 0.5]).unwrap();
        assert_eq!(r.get(0, 0), Some(&2.0));
        assert_eq!(r.get(1, 1), Some(&9.0));
        assert_eq!(r.get(2, 2), Some(&3.0));
        let c = scale_cols(&a, &[0.0, 1.0, 10.0]).unwrap();
        assert_eq!(c.get(0, 0), Some(&0.0));
        assert_eq!(c.get(0, 2), Some(&20.0));
        assert_eq!(c.get(2, 1), Some(&5.0));
        assert!(scale_rows(&a, &[1.0]).is_err());
        assert!(scale_cols(&a, &[1.0]).is_err());
    }

    #[test]
    fn diagonal_extraction() {
        let a = sample();
        assert_eq!(diagonal(&a), vec![1.0, 3.0, 6.0]);
        let r = Csr::from_triplets(2, 4, &[(1, 1, 7.0)]).unwrap();
        assert_eq!(diagonal(&r), vec![0.0, 7.0]);
    }

    #[test]
    fn hadamard_intersects_structures() {
        let a = sample();
        let i = Csr::<f64>::identity(3);
        let h = hadamard(&a, &i).unwrap();
        assert_eq!(h.nnz(), 3, "only the diagonal survives");
        assert_eq!(h.get(0, 0), Some(&1.0));
        assert_eq!(h.get(1, 1), Some(&3.0));
        assert_eq!(h.get(0, 2), None);
        // consistency with masked_sum
        let ms = masked_sum(&a, &i).unwrap();
        let hs: f64 = h.vals().iter().sum();
        assert_eq!(ms, hs);
    }

    #[test]
    fn spmv_distributes_over_spgemm_structure() {
        // (A + I) x == A x + x, a pure-ops identity
        let a = sample();
        let i = Csr::<f64>::identity(3);
        let s = add(&a, &i).unwrap();
        let x = vec![0.5, -1.0, 2.0];
        let lhs = spmv(&s, &x).unwrap();
        let ax = spmv(&a, &x).unwrap();
        for k in 0..3 {
            assert!((lhs[k] - (ax[k] + x[k])).abs() < 1e-12);
        }
    }

    #[test]
    fn unsorted_inputs_rejected_where_required() {
        let a = sample();
        let perm = vec![2u32, 1, 0];
        let unsorted = permute_cols(&a, &perm).unwrap();
        assert!(matches!(
            add(&unsorted, &unsorted),
            Err(SparseError::Unsorted { .. })
        ));
        assert!(matches!(
            select_columns(&unsorted, &[0]),
            Err(SparseError::Unsorted { .. })
        ));
    }
}
