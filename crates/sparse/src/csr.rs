//! Compressed Sparse Row storage.
//!
//! The CSR format is the lingua franca of the paper (§2): row pointers
//! `rpts` of length `nrows + 1`, column indices `cols` of length `nnz`,
//! and values `vals` of length `nnz`. Whether the column indices within
//! each row are sorted is *not* part of the format — the paper shows
//! large performance differences between the two conventions — so
//! [`Csr`] carries an explicit, verified `sorted` flag.

use crate::{ColIdx, SparseError, MAX_DIM};
use rayon::prelude::*;
use std::fmt::Debug;

/// A sparse matrix in Compressed Sparse Row format.
///
/// Invariants (checked by [`Csr::from_parts`] and [`Csr::validate`]):
///
/// * `rpts.len() == nrows + 1`, `rpts[0] == 0`, `rpts` is
///   non-decreasing, and `rpts[nrows] == cols.len() == vals.len()`;
/// * every column index is `< ncols`;
/// * if `sorted` is true, the indices within each row are strictly
///   increasing (which also implies no duplicate entries per row).
///
/// Unsorted matrices may still contain at most one entry per
/// `(row, col)` pair; all constructors in this crate guarantee that and
/// the SpGEMM kernels preserve it.
#[derive(Clone, PartialEq)]
pub struct Csr<T> {
    nrows: usize,
    ncols: usize,
    rpts: Vec<usize>,
    cols: Vec<ColIdx>,
    vals: Vec<T>,
    sorted: bool,
}

impl<T: Debug> Debug for Csr<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Csr {}x{} nnz={} ({})",
            self.nrows,
            self.ncols,
            self.nnz(),
            if self.sorted { "sorted" } else { "unsorted" }
        )?;
        // Print at most the first few rows to keep assertion output usable.
        for i in 0..self.nrows.min(8) {
            write!(f, "  row {i}:")?;
            for (c, v) in self.row_cols(i).iter().zip(self.row_vals(i)) {
                write!(f, " ({c}, {v:?})")?;
            }
            writeln!(f)?;
        }
        if self.nrows > 8 {
            writeln!(f, "  ... ({} more rows)", self.nrows - 8)?;
        }
        Ok(())
    }
}

/// A borrowed view of one matrix row: parallel slices of column indices
/// and values.
#[derive(Clone, Copy, Debug)]
pub struct RowView<'a, T> {
    /// Column indices of the row's stored entries.
    pub cols: &'a [ColIdx],
    /// Values of the row's stored entries, parallel to `cols`.
    pub vals: &'a [T],
}

impl<'a, T> RowView<'a, T> {
    /// Number of stored entries in the row.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.cols.len()
    }

    /// Iterate `(column, &value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ColIdx, &'a T)> + '_ {
        self.cols.iter().copied().zip(self.vals.iter())
    }
}

impl<T> Csr<T> {
    /// An empty (all-zero) matrix of the given shape.
    pub fn zero(nrows: usize, ncols: usize) -> Self {
        Csr {
            nrows,
            ncols,
            rpts: vec![0; nrows + 1],
            cols: Vec::new(),
            vals: Vec::new(),
            sorted: true,
        }
    }

    /// Build from raw CSR arrays, validating every invariant.
    ///
    /// `sorted` is detected, not trusted: the flag on the result is set
    /// iff every row is strictly increasing.
    pub fn from_parts(
        nrows: usize,
        ncols: usize,
        rpts: Vec<usize>,
        cols: Vec<ColIdx>,
        vals: Vec<T>,
    ) -> Result<Self, SparseError> {
        if ncols > MAX_DIM || nrows > MAX_DIM {
            return Err(SparseError::DimensionTooLarge {
                dim: ncols.max(nrows),
            });
        }
        if cols.len() != vals.len() {
            return Err(SparseError::LengthMismatch {
                cols: cols.len(),
                vals: vals.len(),
            });
        }
        if rpts.len() != nrows + 1 {
            return Err(SparseError::BadRowPointers {
                detail: format!("rpts.len() = {} but nrows + 1 = {}", rpts.len(), nrows + 1),
            });
        }
        if rpts[0] != 0 {
            return Err(SparseError::BadRowPointers {
                detail: format!("rpts[0] = {} (must be 0)", rpts[0]),
            });
        }
        if *rpts.last().unwrap() != cols.len() {
            return Err(SparseError::BadRowPointers {
                detail: format!(
                    "rpts[nrows] = {} but nnz = {}",
                    rpts.last().unwrap(),
                    cols.len()
                ),
            });
        }
        for w in rpts.windows(2) {
            if w[1] < w[0] {
                return Err(SparseError::BadRowPointers {
                    detail: "row pointers decrease".to_string(),
                });
            }
        }
        for i in 0..nrows {
            for &c in &cols[rpts[i]..rpts[i + 1]] {
                if (c as usize) >= ncols {
                    return Err(SparseError::ColumnOutOfBounds {
                        row: i,
                        col: c,
                        ncols,
                    });
                }
            }
        }
        let mut m = Csr {
            nrows,
            ncols,
            rpts,
            cols,
            vals,
            sorted: false,
        };
        m.sorted = m.detect_sorted();
        Ok(m)
    }

    /// Build from raw CSR arrays without validation.
    ///
    /// The caller asserts all [`Csr`] invariants, including the
    /// correctness of `sorted`. Intended for kernel output paths where
    /// the invariants hold by construction; `debug_assert`s re-check in
    /// debug builds.
    pub fn from_parts_unchecked(
        nrows: usize,
        ncols: usize,
        rpts: Vec<usize>,
        cols: Vec<ColIdx>,
        vals: Vec<T>,
        sorted: bool,
    ) -> Self {
        let m = Csr {
            nrows,
            ncols,
            rpts,
            cols,
            vals,
            sorted,
        };
        debug_assert!(m.validate().is_ok(), "from_parts_unchecked: invalid CSR");
        debug_assert!(
            !sorted || m.detect_sorted(),
            "from_parts_unchecked: sorted flag wrong"
        );
        m
    }

    /// Build from `(row, col, value)` triplets. Duplicate coordinates
    /// are combined by *last write wins*; use [`crate::Coo`] for
    /// additive combination. Rows come out sorted.
    pub fn from_triplets(
        nrows: usize,
        ncols: usize,
        triplets: &[(usize, ColIdx, T)],
    ) -> Result<Self, SparseError>
    where
        T: Copy + Send + Sync + PartialEq,
    {
        let mut coo = crate::Coo::with_capacity(nrows, ncols, triplets.len())?;
        for &(r, c, v) in triplets {
            coo.push(r, c, v)?;
        }
        Ok(coo.into_csr_last_wins())
    }

    /// The identity matrix of order `n`.
    pub fn identity(n: usize) -> Self
    where
        T: crate::Scalar,
    {
        let rpts = (0..=n).collect();
        let cols = (0..n as ColIdx).collect();
        let vals = vec![T::ONE; n];
        Csr {
            nrows: n,
            ncols: n,
            rpts,
            cols,
            vals,
            sorted: true,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.cols.len()
    }

    /// `(nrows, ncols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.nrows, self.ncols)
    }

    /// Whether every row is strictly increasing in column index.
    /// This is the *verified* flag, not a hint.
    #[inline]
    pub fn is_sorted(&self) -> bool {
        self.sorted
    }

    /// Row-pointer array (`nrows + 1` entries).
    #[inline]
    pub fn rpts(&self) -> &[usize] {
        &self.rpts
    }

    /// Column-index array (`nnz` entries).
    #[inline]
    pub fn cols(&self) -> &[ColIdx] {
        &self.cols
    }

    /// Value array (`nnz` entries).
    #[inline]
    pub fn vals(&self) -> &[T] {
        &self.vals
    }

    /// FNV-1a fingerprint of the matrix's sparsity *structure*: shape,
    /// nnz, row pointers and column indices — values excluded. Two
    /// matrices with the same fingerprint share a structure for
    /// planning purposes (`spgemm`'s plan cache keys on it), so a
    /// matrix whose values change but whose pattern is stable keeps its
    /// fingerprint. `O(nnz)`: compute once and remember when keying
    /// long-lived caches (as the serving layer's matrix store does).
    pub fn structure_fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0100_0000_01b3;
        let mix = |h: u64, x: u64| (h ^ x).wrapping_mul(PRIME);
        let mut h = OFFSET;
        h = mix(h, self.nrows as u64);
        h = mix(h, self.ncols as u64);
        h = mix(h, self.nnz() as u64);
        for &r in &self.rpts {
            h = mix(h, r as u64);
        }
        for &c in &self.cols {
            h = mix(h, c as u64);
        }
        h
    }

    /// Half-open range of entry positions of row `i`.
    #[inline]
    pub fn row_range(&self, i: usize) -> std::ops::Range<usize> {
        self.rpts[i]..self.rpts[i + 1]
    }

    /// Number of stored entries in row `i`.
    #[inline]
    pub fn row_nnz(&self, i: usize) -> usize {
        self.rpts[i + 1] - self.rpts[i]
    }

    /// Column indices of row `i`.
    #[inline]
    pub fn row_cols(&self, i: usize) -> &[ColIdx] {
        &self.cols[self.row_range(i)]
    }

    /// Values of row `i`.
    #[inline]
    pub fn row_vals(&self, i: usize) -> &[T] {
        &self.vals[self.row_range(i)]
    }

    /// Borrowed view of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> RowView<'_, T> {
        let r = self.row_range(i);
        RowView {
            cols: &self.cols[r.clone()],
            vals: &self.vals[r],
        }
    }

    /// Iterate over all rows as [`RowView`]s.
    pub fn iter_rows(&self) -> impl Iterator<Item = RowView<'_, T>> + '_ {
        (0..self.nrows).map(move |i| self.row(i))
    }

    /// Look up the value at `(row, col)`, or `None` if absent. Uses
    /// binary search on sorted rows, linear scan otherwise.
    pub fn get(&self, row: usize, col: ColIdx) -> Option<&T> {
        let r = self.row_range(row);
        let cols = &self.cols[r.clone()];
        let off = if self.sorted {
            cols.binary_search(&col).ok()?
        } else {
            cols.iter().position(|&c| c == col)?
        };
        Some(&self.vals[r.start + off])
    }

    /// Fraction of entries stored: `nnz / (nrows * ncols)`.
    pub fn density(&self) -> f64 {
        if self.nrows == 0 || self.ncols == 0 {
            0.0
        } else {
            self.nnz() as f64 / (self.nrows as f64 * self.ncols as f64)
        }
    }

    /// Average number of stored entries per row (the generators' "edge
    /// factor" measured on the realized matrix).
    pub fn avg_row_nnz(&self) -> f64 {
        if self.nrows == 0 {
            0.0
        } else {
            self.nnz() as f64 / self.nrows as f64
        }
    }

    /// Largest number of stored entries in any row.
    pub fn max_row_nnz(&self) -> usize {
        (0..self.nrows).map(|i| self.row_nnz(i)).max().unwrap_or(0)
    }

    /// Re-check every structural invariant; see the type-level docs.
    pub fn validate(&self) -> Result<(), SparseError> {
        if self.rpts.len() != self.nrows + 1 {
            return Err(SparseError::BadRowPointers {
                detail: format!("rpts.len() = {}, nrows = {}", self.rpts.len(), self.nrows),
            });
        }
        if self.rpts[0] != 0 || *self.rpts.last().unwrap() != self.cols.len() {
            return Err(SparseError::BadRowPointers {
                detail: "endpoints do not bracket nnz".to_string(),
            });
        }
        if self.cols.len() != self.vals.len() {
            return Err(SparseError::LengthMismatch {
                cols: self.cols.len(),
                vals: self.vals.len(),
            });
        }
        for w in self.rpts.windows(2) {
            if w[1] < w[0] {
                return Err(SparseError::BadRowPointers {
                    detail: "row pointers decrease".to_string(),
                });
            }
        }
        for i in 0..self.nrows {
            for &c in self.row_cols(i) {
                if (c as usize) >= self.ncols {
                    return Err(SparseError::ColumnOutOfBounds {
                        row: i,
                        col: c,
                        ncols: self.ncols,
                    });
                }
            }
        }
        if self.sorted && !self.detect_sorted() {
            return Err(SparseError::Unsorted {
                op: "validate (sorted flag set)",
            });
        }
        Ok(())
    }

    fn detect_sorted(&self) -> bool {
        (0..self.nrows).all(|i| self.row_cols(i).windows(2).all(|w| w[0] < w[1]))
    }

    /// Sort each row by column index (values carried along), in
    /// parallel across rows. No-op when already sorted.
    pub fn sort_rows(&mut self)
    where
        T: Copy + Send,
    {
        if self.sorted {
            return;
        }
        let rpts = &self.rpts;
        // Sort each row independently: zip the two row slices through a
        // permutation computed per row.
        let nrows = self.nrows;
        let cols_ptr = std::mem::take(&mut self.cols);
        let vals_ptr = std::mem::take(&mut self.vals);
        let mut paired: Vec<(ColIdx, T)> = cols_ptr.into_iter().zip(vals_ptr).collect();
        // Per-row unstable sort; rows are disjoint slices of `paired`.
        {
            let mut rest: &mut [(ColIdx, T)] = &mut paired;
            let mut consumed = 0usize;
            let mut row_slices: Vec<&mut [(ColIdx, T)]> = Vec::with_capacity(nrows);
            for i in 0..nrows {
                let len = rpts[i + 1] - rpts[i];
                debug_assert_eq!(rpts[i], consumed);
                let (head, tail) = rest.split_at_mut(len);
                row_slices.push(head);
                rest = tail;
                consumed += len;
            }
            row_slices
                .into_par_iter()
                .for_each(|s| s.sort_unstable_by_key(|&(c, _)| c));
        }
        self.cols = paired.iter().map(|&(c, _)| c).collect();
        self.vals = paired.into_iter().map(|(_, v)| v).collect();
        self.sorted = true;
        debug_assert!(self.detect_sorted());
    }

    /// A sorted copy (cheap clone of the flag when already sorted).
    pub fn to_sorted(&self) -> Self
    where
        T: Copy + Send,
    {
        let mut c = self.clone();
        c.sort_rows();
        c
    }

    /// Apply `f` to every stored value, preserving structure.
    pub fn map<U>(&self, f: impl Fn(T) -> U) -> Csr<U>
    where
        T: Copy,
    {
        Csr {
            nrows: self.nrows,
            ncols: self.ncols,
            rpts: self.rpts.clone(),
            cols: self.cols.clone(),
            vals: self.vals.iter().map(|&v| f(v)).collect(),
            sorted: self.sorted,
        }
    }

    /// Drop stored entries failing the predicate (structure changes,
    /// sortedness preserved). Used by MCL-style pruning.
    pub fn filter(&self, keep: impl Fn(usize, ColIdx, T) -> bool) -> Csr<T>
    where
        T: Copy,
    {
        let mut rpts = Vec::with_capacity(self.nrows + 1);
        rpts.push(0usize);
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        for i in 0..self.nrows {
            for (&c, &v) in self.row_cols(i).iter().zip(self.row_vals(i)) {
                if keep(i, c, v) {
                    cols.push(c);
                    vals.push(v);
                }
            }
            rpts.push(cols.len());
        }
        Csr {
            nrows: self.nrows,
            ncols: self.ncols,
            rpts,
            cols,
            vals,
            sorted: self.sorted,
        }
    }

    /// Structural + numeric equality ignoring within-row entry order.
    /// This is the right comparison between sorted and unsorted kernel
    /// outputs.
    pub fn eq_unordered(&self, other: &Csr<T>) -> bool
    where
        T: PartialEq + Ord,
    {
        self.eq_unordered_by(other, |a, b| a == b)
    }

    /// Like [`Csr::eq_unordered`] but with a custom value comparison
    /// (e.g. approximate float equality).
    pub fn eq_unordered_by(&self, other: &Csr<T>, eq: impl Fn(&T, &T) -> bool) -> bool {
        if self.shape() != other.shape() || self.nnz() != other.nnz() {
            return false;
        }
        for i in 0..self.nrows {
            let mut a: Vec<(ColIdx, &T)> = self
                .row_cols(i)
                .iter()
                .copied()
                .zip(self.row_vals(i))
                .collect();
            let mut b: Vec<(ColIdx, &T)> = other
                .row_cols(i)
                .iter()
                .copied()
                .zip(other.row_vals(i))
                .collect();
            if a.len() != b.len() {
                return false;
            }
            a.sort_unstable_by_key(|&(c, _)| c);
            b.sort_unstable_by_key(|&(c, _)| c);
            for ((ca, va), (cb, vb)) in a.iter().zip(&b) {
                if ca != cb || !eq(va, vb) {
                    return false;
                }
            }
        }
        true
    }

    /// Reshape this matrix in place for a full overwrite, reusing the
    /// existing allocations (buffers only grow, never reallocate when
    /// capacity suffices).
    ///
    /// After the call the matrix has the requested shape, `nnz` stored
    /// entries (columns zeroed, values set to `fill`), an all-zero
    /// row-pointer array, and the given `sorted` flag — i.e. it is
    /// *structurally invalid* until the caller rewrites `rpts`, `cols`
    /// and `vals` through [`Csr::raw_parts_mut`]. This is the
    /// output-reuse path of kernels that know their exact output
    /// structure in advance (`spgemm`'s plan executor); everyone else
    /// should build matrices through the checked constructors.
    ///
    /// ```
    /// let mut c = spgemm_sparse::Csr::<f64>::zero(2, 2);
    /// c.prepare_overwrite(1, 3, 2, 0.0, true);
    /// {
    ///     let (rpts, cols, vals) = c.raw_parts_mut();
    ///     rpts.copy_from_slice(&[0, 2]);
    ///     cols.copy_from_slice(&[0, 2]);
    ///     vals.copy_from_slice(&[1.0, 2.0]);
    /// }
    /// assert!(c.validate().is_ok());
    /// assert_eq!(c.get(0, 2), Some(&2.0));
    /// ```
    pub fn prepare_overwrite(
        &mut self,
        nrows: usize,
        ncols: usize,
        nnz: usize,
        fill: T,
        sorted: bool,
    ) where
        T: Copy,
    {
        self.nrows = nrows;
        self.ncols = ncols;
        self.sorted = sorted;
        self.rpts.clear();
        self.rpts.resize(nrows + 1, 0);
        self.cols.clear();
        self.cols.resize(nnz, 0);
        self.vals.clear();
        self.vals.resize(nnz, fill);
    }

    /// Mutable views of the raw CSR arrays `(rpts, cols, vals)`, for
    /// in-place rewriting after [`Csr::prepare_overwrite`].
    ///
    /// Lengths are fixed (`nrows + 1` / `nnz` / `nnz`); the *contents*
    /// are the caller's responsibility — writing an inconsistent
    /// structure leaves the matrix invalid (no undefined behaviour,
    /// but reads will be wrong). [`Csr::validate`] re-checks every
    /// invariant.
    pub fn raw_parts_mut(&mut self) -> (&mut [usize], &mut [ColIdx], &mut [T]) {
        (&mut self.rpts, &mut self.cols, &mut self.vals)
    }

    /// Copy of the row range `rows` as its own matrix (column space
    /// unchanged). Building block of the 1D row partition used by the
    /// sharded runtime (`spgemm-dist`).
    pub fn extract_rows(&self, rows: std::ops::Range<usize>) -> Csr<T>
    where
        T: Copy,
    {
        assert!(
            rows.start <= rows.end && rows.end <= self.nrows,
            "extract_rows: range {rows:?} out of bounds for {} rows",
            self.nrows
        );
        let base = self.rpts[rows.start];
        let end = self.rpts[rows.end];
        let rpts = self.rpts[rows.clone()]
            .iter()
            .chain(std::iter::once(&end))
            .map(|&r| r - base)
            .collect();
        Csr {
            nrows: rows.len(),
            ncols: self.ncols,
            rpts,
            cols: self.cols[base..end].to_vec(),
            vals: self.vals[base..end].to_vec(),
            sorted: self.sorted || rows.is_empty(),
        }
    }

    /// Copy of the `rows × cols` sub-block with column indices rebased
    /// to the block (entry `(i, j)` of the result is entry
    /// `(rows.start + i, cols.start + j)` of `self`). Within each row,
    /// surviving entries keep their relative order, so sorted inputs
    /// yield sorted blocks. Fails with [`SparseError::BadPartition`]
    /// when either range is decreasing or out of bounds.
    pub fn extract_block(
        &self,
        rows: std::ops::Range<usize>,
        cols: std::ops::Range<usize>,
    ) -> Result<Csr<T>, SparseError>
    where
        T: Copy,
    {
        if rows.start > rows.end || rows.end > self.nrows {
            return Err(SparseError::BadPartition {
                detail: format!(
                    "extract_block: row range {rows:?} out of bounds for {} rows",
                    self.nrows
                ),
            });
        }
        if cols.start > cols.end || cols.end > self.ncols {
            return Err(SparseError::BadPartition {
                detail: format!(
                    "extract_block: column range {cols:?} out of bounds for {} columns",
                    self.ncols
                ),
            });
        }
        let parts = self
            .extract_rows(rows)
            .split_col_ranges(&[0, cols.start, cols.end, self.ncols])?;
        Ok(parts.into_iter().nth(1).expect("three ranges produced"))
    }

    /// Split into column-range sub-matrices in one pass: part `p`
    /// holds exactly the entries whose column lies in
    /// `cuts[p]..cuts[p + 1]`, with columns rebased so each part is a
    /// standalone `(nrows × (cuts[p+1] - cuts[p]))` matrix. Within each
    /// row, entries keep their relative order (sorted rows stay
    /// sorted). `cuts` must be non-decreasing and span `0..=ncols`.
    ///
    /// This is the operand-localization primitive of the sharded
    /// runtime: `A`'s row block is split at `B`'s row cuts so each
    /// stage's local product has matching inner dimensions.
    pub fn split_col_ranges(&self, cuts: &[usize]) -> Result<Vec<Csr<T>>, SparseError>
    where
        T: Copy,
    {
        validate_cuts(cuts, self.ncols, "split_col_ranges")?;
        let nparts = cuts.len() - 1;
        let mut parts: Vec<(Vec<usize>, Vec<ColIdx>, Vec<T>)> = (0..nparts)
            .map(|_| (Vec::with_capacity(self.nrows + 1), Vec::new(), Vec::new()))
            .collect();
        for p in parts.iter_mut() {
            p.0.push(0);
        }
        for i in 0..self.nrows {
            for (&c, &v) in self.row_cols(i).iter().zip(self.row_vals(i)) {
                // The part whose half-open range contains `c`: the
                // last cut `<= c` starts it.
                let p = cuts.partition_point(|&cut| cut <= c as usize) - 1;
                parts[p].1.push(c - cuts[p] as ColIdx);
                parts[p].2.push(v);
            }
            for p in parts.iter_mut() {
                p.0.push(p.1.len());
            }
        }
        Ok(parts
            .into_iter()
            .enumerate()
            .map(|(p, (rpts, cols, vals))| Csr {
                nrows: self.nrows,
                ncols: cuts[p + 1] - cuts[p],
                rpts,
                cols,
                vals,
                sorted: self.sorted,
            })
            .collect())
    }

    /// Consume into raw parts `(nrows, ncols, rpts, cols, vals, sorted)`.
    pub fn into_parts(self) -> (usize, usize, Vec<usize>, Vec<ColIdx>, Vec<T>, bool) {
        (
            self.nrows,
            self.ncols,
            self.rpts,
            self.cols,
            self.vals,
            self.sorted,
        )
    }

    /// Dense representation, for tests and tiny examples only.
    pub fn to_dense(&self) -> Vec<Vec<T>>
    where
        T: crate::Scalar,
    {
        let mut d = vec![vec![T::ZERO; self.ncols]; self.nrows];
        for (i, row) in d.iter_mut().enumerate() {
            for (&c, &v) in self.row_cols(i).iter().zip(self.row_vals(i)) {
                row[c as usize] = v;
            }
        }
        d
    }
}

/// Check that `cuts` is a valid partition of `0..dim`: at least two
/// entries, starting at 0, ending at `dim`, non-decreasing (empty
/// parts are allowed — degenerate weight vectors produce them).
pub(crate) fn validate_cuts(cuts: &[usize], dim: usize, op: &str) -> Result<(), SparseError> {
    if cuts.len() < 2 || cuts[0] != 0 || *cuts.last().unwrap() != dim {
        return Err(SparseError::BadPartition {
            detail: format!("{op}: cuts {cuts:?} must span 0..={dim}"),
        });
    }
    if cuts.windows(2).any(|w| w[1] < w[0]) {
        return Err(SparseError::BadPartition {
            detail: format!("{op}: cuts {cuts:?} decrease"),
        });
    }
    Ok(())
}

/// Approximate comparison of two `f64` matrices up to entry order, with
/// relative tolerance `rel` — SpGEMM kernels accumulate in
/// data-dependent order, so exact float equality across algorithms is
/// not guaranteed.
pub fn approx_eq_f64(a: &Csr<f64>, b: &Csr<f64>, rel: f64) -> bool {
    a.eq_unordered_by(b, |x, y| {
        let scale = x.abs().max(y.abs()).max(1.0);
        (x - y).abs() <= rel * scale
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr<f64> {
        Csr::from_parts(
            3,
            4,
            vec![0, 2, 2, 5],
            vec![1, 3, 0, 2, 3],
            vec![1.0, 2.0, 3.0, 4.0, 5.0],
        )
        .unwrap()
    }

    #[test]
    fn structure_fingerprint_tracks_pattern_not_values() {
        let m = sample();
        let scaled = m.map(|v| v * -3.0);
        assert_eq!(m.structure_fingerprint(), scaled.structure_fingerprint());
        // Moving one entry to a different column changes the pattern.
        let moved = Csr::from_parts(
            3,
            4,
            vec![0, 2, 2, 5],
            vec![1, 3, 0, 2, 1],
            vec![1.0, 2.0, 3.0, 4.0, 5.0],
        )
        .unwrap();
        assert_ne!(m.structure_fingerprint(), moved.structure_fingerprint());
        // Same nnz spread across different rows changes it too.
        let shifted =
            Csr::from_parts(3, 4, vec![0, 3, 3, 5], vec![0, 1, 3, 2, 3], vec![1.0; 5]).unwrap();
        assert_ne!(m.structure_fingerprint(), shifted.structure_fingerprint());
    }

    #[test]
    fn construction_and_accessors() {
        let m = sample();
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.nnz(), 5);
        assert!(m.is_sorted());
        assert_eq!(m.row_nnz(0), 2);
        assert_eq!(m.row_nnz(1), 0);
        assert_eq!(m.row_cols(2), &[0, 2, 3]);
        assert_eq!(m.row_vals(0), &[1.0, 2.0]);
        assert_eq!(m.get(0, 3), Some(&2.0));
        assert_eq!(m.get(1, 0), None);
        assert_eq!(m.row(2).nnz(), 3);
    }

    #[test]
    fn rejects_bad_row_pointers() {
        let e = Csr::<f64>::from_parts(2, 2, vec![0, 2], vec![0, 1], vec![1.0, 2.0]);
        assert!(matches!(e, Err(SparseError::BadRowPointers { .. })));

        let e = Csr::<f64>::from_parts(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 2.0]);
        assert!(matches!(e, Err(SparseError::BadRowPointers { .. })));

        let e = Csr::<f64>::from_parts(1, 2, vec![1, 2], vec![0, 1], vec![1.0, 2.0]);
        assert!(matches!(e, Err(SparseError::BadRowPointers { .. })));
    }

    #[test]
    fn rejects_out_of_bounds_column() {
        let e = Csr::<f64>::from_parts(1, 2, vec![0, 1], vec![5], vec![1.0]);
        assert!(matches!(
            e,
            Err(SparseError::ColumnOutOfBounds { col: 5, .. })
        ));
    }

    #[test]
    fn rejects_length_mismatch() {
        let e = Csr::<f64>::from_parts(1, 2, vec![0, 1], vec![0], vec![]);
        assert!(matches!(e, Err(SparseError::LengthMismatch { .. })));
    }

    #[test]
    fn detects_unsorted_rows() {
        let m = Csr::from_parts(1, 4, vec![0, 3], vec![2, 0, 3], vec![1.0, 2.0, 3.0]).unwrap();
        assert!(!m.is_sorted());
        let mut s = m.clone();
        s.sort_rows();
        assert!(s.is_sorted());
        assert_eq!(s.row_cols(0), &[0, 2, 3]);
        assert_eq!(s.row_vals(0), &[2.0, 1.0, 3.0]);
        assert!(approx_eq_f64(&m, &s, 0.0));
    }

    #[test]
    fn zero_and_identity() {
        let z = Csr::<f64>::zero(3, 5);
        assert_eq!(z.nnz(), 0);
        assert!(z.validate().is_ok());
        let i = Csr::<f64>::identity(4);
        assert_eq!(i.nnz(), 4);
        assert_eq!(i.get(2, 2), Some(&1.0));
        assert_eq!(i.get(2, 3), None);
    }

    #[test]
    fn from_triplets_sorts_and_last_wins() {
        let m = Csr::from_triplets(2, 3, &[(0, 2, 1.0), (0, 0, 2.0), (1, 1, 3.0), (0, 2, 9.0)])
            .unwrap();
        assert!(m.is_sorted());
        assert_eq!(m.get(0, 2), Some(&9.0), "last write wins");
        assert_eq!(m.nnz(), 3);
    }

    #[test]
    fn map_and_filter() {
        let m = sample();
        let doubled = m.map(|v| v * 2.0);
        assert_eq!(doubled.get(0, 1), Some(&2.0));
        assert_eq!(doubled.nnz(), m.nnz());

        let big = m.filter(|_, _, v| v >= 3.0);
        assert_eq!(big.nnz(), 3);
        assert!(big.validate().is_ok());
        assert!(big.is_sorted());
    }

    #[test]
    fn eq_unordered_ignores_order_only() {
        let a = Csr::from_parts(1, 3, vec![0, 2], vec![0, 2], vec![1.0, 2.0]).unwrap();
        let b = Csr::from_parts(1, 3, vec![0, 2], vec![2, 0], vec![2.0, 1.0]).unwrap();
        assert!(approx_eq_f64(&a, &b, 0.0));
        let c = Csr::from_parts(1, 3, vec![0, 2], vec![2, 0], vec![2.0, 1.5]).unwrap();
        assert!(!approx_eq_f64(&a, &c, 1e-12));
    }

    #[test]
    fn to_dense_round_trip() {
        let m = sample();
        let d = m.to_dense();
        assert_eq!(d[0][1], 1.0);
        assert_eq!(d[1], vec![0.0; 4]);
        assert_eq!(d[2][3], 5.0);
    }

    #[test]
    fn density_and_degree_stats() {
        let m = sample();
        assert!((m.density() - 5.0 / 12.0).abs() < 1e-12);
        assert!((m.avg_row_nnz() - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(m.max_row_nnz(), 3);
    }

    #[test]
    fn validate_catches_lying_sorted_flag() {
        let m = Csr {
            nrows: 1,
            ncols: 4,
            rpts: vec![0, 2],
            cols: vec![3, 1],
            vals: vec![1.0, 2.0],
            sorted: true,
        };
        assert!(matches!(m.validate(), Err(SparseError::Unsorted { .. })));
    }

    #[test]
    fn prepare_overwrite_reuses_capacity() {
        let mut c = sample();
        // Grow once to establish capacity, then shrink: no realloc.
        c.prepare_overwrite(4, 4, 8, 0.0, false);
        let (rp, cp, vp) = {
            let (r, cl, v) = c.raw_parts_mut();
            (
                r.as_ptr() as usize,
                cl.as_ptr() as usize,
                v.as_ptr() as usize,
            )
        };
        c.prepare_overwrite(2, 3, 3, 0.0, true);
        {
            let (rpts, cols, vals) = c.raw_parts_mut();
            assert_eq!((rpts.as_ptr() as usize, rpts.len()), (rp, 3));
            assert_eq!((cols.as_ptr() as usize, cols.len()), (cp, 3));
            assert_eq!((vals.as_ptr() as usize, vals.len()), (vp, 3));
            rpts.copy_from_slice(&[0, 1, 3]);
            cols.copy_from_slice(&[2, 0, 1]);
            vals.copy_from_slice(&[1.0, 2.0, 3.0]);
        }
        assert!(c.validate().is_ok());
        assert_eq!(c.shape(), (2, 3));
        assert_eq!(c.get(1, 1), Some(&3.0));
    }

    #[test]
    #[allow(clippy::reversed_empty_ranges)] // the error path under test
    fn extract_rows_and_block() {
        let m = sample(); // 3x4: row0 {1:1, 3:2}, row1 {}, row2 {0:3, 2:4, 3:5}
        let top = m.extract_rows(0..2);
        assert_eq!(top.shape(), (2, 4));
        assert_eq!(top.nnz(), 2);
        assert_eq!(top.get(0, 3), Some(&2.0));
        assert!(top.is_sorted());
        let empty = m.extract_rows(1..1);
        assert_eq!(empty.shape(), (0, 4));

        let b = m.extract_block(1..3, 2..4).unwrap();
        assert_eq!(b.shape(), (2, 2));
        assert_eq!(b.get(1, 0), Some(&4.0), "columns rebased by 2");
        assert_eq!(b.get(1, 1), Some(&5.0));
        assert_eq!(b.nnz(), 2);
        assert!(b.validate().is_ok());

        // Full-range block is the matrix itself.
        assert_eq!(m.extract_block(0..3, 0..4).unwrap(), m);
        // Bad ranges are errors, not panics.
        assert!(matches!(
            m.extract_block(2..1, 0..4),
            Err(SparseError::BadPartition { .. })
        ));
        assert!(matches!(
            m.extract_block(0..3, 2..9),
            Err(SparseError::BadPartition { .. })
        ));
    }

    #[test]
    fn split_col_ranges_localizes_and_rejects_bad_cuts() {
        let m = sample();
        let parts = m.split_col_ranges(&[0, 2, 4]).unwrap();
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].shape(), (3, 2));
        assert_eq!(parts[1].shape(), (3, 2));
        assert_eq!(parts[0].nnz() + parts[1].nnz(), m.nnz());
        assert_eq!(parts[1].get(0, 1), Some(&2.0), "entry (0,3) localized");
        assert!(m.split_col_ranges(&[0, 5]).is_err());
        assert!(m.split_col_ranges(&[1, 4]).is_err());
        assert!(m.split_col_ranges(&[0, 3, 2, 4]).is_err());
    }

    #[test]
    fn empty_matrix_edge_cases() {
        let m = Csr::<f64>::zero(0, 0);
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.density(), 0.0);
        assert_eq!(m.avg_row_nnz(), 0.0);
        assert_eq!(m.max_row_nnz(), 0);
        assert!(m.validate().is_ok());
        assert_eq!(m.iter_rows().count(), 0);
    }
}
