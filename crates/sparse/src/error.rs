//! Error type for sparse-matrix construction and I/O.

use std::fmt;

/// Errors produced when constructing, validating, or parsing sparse
/// matrices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparseError {
    /// A dimension exceeds [`crate::MAX_DIM`] (indices must fit `i32`).
    DimensionTooLarge {
        /// The offending dimension.
        dim: usize,
    },
    /// The row-pointer array is malformed (wrong length, non-monotone,
    /// or inconsistent with the index array length).
    BadRowPointers {
        /// Human-readable description of the inconsistency.
        detail: String,
    },
    /// A column index is out of bounds for the matrix width.
    ColumnOutOfBounds {
        /// Row in which the bad index appears.
        row: usize,
        /// The offending column index.
        col: u32,
        /// Number of columns in the matrix.
        ncols: usize,
    },
    /// Mismatched array lengths (`cols` vs `vals`).
    LengthMismatch {
        /// Length of the column-index array.
        cols: usize,
        /// Length of the value array.
        vals: usize,
    },
    /// Dimension mismatch between operands of a binary operation.
    ShapeMismatch {
        /// Shape of the left operand.
        left: (usize, usize),
        /// Shape of the right operand.
        right: (usize, usize),
        /// Name of the operation that failed.
        op: &'static str,
    },
    /// A matrix that must have sorted rows does not.
    Unsorted {
        /// Name of the operation that required sorted input.
        op: &'static str,
    },
    /// A precomputed execution plan was run against operands (or a
    /// thread pool) it was not built for.
    PlanMismatch {
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// A block-partition description is malformed (cuts that do not
    /// span the dimension, decrease, or disagree with block shapes).
    BadPartition {
        /// Human-readable description of the inconsistency.
        detail: String,
    },
    /// The input uses a format feature this library deliberately does
    /// not handle (e.g. `complex` Matrix Market files). Distinct from
    /// [`SparseError::Parse`]: the file may be perfectly well-formed.
    Unsupported {
        /// What was encountered, and what is supported instead.
        what: String,
    },
    /// Matrix Market parse failure.
    Parse {
        /// 1-based line number, when known.
        line: usize,
        /// Description of the problem.
        detail: String,
    },
    /// Underlying I/O failure (message only, to keep the error `Clone`).
    Io(String),
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::DimensionTooLarge { dim } => {
                write!(f, "dimension {dim} exceeds the i32 index limit")
            }
            SparseError::BadRowPointers { detail } => {
                write!(f, "malformed row pointers: {detail}")
            }
            SparseError::ColumnOutOfBounds { row, col, ncols } => {
                write!(
                    f,
                    "column index {col} in row {row} out of bounds for {ncols} columns"
                )
            }
            SparseError::LengthMismatch { cols, vals } => {
                write!(f, "cols has {cols} entries but vals has {vals}")
            }
            SparseError::ShapeMismatch { left, right, op } => write!(
                f,
                "shape mismatch in {op}: {}x{} vs {}x{}",
                left.0, left.1, right.0, right.1
            ),
            SparseError::Unsorted { op } => {
                write!(f, "{op} requires rows sorted by column index")
            }
            SparseError::PlanMismatch { detail } => {
                write!(f, "plan/operand mismatch: {detail}")
            }
            SparseError::BadPartition { detail } => {
                write!(f, "malformed partition: {detail}")
            }
            SparseError::Unsupported { what } => {
                write!(f, "unsupported input: {what}")
            }
            SparseError::Parse { line, detail } => {
                write!(f, "parse error at line {line}: {detail}")
            }
            SparseError::Io(msg) => write!(f, "I/O error: {msg}"),
        }
    }
}

impl std::error::Error for SparseError {}

impl From<std::io::Error> for SparseError {
    fn from(e: std::io::Error) -> Self {
        SparseError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_key_fields() {
        let e = SparseError::ColumnOutOfBounds {
            row: 3,
            col: 9,
            ncols: 5,
        };
        let s = e.to_string();
        assert!(s.contains('3') && s.contains('9') && s.contains('5'), "{s}");

        let e = SparseError::ShapeMismatch {
            left: (2, 3),
            right: (4, 5),
            op: "multiply",
        };
        assert!(e.to_string().contains("multiply"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: SparseError = io.into();
        assert!(matches!(e, SparseError::Io(_)));
        assert!(e.to_string().contains("gone"));
    }
}
