//! Matrix Market (`.mtx`) reading and writing.
//!
//! The paper's real-matrix experiments (Figs 14, 15, 17) use 26
//! matrices from the SuiteSparse collection, which is distributed in
//! Matrix Market coordinate format. This parser supports the subset
//! that covers the whole collection's SpGEMM-relevant files:
//! `matrix coordinate {real|integer|pattern} {general|symmetric}`.
//! Symmetric files are expanded to full storage (both triangles), and
//! pattern files get unit values — the same conventions the paper's
//! harness uses.

use crate::{ColIdx, Coo, Csr, SparseError};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Matrix Market value field of a coordinate file.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Field {
    /// Floating-point values (`%%MatrixMarket matrix coordinate real`).
    #[default]
    Real,
    /// Integer values, read as `f64`.
    Integer,
    /// Structure only; entries get unit values on read.
    Pattern,
}

/// Matrix Market symmetry of a coordinate file.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Symmetry {
    /// Every entry stored explicitly.
    #[default]
    General,
    /// Only the lower triangle stored; reading mirrors off-diagonal
    /// entries.
    Symmetric,
}

/// Read a Matrix Market file from disk into a sorted CSR of `f64`.
pub fn read_matrix_market(path: impl AsRef<Path>) -> Result<Csr<f64>, SparseError> {
    let f = std::fs::File::open(path)?;
    read_matrix_market_from(BufReader::new(f))
}

/// Read Matrix Market data from any reader.
pub fn read_matrix_market_from(reader: impl Read) -> Result<Csr<f64>, SparseError> {
    let mut lines = BufReader::new(reader).lines().enumerate();

    // --- header line ---
    let (mut lineno, header) = loop {
        match lines.next() {
            Some((n, line)) => {
                let line = line?;
                if !line.trim().is_empty() {
                    break (n + 1, line);
                }
            }
            None => {
                return Err(SparseError::Parse {
                    line: 0,
                    detail: "empty file".into(),
                })
            }
        }
    };
    let toks: Vec<&str> = header.split_whitespace().collect();
    if toks.len() < 5 || !toks[0].eq_ignore_ascii_case("%%MatrixMarket") {
        return Err(SparseError::Parse {
            line: lineno,
            detail: format!("bad header: {header:?}"),
        });
    }
    if !toks[1].eq_ignore_ascii_case("matrix") || !toks[2].eq_ignore_ascii_case("coordinate") {
        return Err(SparseError::Parse {
            line: lineno,
            detail: "only 'matrix coordinate' files are supported".into(),
        });
    }
    let field = match toks[3].to_ascii_lowercase().as_str() {
        "real" => Field::Real,
        "integer" => Field::Integer,
        "pattern" => Field::Pattern,
        // A well-formed file we deliberately don't model: say so up
        // front at the header rather than failing on an entry line
        // deep into the file.
        "complex" => {
            return Err(SparseError::Unsupported {
                what: "Matrix Market 'complex' field (this library stores real matrices; \
                       split the file into real and imaginary parts)"
                    .into(),
            })
        }
        other => {
            return Err(SparseError::Parse {
                line: lineno,
                detail: format!("unknown field type {other:?}"),
            })
        }
    };
    let symmetry = match toks[4].to_ascii_lowercase().as_str() {
        "general" => Symmetry::General,
        "symmetric" => Symmetry::Symmetric,
        other @ ("hermitian" | "skew-symmetric") => {
            return Err(SparseError::Unsupported {
                what: format!(
                    "Matrix Market {other:?} symmetry (general and symmetric are supported)"
                ),
            })
        }
        other => {
            return Err(SparseError::Parse {
                line: lineno,
                detail: format!("unknown symmetry {other:?}"),
            })
        }
    };

    // --- size line (after comments) ---
    let size_line = loop {
        match lines.next() {
            Some((n, line)) => {
                lineno = n + 1;
                let line = line?;
                let t = line.trim();
                if t.is_empty() || t.starts_with('%') {
                    continue;
                }
                break line;
            }
            None => {
                return Err(SparseError::Parse {
                    line: lineno,
                    detail: "missing size line".into(),
                })
            }
        }
    };
    let dims: Vec<&str> = size_line.split_whitespace().collect();
    if dims.len() != 3 {
        return Err(SparseError::Parse {
            line: lineno,
            detail: format!("size line needs 3 fields, got {dims:?}"),
        });
    }
    let parse_usize = |s: &str, what: &str| -> Result<usize, SparseError> {
        s.parse().map_err(|_| SparseError::Parse {
            line: lineno,
            detail: format!("bad {what}: {s:?}"),
        })
    };
    let nrows = parse_usize(dims[0], "row count")?;
    let ncols = parse_usize(dims[1], "column count")?;
    let nnz = parse_usize(dims[2], "nnz count")?;

    let cap = match symmetry {
        Symmetry::General => nnz,
        Symmetry::Symmetric => nnz * 2,
    };
    let mut coo = Coo::with_capacity(nrows, ncols, cap)?;
    let mut seen = 0usize;
    for (n, line) in lines {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let lineno = n + 1;
        let mut it = t.split_whitespace();
        let r: usize =
            it.next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| SparseError::Parse {
                    line: lineno,
                    detail: "bad row index".into(),
                })?;
        let c: usize =
            it.next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| SparseError::Parse {
                    line: lineno,
                    detail: "bad col index".into(),
                })?;
        if r == 0 || c == 0 {
            return Err(SparseError::Parse {
                line: lineno,
                detail: "Matrix Market indices are 1-based".into(),
            });
        }
        let v: f64 = match field {
            Field::Pattern => 1.0,
            Field::Real | Field::Integer => {
                it.next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| SparseError::Parse {
                        line: lineno,
                        detail: "bad value".into(),
                    })?
            }
        };
        let (r0, c0) = (r - 1, (c - 1) as ColIdx);
        coo.push(r0, c0, v)?;
        if symmetry == Symmetry::Symmetric && r != c {
            coo.push(c - 1, (r - 1) as ColIdx, v)?;
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(SparseError::Parse {
            line: lineno,
            detail: format!("size line promised {nnz} entries, file had {seen}"),
        });
    }
    Ok(coo.into_csr_sum())
}

/// How [`write_matrix_market_to_with`] spells a matrix.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WriteOptions {
    /// Value field of the emitted file. `Pattern` drops the values
    /// (reading restores unit values); `Integer` formats values with
    /// their fraction truncated.
    pub field: Field,
    /// `Symmetric` stores only the lower triangle; the matrix must be
    /// square and structurally + numerically symmetric (checked, since
    /// a reader reconstructs the mirror from our word for it).
    pub symmetry: Symmetry,
    /// Emit `real` values in scientific notation (`1.5e3`); both
    /// spellings parse back to the identical `f64`.
    pub scientific: bool,
}

/// Write a CSR matrix as `matrix coordinate real general`.
pub fn write_matrix_market(path: impl AsRef<Path>, m: &Csr<f64>) -> Result<(), SparseError> {
    let f = std::fs::File::create(path)?;
    write_matrix_market_to(BufWriter::new(f), m)
}

/// Write Matrix Market data to any writer (`real general` layout).
pub fn write_matrix_market_to(w: impl Write, m: &Csr<f64>) -> Result<(), SparseError> {
    write_matrix_market_to_with(w, m, WriteOptions::default())
}

/// Write Matrix Market data with an explicit field/symmetry/notation
/// choice. A `Symmetric` request for a matrix that is not symmetric
/// fails with [`SparseError::Unsupported`] before any entry is
/// emitted.
pub fn write_matrix_market_to_with(
    mut w: impl Write,
    m: &Csr<f64>,
    opts: WriteOptions,
) -> Result<(), SparseError> {
    if opts.symmetry == Symmetry::Symmetric {
        // Pattern files carry no values, so only the *structure* needs
        // a mirror; real/integer files must also agree numerically.
        check_symmetric(m, opts.field != Field::Pattern)?;
    }
    let field = match opts.field {
        Field::Real => "real",
        Field::Integer => "integer",
        Field::Pattern => "pattern",
    };
    let symmetry = match opts.symmetry {
        Symmetry::General => "general",
        Symmetry::Symmetric => "symmetric",
    };
    writeln!(w, "%%MatrixMarket matrix coordinate {field} {symmetry}")?;
    writeln!(w, "% written by spgemm-sparse")?;
    // Symmetric storage counts only the lower triangle.
    let stored = |i: usize, c: ColIdx| opts.symmetry == Symmetry::General || c as usize <= i;
    let nnz = (0..m.nrows())
        .map(|i| m.row_cols(i).iter().filter(|&&c| stored(i, c)).count())
        .sum::<usize>();
    writeln!(w, "{} {} {}", m.nrows(), m.ncols(), nnz)?;
    for i in 0..m.nrows() {
        for (&c, &v) in m.row_cols(i).iter().zip(m.row_vals(i)) {
            if !stored(i, c) {
                continue;
            }
            match opts.field {
                Field::Pattern => writeln!(w, "{} {}", i + 1, c + 1)?,
                Field::Integer => writeln!(w, "{} {} {}", i + 1, c + 1, v.trunc() as i64)?,
                Field::Real if opts.scientific => writeln!(w, "{} {} {:e}", i + 1, c + 1, v)?,
                Field::Real => writeln!(w, "{} {} {}", i + 1, c + 1, v)?,
            }
        }
    }
    w.flush()?;
    Ok(())
}

/// Symmetric-write precondition: square, and every `(i, j, v)` has a
/// mirror `(j, i, _)` — with an equal value when `check_values` (i.e.
/// for any field that stores values).
fn check_symmetric(m: &Csr<f64>, check_values: bool) -> Result<(), SparseError> {
    if m.nrows() != m.ncols() {
        return Err(SparseError::Unsupported {
            what: format!(
                "symmetric Matrix Market write of a non-square {}x{} matrix",
                m.nrows(),
                m.ncols()
            ),
        });
    }
    for i in 0..m.nrows() {
        for (&c, &v) in m.row_cols(i).iter().zip(m.row_vals(i)) {
            let ok = match m.get(c as usize, i as ColIdx) {
                Some(mirror) => !check_values || *mirror == v,
                None => false,
            };
            if !ok {
                return Err(SparseError::Unsupported {
                    what: format!(
                        "symmetric Matrix Market write: entry ({i}, {c}) has no equal mirror"
                    ),
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_general_real() {
        let text = "%%MatrixMarket matrix coordinate real general\n\
                    % a comment\n\
                    3 3 4\n\
                    1 1 2.0\n\
                    1 3 -1.5\n\
                    2 2 4\n\
                    3 1 1e2\n";
        let m = read_matrix_market_from(text.as_bytes()).unwrap();
        assert_eq!(m.shape(), (3, 3));
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.get(0, 0), Some(&2.0));
        assert_eq!(m.get(0, 2), Some(&-1.5));
        assert_eq!(m.get(2, 0), Some(&100.0));
        assert!(m.is_sorted());
    }

    #[test]
    fn parse_symmetric_expands() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n\
                    2 2 2\n\
                    1 1 1.0\n\
                    2 1 5.0\n";
        let m = read_matrix_market_from(text.as_bytes()).unwrap();
        assert_eq!(m.nnz(), 3, "off-diagonal mirrored, diagonal not doubled");
        assert_eq!(m.get(0, 1), Some(&5.0));
        assert_eq!(m.get(1, 0), Some(&5.0));
        assert_eq!(m.get(0, 0), Some(&1.0));
    }

    #[test]
    fn parse_pattern_gets_unit_values() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n\
                    2 3 2\n\
                    1 2\n\
                    2 3\n";
        let m = read_matrix_market_from(text.as_bytes()).unwrap();
        assert_eq!(m.get(0, 1), Some(&1.0));
        assert_eq!(m.get(1, 2), Some(&1.0));
    }

    #[test]
    fn rejects_bad_headers() {
        assert!(read_matrix_market_from("garbage\n1 1 0\n".as_bytes()).is_err());
        assert!(read_matrix_market_from(
            "%%MatrixMarket matrix array real general\n1 1 0\n".as_bytes()
        )
        .is_err());
    }

    #[test]
    fn complex_header_is_a_clear_unsupported_error() {
        // A well-formed complex file: the error comes at the header
        // (as Unsupported, naming the feature), not as a Parse failure
        // on the 4-token entry lines further down.
        let text = "%%MatrixMarket matrix coordinate complex general\n\
                    2 2 2\n\
                    1 1 1.0 0.5\n\
                    2 2 2.0 -0.5\n";
        match read_matrix_market_from(text.as_bytes()) {
            Err(SparseError::Unsupported { what }) => {
                assert!(what.contains("complex"), "{what}")
            }
            other => panic!("expected Unsupported, got {other:?}"),
        }
        // Hermitian / skew-symmetric likewise.
        let text = "%%MatrixMarket matrix coordinate real skew-symmetric\n1 1 0\n";
        assert!(matches!(
            read_matrix_market_from(text.as_bytes()),
            Err(SparseError::Unsupported { .. })
        ));
    }

    #[test]
    fn write_symmetric_stores_lower_triangle_only() {
        let m = Csr::from_triplets(3, 3, &[(0, 0, 1.0), (0, 2, 5.0), (2, 0, 5.0), (1, 1, 2.0)])
            .unwrap();
        let mut buf = Vec::new();
        write_matrix_market_to_with(
            &mut buf,
            &m,
            WriteOptions {
                symmetry: Symmetry::Symmetric,
                ..WriteOptions::default()
            },
        )
        .unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.contains("real symmetric"));
        assert!(text.contains("3 3 3"), "one mirror dropped: {text}");
        let back = read_matrix_market_from(buf.as_slice()).unwrap();
        assert_eq!(back, m, "expansion restores the full matrix");
    }

    #[test]
    fn write_symmetric_rejects_asymmetric_input() {
        let m = Csr::from_triplets(2, 2, &[(0, 1, 3.0)]).unwrap();
        let e = write_matrix_market_to_with(
            &mut Vec::new(),
            &m,
            WriteOptions {
                symmetry: Symmetry::Symmetric,
                ..WriteOptions::default()
            },
        );
        assert!(matches!(e, Err(SparseError::Unsupported { .. })), "{e:?}");
        let rect = Csr::<f64>::zero(2, 3);
        assert!(write_matrix_market_to_with(
            &mut Vec::new(),
            &rect,
            WriteOptions {
                symmetry: Symmetry::Symmetric,
                ..WriteOptions::default()
            },
        )
        .is_err());
    }

    #[test]
    fn pattern_symmetric_needs_only_structural_symmetry() {
        // Structurally symmetric, numerically asymmetric: fine as a
        // pattern file (values are dropped anyway), rejected as real.
        let m = Csr::from_triplets(2, 2, &[(0, 1, 5.0), (1, 0, 3.0)]).unwrap();
        let sym_opts = |field| WriteOptions {
            field,
            symmetry: Symmetry::Symmetric,
            ..WriteOptions::default()
        };
        let mut buf = Vec::new();
        write_matrix_market_to_with(&mut buf, &m, sym_opts(Field::Pattern)).unwrap();
        let back = read_matrix_market_from(buf.as_slice()).unwrap();
        assert_eq!(back, m.map(|_| 1.0), "structure round-trips");
        assert!(matches!(
            write_matrix_market_to_with(&mut Vec::new(), &m, sym_opts(Field::Real)),
            Err(SparseError::Unsupported { .. })
        ));
    }

    #[test]
    fn write_pattern_and_scientific_round_trip() {
        let m = Csr::from_triplets(2, 3, &[(0, 1, 1.0), (1, 2, 1.0)]).unwrap();
        let mut buf = Vec::new();
        write_matrix_market_to_with(
            &mut buf,
            &m,
            WriteOptions {
                field: Field::Pattern,
                ..WriteOptions::default()
            },
        )
        .unwrap();
        assert!(String::from_utf8(buf.clone()).unwrap().contains("pattern"));
        assert_eq!(read_matrix_market_from(buf.as_slice()).unwrap(), m);

        let m = Csr::from_triplets(1, 2, &[(0, 0, 1.25e-30), (0, 1, -7.5e18)]).unwrap();
        let mut buf = Vec::new();
        write_matrix_market_to_with(
            &mut buf,
            &m,
            WriteOptions {
                scientific: true,
                ..WriteOptions::default()
            },
        )
        .unwrap();
        assert!(String::from_utf8(buf.clone()).unwrap().contains('e'));
        assert_eq!(
            read_matrix_market_from(buf.as_slice()).unwrap(),
            m,
            "scientific notation parses back bit-exact"
        );
    }

    #[test]
    fn rejects_zero_based_indices() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 3.0\n";
        let e = read_matrix_market_from(text.as_bytes());
        assert!(matches!(e, Err(SparseError::Parse { .. })));
    }

    #[test]
    fn rejects_wrong_entry_count() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1.0\n";
        assert!(read_matrix_market_from(text.as_bytes()).is_err());
    }

    #[test]
    fn round_trip() {
        let m = Csr::from_triplets(3, 4, &[(0, 1, 1.5), (1, 0, -2.0), (2, 3, 7.25)]).unwrap();
        let mut buf = Vec::new();
        write_matrix_market_to(&mut buf, &m).unwrap();
        let back = read_matrix_market_from(buf.as_slice()).unwrap();
        assert_eq!(back.shape(), m.shape());
        assert!(crate::csr::approx_eq_f64(&m, &back, 0.0));
    }

    #[test]
    fn duplicate_entries_sum_per_mm_convention() {
        let text = "%%MatrixMarket matrix coordinate real general\n\
                    1 1 2\n\
                    1 1 1.0\n\
                    1 1 2.0\n";
        let m = read_matrix_market_from(text.as_bytes()).unwrap();
        assert_eq!(m.get(0, 0), Some(&3.0));
    }
}
