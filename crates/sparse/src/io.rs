//! Matrix Market (`.mtx`) reading and writing.
//!
//! The paper's real-matrix experiments (Figs 14, 15, 17) use 26
//! matrices from the SuiteSparse collection, which is distributed in
//! Matrix Market coordinate format. This parser supports the subset
//! that covers the whole collection's SpGEMM-relevant files:
//! `matrix coordinate {real|integer|pattern} {general|symmetric}`.
//! Symmetric files are expanded to full storage (both triangles), and
//! pattern files get unit values — the same conventions the paper's
//! harness uses.

use crate::{ColIdx, Coo, Csr, SparseError};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Field {
    Real,
    Integer,
    Pattern,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Symmetry {
    General,
    Symmetric,
}

/// Read a Matrix Market file from disk into a sorted CSR of `f64`.
pub fn read_matrix_market(path: impl AsRef<Path>) -> Result<Csr<f64>, SparseError> {
    let f = std::fs::File::open(path)?;
    read_matrix_market_from(BufReader::new(f))
}

/// Read Matrix Market data from any reader.
pub fn read_matrix_market_from(reader: impl Read) -> Result<Csr<f64>, SparseError> {
    let mut lines = BufReader::new(reader).lines().enumerate();

    // --- header line ---
    let (mut lineno, header) = loop {
        match lines.next() {
            Some((n, line)) => {
                let line = line?;
                if !line.trim().is_empty() {
                    break (n + 1, line);
                }
            }
            None => {
                return Err(SparseError::Parse {
                    line: 0,
                    detail: "empty file".into(),
                })
            }
        }
    };
    let toks: Vec<&str> = header.split_whitespace().collect();
    if toks.len() < 5 || !toks[0].eq_ignore_ascii_case("%%MatrixMarket") {
        return Err(SparseError::Parse {
            line: lineno,
            detail: format!("bad header: {header:?}"),
        });
    }
    if !toks[1].eq_ignore_ascii_case("matrix") || !toks[2].eq_ignore_ascii_case("coordinate") {
        return Err(SparseError::Parse {
            line: lineno,
            detail: "only 'matrix coordinate' files are supported".into(),
        });
    }
    let field = match toks[3].to_ascii_lowercase().as_str() {
        "real" => Field::Real,
        "integer" => Field::Integer,
        "pattern" => Field::Pattern,
        other => {
            return Err(SparseError::Parse {
                line: lineno,
                detail: format!("unsupported field type {other:?}"),
            })
        }
    };
    let symmetry = match toks[4].to_ascii_lowercase().as_str() {
        "general" => Symmetry::General,
        "symmetric" => Symmetry::Symmetric,
        other => {
            return Err(SparseError::Parse {
                line: lineno,
                detail: format!("unsupported symmetry {other:?}"),
            })
        }
    };

    // --- size line (after comments) ---
    let size_line = loop {
        match lines.next() {
            Some((n, line)) => {
                lineno = n + 1;
                let line = line?;
                let t = line.trim();
                if t.is_empty() || t.starts_with('%') {
                    continue;
                }
                break line;
            }
            None => {
                return Err(SparseError::Parse {
                    line: lineno,
                    detail: "missing size line".into(),
                })
            }
        }
    };
    let dims: Vec<&str> = size_line.split_whitespace().collect();
    if dims.len() != 3 {
        return Err(SparseError::Parse {
            line: lineno,
            detail: format!("size line needs 3 fields, got {dims:?}"),
        });
    }
    let parse_usize = |s: &str, what: &str| -> Result<usize, SparseError> {
        s.parse().map_err(|_| SparseError::Parse {
            line: lineno,
            detail: format!("bad {what}: {s:?}"),
        })
    };
    let nrows = parse_usize(dims[0], "row count")?;
    let ncols = parse_usize(dims[1], "column count")?;
    let nnz = parse_usize(dims[2], "nnz count")?;

    let cap = match symmetry {
        Symmetry::General => nnz,
        Symmetry::Symmetric => nnz * 2,
    };
    let mut coo = Coo::with_capacity(nrows, ncols, cap)?;
    let mut seen = 0usize;
    for (n, line) in lines {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let lineno = n + 1;
        let mut it = t.split_whitespace();
        let r: usize =
            it.next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| SparseError::Parse {
                    line: lineno,
                    detail: "bad row index".into(),
                })?;
        let c: usize =
            it.next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| SparseError::Parse {
                    line: lineno,
                    detail: "bad col index".into(),
                })?;
        if r == 0 || c == 0 {
            return Err(SparseError::Parse {
                line: lineno,
                detail: "Matrix Market indices are 1-based".into(),
            });
        }
        let v: f64 = match field {
            Field::Pattern => 1.0,
            Field::Real | Field::Integer => {
                it.next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| SparseError::Parse {
                        line: lineno,
                        detail: "bad value".into(),
                    })?
            }
        };
        let (r0, c0) = (r - 1, (c - 1) as ColIdx);
        coo.push(r0, c0, v)?;
        if symmetry == Symmetry::Symmetric && r != c {
            coo.push(c - 1, (r - 1) as ColIdx, v)?;
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(SparseError::Parse {
            line: lineno,
            detail: format!("size line promised {nnz} entries, file had {seen}"),
        });
    }
    Ok(coo.into_csr_sum())
}

/// Write a CSR matrix as `matrix coordinate real general`.
pub fn write_matrix_market(path: impl AsRef<Path>, m: &Csr<f64>) -> Result<(), SparseError> {
    let f = std::fs::File::create(path)?;
    write_matrix_market_to(BufWriter::new(f), m)
}

/// Write Matrix Market data to any writer.
pub fn write_matrix_market_to(mut w: impl Write, m: &Csr<f64>) -> Result<(), SparseError> {
    writeln!(w, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(w, "% written by spgemm-sparse")?;
    writeln!(w, "{} {} {}", m.nrows(), m.ncols(), m.nnz())?;
    for i in 0..m.nrows() {
        for (&c, &v) in m.row_cols(i).iter().zip(m.row_vals(i)) {
            writeln!(w, "{} {} {}", i + 1, c + 1, v)?;
        }
    }
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_general_real() {
        let text = "%%MatrixMarket matrix coordinate real general\n\
                    % a comment\n\
                    3 3 4\n\
                    1 1 2.0\n\
                    1 3 -1.5\n\
                    2 2 4\n\
                    3 1 1e2\n";
        let m = read_matrix_market_from(text.as_bytes()).unwrap();
        assert_eq!(m.shape(), (3, 3));
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.get(0, 0), Some(&2.0));
        assert_eq!(m.get(0, 2), Some(&-1.5));
        assert_eq!(m.get(2, 0), Some(&100.0));
        assert!(m.is_sorted());
    }

    #[test]
    fn parse_symmetric_expands() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n\
                    2 2 2\n\
                    1 1 1.0\n\
                    2 1 5.0\n";
        let m = read_matrix_market_from(text.as_bytes()).unwrap();
        assert_eq!(m.nnz(), 3, "off-diagonal mirrored, diagonal not doubled");
        assert_eq!(m.get(0, 1), Some(&5.0));
        assert_eq!(m.get(1, 0), Some(&5.0));
        assert_eq!(m.get(0, 0), Some(&1.0));
    }

    #[test]
    fn parse_pattern_gets_unit_values() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n\
                    2 3 2\n\
                    1 2\n\
                    2 3\n";
        let m = read_matrix_market_from(text.as_bytes()).unwrap();
        assert_eq!(m.get(0, 1), Some(&1.0));
        assert_eq!(m.get(1, 2), Some(&1.0));
    }

    #[test]
    fn rejects_bad_headers() {
        assert!(read_matrix_market_from("garbage\n1 1 0\n".as_bytes()).is_err());
        assert!(read_matrix_market_from(
            "%%MatrixMarket matrix array real general\n1 1 0\n".as_bytes()
        )
        .is_err());
        assert!(read_matrix_market_from(
            "%%MatrixMarket matrix coordinate complex general\n1 1 0\n".as_bytes()
        )
        .is_err());
    }

    #[test]
    fn rejects_zero_based_indices() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 3.0\n";
        let e = read_matrix_market_from(text.as_bytes());
        assert!(matches!(e, Err(SparseError::Parse { .. })));
    }

    #[test]
    fn rejects_wrong_entry_count() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1.0\n";
        assert!(read_matrix_market_from(text.as_bytes()).is_err());
    }

    #[test]
    fn round_trip() {
        let m = Csr::from_triplets(3, 4, &[(0, 1, 1.5), (1, 0, -2.0), (2, 3, 7.25)]).unwrap();
        let mut buf = Vec::new();
        write_matrix_market_to(&mut buf, &m).unwrap();
        let back = read_matrix_market_from(buf.as_slice()).unwrap();
        assert_eq!(back.shape(), m.shape());
        assert!(crate::csr::approx_eq_f64(&m, &back, 0.0));
    }

    #[test]
    fn duplicate_entries_sum_per_mm_convention() {
        let text = "%%MatrixMarket matrix coordinate real general\n\
                    1 1 2\n\
                    1 1 1.0\n\
                    1 1 2.0\n";
        let m = read_matrix_market_from(text.as_bytes()).unwrap();
        assert_eq!(m.get(0, 0), Some(&3.0));
    }
}
