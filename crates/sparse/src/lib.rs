//! Sparse matrix substrate for the SpGEMM reproduction of
//! Nagasaka, Matsuoka, Azad & Buluç, *"High-performance sparse
//! matrix-matrix products on Intel KNL and multicore architectures"*
//! (ICPP 2018).
//!
//! This crate provides everything the SpGEMM kernels and the evaluation
//! harness need from a sparse-matrix library:
//!
//! * [`Csr`] — Compressed Sparse Row storage with explicit tracking of
//!   whether rows are sorted by column index. The paper's evaluation
//!   hinges on the sorted/unsorted distinction (§2, Table 1), so
//!   sortedness is a first-class, checked property here rather than an
//!   implicit convention.
//! * [`Coo`] — triplet storage used for construction and I/O.
//! * [`ops`] — transpose, permutation, triangular splitting, degree
//!   reordering, element-wise addition and masked reductions: the
//!   structural operations required by the paper's use cases
//!   (triangle counting §5.6, tall-skinny BFS §5.5).
//! * [`stats`] — structural analysis: `flop` counting (the number of
//!   non-trivial scalar multiplications, the paper's work measure),
//!   per-row flop vectors used by the load balancer of §4.1, and
//!   compression-ratio helpers for §5.4.4.
//! * [`io`] — Matrix Market reading/writing so the harness can run on
//!   the real SuiteSparse collection when available.
//! * [`PartitionedCsr`] — block-partitioned storage (1D block-row and
//!   2D grids with flop-balanced cuts), the substrate of the sharded
//!   runtime in `spgemm-dist`.
//! * [`Scalar`] / [`Semiring`] — the element algebra. Kernels are
//!   generic over a semiring so that graph workloads (boolean BFS,
//!   counting) reuse the exact same code paths as numeric ones.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod coo;
mod csc;
mod csr;
pub mod delta;
mod error;
pub mod io;
pub mod ops;
pub mod partitioned;
mod scalar;
mod semiring;
pub mod stats;

pub use coo::Coo;
pub use csc::Csc;
pub use csr::{approx_eq_f64, Csr, RowView};
pub use delta::{DirtyRows, RowPatch};
pub use error::SparseError;
pub use partitioned::PartitionedCsr;
pub use scalar::Scalar;
pub use semiring::{MaxTimes, OrAnd, PlusTimes, Semiring};

/// Column-index type used throughout the project.
///
/// The paper's vectorized hash probing (§4.2.2) represents keys as
/// 32-bit integers so that 8 (AVX2) or 16 (AVX-512) of them fit in one
/// vector register; we adopt the same representation globally. Matrices
/// are therefore limited to `i32::MAX` columns, comfortably above the
/// paper's largest inputs (scale 24, i.e. 2^24 columns).
pub type ColIdx = u32;

/// Maximum representable column count (hash tables reserve `-1` as the
/// empty-slot marker, so indices must fit in an `i32`).
pub const MAX_DIM: usize = i32::MAX as usize;
