//! Structural analysis: flop counting and compression ratios.
//!
//! The paper measures SpGEMM work in `flop` — the number of non-trivial
//! scalar multiplications `a_ik · b_kj` with both operands stored
//! (§2). `flop` is computable from the two structures alone in
//! `O(nnz(A))`, which is what makes the flop-balanced scheduler of §4.1
//! cheap, and `flop / nnz(C)` is the *compression ratio* that organizes
//! the real-matrix evaluation (§5.4.4, Figs 14/15/17).

use crate::Csr;
use rayon::prelude::*;

/// Number of scalar multiplications required by `A · B`, per row of the
/// output: `flop(c_i*) = Σ_{k ∈ a_i*} nnz(b_k*)`.
///
/// Panics if the inner dimensions disagree (programmer error — callers
/// validate shapes at the API boundary).
pub fn row_flops<T: Copy + Send + Sync, U: Copy + Send + Sync>(a: &Csr<T>, b: &Csr<U>) -> Vec<u64> {
    assert_eq!(
        a.ncols(),
        b.nrows(),
        "row_flops: inner dimensions {} vs {}",
        a.ncols(),
        b.nrows()
    );
    let brpts = b.rpts();
    (0..a.nrows())
        .into_par_iter()
        .map(|i| {
            a.row_cols(i)
                .iter()
                .map(|&k| (brpts[k as usize + 1] - brpts[k as usize]) as u64)
                .sum()
        })
        .collect()
}

/// Total `flop` of `A · B` (the sum of [`row_flops`]).
pub fn flop<T: Copy + Send + Sync, U: Copy + Send + Sync>(a: &Csr<T>, b: &Csr<U>) -> u64 {
    assert_eq!(a.ncols(), b.nrows());
    let brpts = b.rpts();
    a.cols()
        .par_iter()
        .map(|&k| (brpts[k as usize + 1] - brpts[k as usize]) as u64)
        .sum()
}

/// Compression ratio `flop / nnz(C)` given a known output size.
/// Values near 1 mean almost every intermediate product survives as its
/// own output entry (graph-like inputs); large values mean heavy
/// accumulation (regular/FEM-like inputs).
pub fn compression_ratio(flop: u64, nnz_c: usize) -> f64 {
    if nnz_c == 0 {
        0.0
    } else {
        flop as f64 / nnz_c as f64
    }
}

/// Descriptive statistics of a matrix structure, in the shape of the
/// paper's Table 2 (counts reported in raw units, not millions).
#[derive(Clone, Debug, PartialEq)]
pub struct StructureStats {
    /// Number of rows.
    pub nrows: usize,
    /// Number of columns.
    pub ncols: usize,
    /// Number of stored entries.
    pub nnz: usize,
    /// Mean entries per row.
    pub avg_row_nnz: f64,
    /// Largest row.
    pub max_row_nnz: usize,
    /// Coefficient of variation of row sizes (std/mean) — the skew
    /// indicator separating "uniform" from "skewed" in Table 4b.
    pub row_cv: f64,
}

/// Compute [`StructureStats`].
pub fn structure_stats<T: Copy + Send + Sync>(a: &Csr<T>) -> StructureStats {
    let n = a.nrows();
    let nnz = a.nnz();
    let mean = if n == 0 { 0.0 } else { nnz as f64 / n as f64 };
    let mut var = 0.0f64;
    let mut max = 0usize;
    for i in 0..n {
        let d = a.row_nnz(i);
        max = max.max(d);
        let diff = d as f64 - mean;
        var += diff * diff;
    }
    let row_cv = if n == 0 || mean == 0.0 {
        0.0
    } else {
        (var / n as f64).sqrt() / mean
    };
    StructureStats {
        nrows: n,
        ncols: a.ncols(),
        nnz,
        avg_row_nnz: mean,
        max_row_nnz: max,
        row_cv,
    }
}

/// Per-row upper bound for `nnz(c_i*)`: `min(flop(c_i*), ncols(B))`.
/// Used to size hash tables (§4.2.1: "Required maximum hash table size
/// is Ncol").
pub fn row_nnz_upper_bounds(row_flops: &[u64], ncols_b: usize) -> Vec<usize> {
    row_flops
        .iter()
        .map(|&f| (f as usize).min(ncols_b))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a() -> Csr<f64> {
        // [ x x . ]
        // [ . . x ]
        Csr::from_triplets(2, 3, &[(0, 0, 1.0), (0, 1, 1.0), (1, 2, 1.0)]).unwrap()
    }

    fn b() -> Csr<f64> {
        // [ x . ]
        // [ x x ]
        // [ . x ]
        Csr::from_triplets(3, 2, &[(0, 0, 1.0), (1, 0, 1.0), (1, 1, 1.0), (2, 1, 1.0)]).unwrap()
    }

    #[test]
    fn row_flops_counts_b_row_sizes() {
        let rf = row_flops(&a(), &b());
        // row 0 touches B rows 0 (1 nnz) and 1 (2 nnz) -> 3
        // row 1 touches B row 2 (1 nnz) -> 1
        assert_eq!(rf, vec![3, 1]);
        assert_eq!(flop(&a(), &b()), 4);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn row_flops_panics_on_shape_mismatch() {
        let _ = row_flops(&b(), &b());
    }

    #[test]
    fn flop_of_empty_is_zero() {
        let z = Csr::<f64>::zero(4, 4);
        assert_eq!(flop(&z, &z), 0);
        assert_eq!(row_flops(&z, &z), vec![0; 4]);
    }

    #[test]
    fn compression_ratio_basics() {
        assert_eq!(compression_ratio(100, 50), 2.0);
        assert_eq!(compression_ratio(0, 0), 0.0);
        assert_eq!(compression_ratio(7, 7), 1.0);
    }

    #[test]
    fn structure_stats_on_sample() {
        let s = structure_stats(&a());
        assert_eq!(s.nnz, 3);
        assert_eq!(s.max_row_nnz, 2);
        assert!((s.avg_row_nnz - 1.5).abs() < 1e-12);
        assert!(s.row_cv > 0.0);

        let uniform = Csr::<f64>::identity(5);
        let su = structure_stats(&uniform);
        assert_eq!(su.row_cv, 0.0, "identity has perfectly uniform rows");
    }

    #[test]
    fn upper_bounds_clamped_by_ncols() {
        let ub = row_nnz_upper_bounds(&[3, 100, 0], 8);
        assert_eq!(ub, vec![3, 8, 0]);
    }
}
