//! Compressed Sparse Column storage.
//!
//! The paper's algorithms are row-wise, but several of the workloads
//! around them want column access: MCL normalizes columns, AMG
//! restriction is the transpose of prolongation, and SPA blocking à la
//! Patwary et al. partitions `B` by columns. `Csc` provides the
//! column-major view with cheap, loss-less conversion to and from
//! [`Csr`] (a structural transpose).

use crate::{ColIdx, Csr, SparseError};

/// A sparse matrix in Compressed Sparse Column format: `cpts` of
/// length `ncols + 1`, row indices `rows`, and values, with the same
/// invariants as [`Csr`] transposed.
#[derive(Clone, Debug, PartialEq)]
pub struct Csc<T> {
    nrows: usize,
    ncols: usize,
    cpts: Vec<usize>,
    rows: Vec<ColIdx>,
    vals: Vec<T>,
    sorted: bool,
}

impl<T: Copy + Send + Sync> Csc<T> {
    /// Build from a CSR matrix (O(nnz + ncols) counting transpose;
    /// columns come out with ascending row indices).
    pub fn from_csr(a: &Csr<T>) -> Self {
        let t = crate::ops::transpose(a);
        let (ncols, nrows, cpts, rows, vals, sorted) = t.into_parts();
        Csc {
            nrows,
            ncols,
            cpts,
            rows,
            vals,
            sorted,
        }
    }

    /// Convert back to CSR (exact inverse of [`Csc::from_csr`]).
    pub fn to_csr(&self) -> Csr<T> {
        // The CSC arrays are exactly the CSR arrays of Aᵀ.
        let t = Csr::from_parts_unchecked(
            self.ncols,
            self.nrows,
            self.cpts.clone(),
            self.rows.clone(),
            self.vals.clone(),
            self.sorted,
        );
        crate::ops::transpose(&t)
    }

    /// Validated construction from raw arrays.
    pub fn from_parts(
        nrows: usize,
        ncols: usize,
        cpts: Vec<usize>,
        rows: Vec<ColIdx>,
        vals: Vec<T>,
    ) -> Result<Self, SparseError> {
        // Reuse CSR validation on the transposed view.
        let t = Csr::from_parts(ncols, nrows, cpts, rows, vals)?;
        let (ncols, nrows, cpts, rows, vals, sorted) = t.into_parts();
        Ok(Csc {
            nrows,
            ncols,
            cpts,
            rows,
            vals,
            sorted,
        })
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.rows.len()
    }

    /// Whether every column's row indices are strictly ascending.
    #[inline]
    pub fn is_sorted(&self) -> bool {
        self.sorted
    }

    /// Column-pointer array (`ncols + 1` entries).
    #[inline]
    pub fn cpts(&self) -> &[usize] {
        &self.cpts
    }

    /// Entries stored in column `j`.
    #[inline]
    pub fn col_nnz(&self, j: usize) -> usize {
        self.cpts[j + 1] - self.cpts[j]
    }

    /// Row indices of column `j`.
    #[inline]
    pub fn col_rows(&self, j: usize) -> &[ColIdx] {
        &self.rows[self.cpts[j]..self.cpts[j + 1]]
    }

    /// Values of column `j`.
    #[inline]
    pub fn col_vals(&self, j: usize) -> &[T] {
        &self.vals[self.cpts[j]..self.cpts[j + 1]]
    }

    /// Sum of each column's values (the MCL column-normalization
    /// denominator), computed directly on the column-major layout.
    pub fn col_sums(&self) -> Vec<T>
    where
        T: crate::Scalar,
    {
        (0..self.ncols)
            .map(|j| self.col_vals(j).iter().fold(T::ZERO, |acc, &v| acc.add(v)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_csr() -> Csr<f64> {
        // [ 1 0 2 ]
        // [ 0 3 0 ]
        // [ 4 0 5 ]
        Csr::from_triplets(
            3,
            3,
            &[
                (0, 0, 1.0),
                (0, 2, 2.0),
                (1, 1, 3.0),
                (2, 0, 4.0),
                (2, 2, 5.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn csr_round_trip() {
        let a = sample_csr();
        let c = Csc::from_csr(&a);
        assert_eq!(c.nnz(), a.nnz());
        assert_eq!((c.nrows(), c.ncols()), a.shape());
        let back = c.to_csr();
        assert!(crate::approx_eq_f64(&a, &back, 0.0));
    }

    #[test]
    fn column_access() {
        let c = Csc::from_csr(&sample_csr());
        assert_eq!(c.col_nnz(0), 2);
        assert_eq!(c.col_rows(0), &[0, 2]);
        assert_eq!(c.col_vals(0), &[1.0, 4.0]);
        assert_eq!(c.col_nnz(1), 1);
        assert_eq!(c.col_rows(2), &[0, 2]);
        assert!(c.is_sorted());
    }

    #[test]
    fn col_sums_match_manual() {
        let c = Csc::from_csr(&sample_csr());
        assert_eq!(c.col_sums(), vec![5.0, 3.0, 7.0]);
    }

    #[test]
    fn from_parts_validates() {
        // bad column pointer
        let e = Csc::<f64>::from_parts(2, 2, vec![0, 1], vec![0], vec![1.0]);
        assert!(e.is_err());
        // good
        let c = Csc::<f64>::from_parts(2, 2, vec![0, 1, 2], vec![0, 1], vec![1.0, 2.0]).unwrap();
        assert_eq!(c.nnz(), 2);
        assert_eq!(c.to_csr().get(1, 1), Some(&2.0));
    }

    #[test]
    fn rectangular_round_trip() {
        let a = Csr::from_triplets(2, 5, &[(0, 4, 1.0), (1, 0, 2.0), (1, 4, 3.0)]).unwrap();
        let c = Csc::from_csr(&a);
        assert_eq!(c.ncols(), 5);
        assert_eq!(c.col_nnz(4), 2);
        assert!(crate::approx_eq_f64(&a, &c.to_csr(), 0.0));
    }

    #[test]
    fn empty_matrix() {
        let a = Csr::<f64>::zero(3, 4);
        let c = Csc::from_csr(&a);
        assert_eq!(c.nnz(), 0);
        assert_eq!(c.cpts(), &[0, 0, 0, 0, 0]);
    }
}
