//! Element types storable in sparse matrices.

use std::fmt::Debug;

/// A numeric element type usable as matrix values.
///
/// This is deliberately minimal: the SpGEMM kernels only ever need
/// copyable values with an additive identity, addition, and
/// multiplication (the conventional `(+, ×)` semiring; other semirings
/// are expressed through [`crate::Semiring`]). All methods are expected
/// to be cheap and branch-free for primitive types.
pub trait Scalar: Copy + Send + Sync + PartialEq + Debug + 'static {
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;

    /// Addition in the conventional arithmetic of the type.
    #[must_use]
    fn add(self, other: Self) -> Self;

    /// Multiplication in the conventional arithmetic of the type.
    #[must_use]
    fn mul(self, other: Self) -> Self;

    /// Whether the value equals the additive identity.
    #[inline]
    fn is_zero(&self) -> bool {
        *self == Self::ZERO
    }
}

macro_rules! impl_scalar_num {
    ($($t:ty),* $(,)?) => {$(
        impl Scalar for $t {
            const ZERO: Self = 0 as $t;
            const ONE: Self = 1 as $t;
            #[inline]
            fn add(self, other: Self) -> Self { self + other }
            #[inline]
            fn mul(self, other: Self) -> Self { self * other }
        }
    )*};
}

impl_scalar_num!(f32, f64);

macro_rules! impl_scalar_int {
    ($($t:ty),* $(,)?) => {$(
        impl Scalar for $t {
            const ZERO: Self = 0;
            const ONE: Self = 1;
            // Integer matrices are used for counting (e.g. wedges in
            // triangle counting); wrapping keeps release/debug behaviour
            // identical if a synthetic workload overflows.
            #[inline]
            fn add(self, other: Self) -> Self { self.wrapping_add(other) }
            #[inline]
            fn mul(self, other: Self) -> Self { self.wrapping_mul(other) }
        }
    )*};
}

impl_scalar_int!(i32, i64, u32, u64);

impl Scalar for bool {
    const ZERO: Self = false;
    const ONE: Self = true;
    /// Boolean "addition" is disjunction, matching the `(∨, ∧)`
    /// semiring used for reachability / BFS workloads.
    #[inline]
    fn add(self, other: Self) -> Self {
        self | other
    }
    #[inline]
    fn mul(self, other: Self) -> Self {
        self & other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn axioms<T: Scalar>(a: T, b: T) {
        assert_eq!(T::ZERO.add(a), a);
        assert_eq!(a.mul(T::ONE), a);
        assert_eq!(a.mul(T::ZERO), T::ZERO);
        assert_eq!(a.add(b), b.add(a));
        assert!(T::ZERO.is_zero());
    }

    #[test]
    fn f64_axioms() {
        axioms(2.5f64, -1.25);
    }

    #[test]
    fn u64_axioms_and_wrapping() {
        axioms(7u64, 9);
        assert_eq!(u64::MAX.add(1), 0, "integer add wraps by contract");
    }

    #[test]
    fn bool_is_or_and() {
        axioms(true, false);
        assert!(true.add(false));
        assert!(!true.mul(false));
        assert!(true.add(true), "saturating, not xor");
    }
}
