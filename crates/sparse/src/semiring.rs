//! Semiring abstraction over matrix elements.
//!
//! The paper evaluates SpGEMM both as a numeric kernel (A², AMG) and as
//! a graph primitive (multi-source BFS, triangle counting). Those
//! workloads differ only in the element algebra, so every kernel in the
//! `spgemm` crate is generic over a [`Semiring`]; this module provides
//! the three algebras the evaluation needs.

use crate::Scalar;
use std::fmt::Debug;
use std::marker::PhantomData;

/// An algebraic semiring `(Elem, add, mul, zero)` driving SpGEMM.
///
/// `add` must be commutative and associative with identity `zero`, and
/// `mul(zero, x) == zero` — the kernels rely on both to reorder the
/// accumulation of intermediate products freely (Gustavson's algorithm
/// produces them in data-dependent order).
pub trait Semiring: Send + Sync + 'static {
    /// Element type stored in the matrices.
    type Elem: Copy + Send + Sync + PartialEq + Debug + 'static;

    /// Additive identity (the implicit value of absent entries).
    fn zero() -> Self::Elem;

    /// Semiring addition (accumulation of intermediate products).
    fn add(a: Self::Elem, b: Self::Elem) -> Self::Elem;

    /// Semiring multiplication (scalar product of matched entries).
    fn mul(a: Self::Elem, b: Self::Elem) -> Self::Elem;
}

/// The conventional arithmetic semiring `(+, ×)` over a [`Scalar`].
///
/// `PlusTimes<f64>` is what the paper benchmarks; all numeric figures
/// (11–14, 16, 17) use it.
pub struct PlusTimes<T>(PhantomData<T>);

impl<T: Scalar> Semiring for PlusTimes<T> {
    type Elem = T;
    #[inline]
    fn zero() -> T {
        T::ZERO
    }
    #[inline]
    fn add(a: T, b: T) -> T {
        a.add(b)
    }
    #[inline]
    fn mul(a: T, b: T) -> T {
        a.mul(b)
    }
}

/// The boolean semiring `(∨, ∧)` used for reachability: one SpGEMM step
/// over `OrAnd` advances every BFS frontier of a multi-source search
/// (§5.5 of the paper frames this as square × tall-skinny).
pub struct OrAnd;

impl Semiring for OrAnd {
    type Elem = bool;
    #[inline]
    fn zero() -> bool {
        false
    }
    #[inline]
    fn add(a: bool, b: bool) -> bool {
        a | b
    }
    #[inline]
    fn mul(a: bool, b: bool) -> bool {
        a & b
    }
}

/// The `(max, ×)` semiring over non-negative reals; useful for
/// best-path / peer-pressure-style clustering workloads cited in the
/// paper's introduction. Included to exercise non-standard `add` in
/// tests (it is idempotent but not invertible).
pub struct MaxTimes;

impl Semiring for MaxTimes {
    type Elem = f64;
    #[inline]
    fn zero() -> f64 {
        0.0
    }
    #[inline]
    fn add(a: f64, b: f64) -> f64 {
        if a >= b {
            a
        } else {
            b
        }
    }
    #[inline]
    fn mul(a: f64, b: f64) -> f64 {
        a * b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plus_times_matches_scalar() {
        assert_eq!(<PlusTimes<f64>>::add(2.0, 3.0), 5.0);
        assert_eq!(<PlusTimes<f64>>::mul(2.0, 3.0), 6.0);
        assert_eq!(<PlusTimes<u64>>::zero(), 0);
    }

    #[test]
    fn or_and_absorbs() {
        assert!(!OrAnd::mul(OrAnd::zero(), true));
        assert!(OrAnd::add(true, false));
        // idempotent addition: a + a == a
        assert!(OrAnd::add(true, true));
    }

    #[test]
    fn max_times_identities() {
        assert_eq!(MaxTimes::add(MaxTimes::zero(), 3.5), 3.5);
        assert_eq!(MaxTimes::mul(0.0, 7.0), 0.0);
        assert_eq!(MaxTimes::add(2.0, 9.0), 9.0);
    }
}
