//! Coordinate (triplet) storage, used for construction and Matrix
//! Market I/O.

use crate::{ColIdx, Csr, SparseError, MAX_DIM};

/// A sparse matrix as a list of `(row, col, value)` triplets.
///
/// `Coo` is the staging format: generators and parsers append triplets
/// in arbitrary order (possibly with duplicates), then convert to
/// [`Csr`] with either additive or last-write-wins duplicate handling.
#[derive(Clone, Debug)]
pub struct Coo<T> {
    nrows: usize,
    ncols: usize,
    rows: Vec<usize>,
    cols: Vec<ColIdx>,
    vals: Vec<T>,
}

impl<T: Copy + Send + Sync> Coo<T> {
    /// An empty triplet list for an `nrows x ncols` matrix.
    pub fn new(nrows: usize, ncols: usize) -> Result<Self, SparseError> {
        Self::with_capacity(nrows, ncols, 0)
    }

    /// Like [`Coo::new`] with pre-reserved capacity.
    pub fn with_capacity(nrows: usize, ncols: usize, cap: usize) -> Result<Self, SparseError> {
        if nrows > MAX_DIM || ncols > MAX_DIM {
            return Err(SparseError::DimensionTooLarge {
                dim: nrows.max(ncols),
            });
        }
        Ok(Coo {
            nrows,
            ncols,
            rows: Vec::with_capacity(cap),
            cols: Vec::with_capacity(cap),
            vals: Vec::with_capacity(cap),
        })
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored triplets (duplicates counted separately).
    #[inline]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether no triplets are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Append one triplet, bounds-checked.
    pub fn push(&mut self, row: usize, col: ColIdx, val: T) -> Result<(), SparseError> {
        if row >= self.nrows {
            return Err(SparseError::BadRowPointers {
                detail: format!("row {row} out of bounds for {} rows", self.nrows),
            });
        }
        if col as usize >= self.ncols {
            return Err(SparseError::ColumnOutOfBounds {
                row,
                col,
                ncols: self.ncols,
            });
        }
        self.rows.push(row);
        self.cols.push(col);
        self.vals.push(val);
        Ok(())
    }

    /// Iterate stored triplets.
    pub fn iter(&self) -> impl Iterator<Item = (usize, ColIdx, T)> + '_ {
        self.rows
            .iter()
            .zip(&self.cols)
            .zip(&self.vals)
            .map(|((&r, &c), &v)| (r, c, v))
    }

    /// Convert to CSR, combining duplicate coordinates with `combine`.
    /// Rows of the result are sorted.
    pub fn into_csr_with(self, combine: impl Fn(T, T) -> T) -> Csr<T> {
        let Coo {
            nrows,
            ncols,
            rows,
            cols,
            vals,
        } = self;
        // Counting sort by row: stable, O(nnz + nrows).
        let mut rpts = vec![0usize; nrows + 1];
        for &r in &rows {
            rpts[r + 1] += 1;
        }
        for i in 0..nrows {
            rpts[i + 1] += rpts[i];
        }
        let nnz = rows.len();
        // Scatter triplet *indices* into row order (avoids needing a
        // placeholder value for `T`).
        let mut order = vec![0usize; nnz];
        let mut cursor = rpts.clone();
        for (idx, &r) in rows.iter().enumerate() {
            order[cursor[r]] = idx;
            cursor[r] += 1;
        }
        // Sort within each row, then combine duplicates in place.
        let mut w_cols: Vec<ColIdx> = Vec::with_capacity(nnz);
        let mut w_vals: Vec<T> = Vec::with_capacity(nnz);
        let mut new_rpts = vec![0usize; nrows + 1];
        let mut scratch: Vec<(ColIdx, T)> = Vec::new();
        for i in 0..nrows {
            scratch.clear();
            scratch.extend(
                order[rpts[i]..rpts[i + 1]]
                    .iter()
                    .map(|&idx| (cols[idx], vals[idx])),
            );
            scratch.sort_unstable_by_key(|&(c, _)| c);
            let mut iter = scratch.iter().copied();
            if let Some((mut cur_c, mut cur_v)) = iter.next() {
                for (c, v) in iter {
                    if c == cur_c {
                        cur_v = combine(cur_v, v);
                    } else {
                        w_cols.push(cur_c);
                        w_vals.push(cur_v);
                        cur_c = c;
                        cur_v = v;
                    }
                }
                w_cols.push(cur_c);
                w_vals.push(cur_v);
            }
            new_rpts[i + 1] = w_cols.len();
        }
        Csr::from_parts_unchecked(nrows, ncols, new_rpts, w_cols, w_vals, true)
    }

    /// Convert to CSR adding values of duplicate coordinates (the
    /// Matrix Market convention and what the R-MAT generator wants when
    /// it keeps multi-edges as weights).
    pub fn into_csr_sum(self) -> Csr<T>
    where
        T: crate::Scalar,
    {
        self.into_csr_with(|a, b| a.add(b))
    }

    /// Convert to CSR keeping the last-pushed value of duplicate
    /// coordinates.
    pub fn into_csr_last_wins(self) -> Csr<T> {
        self.into_csr_with(|_, b| b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_bounds_checked() {
        let mut c = Coo::<f64>::new(2, 2).unwrap();
        assert!(c.push(0, 0, 1.0).is_ok());
        assert!(c.push(2, 0, 1.0).is_err());
        assert!(c.push(0, 2, 1.0).is_err());
        assert_eq!(c.len(), 1);
        assert!(!c.is_empty());
    }

    #[test]
    fn duplicates_sum() {
        let mut c = Coo::<f64>::new(2, 3).unwrap();
        c.push(0, 1, 1.0).unwrap();
        c.push(0, 1, 2.5).unwrap();
        c.push(1, 2, 4.0).unwrap();
        let m = c.into_csr_sum();
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.get(0, 1), Some(&3.5));
        assert!(m.is_sorted());
        assert!(m.validate().is_ok());
    }

    #[test]
    fn duplicates_last_wins() {
        let mut c = Coo::<u64>::new(1, 4).unwrap();
        c.push(0, 3, 7).unwrap();
        c.push(0, 3, 9).unwrap();
        let m = c.into_csr_last_wins();
        assert_eq!(m.get(0, 3), Some(&9));
    }

    #[test]
    fn rows_emerge_sorted_from_random_order() {
        let mut c = Coo::<f64>::new(1, 10).unwrap();
        for &col in &[7u32, 2, 9, 0, 4] {
            c.push(0, col, col as f64).unwrap();
        }
        let m = c.into_csr_sum();
        assert_eq!(m.row_cols(0), &[0, 2, 4, 7, 9]);
        assert!(m.is_sorted());
    }

    #[test]
    fn empty_conversion() {
        let c = Coo::<f64>::new(3, 3).unwrap();
        let m = c.into_csr_sum();
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.shape(), (3, 3));
        assert!(m.validate().is_ok());
    }

    #[test]
    fn iterates_in_push_order() {
        let mut c = Coo::<i64>::new(2, 2).unwrap();
        c.push(1, 0, -1).unwrap();
        c.push(0, 1, 5).unwrap();
        let v: Vec<_> = c.iter().collect();
        assert_eq!(v, vec![(1, 0, -1), (0, 1, 5)]);
    }
}
