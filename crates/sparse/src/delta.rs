//! Row-granular edits: [`RowPatch`] and [`DirtyRows`].
//!
//! Dynamic-graph workloads (edge streams, MCL pruning feedback,
//! online serving) mutate a few rows of an otherwise stable matrix.
//! The inspector–executor machinery upstream (`spgemm`'s plan layer)
//! can re-run its symbolic phase for *only* the affected output rows —
//! but it needs to know exactly which input rows changed. This module
//! provides the vocabulary:
//!
//! * [`RowPatch`] — an ordered batch of `insert` / `update` / `delete`
//!   edge edits against named `(row, col)` coordinates.
//! * [`Csr::apply_patch`] — applies a patch, producing the **new
//!   matrix version** plus the [`DirtyRows`] bitset of rows it
//!   touched. The input matrix is not mutated: versions stay
//!   immutable, which is what lets plan layers keep a snapshot of the
//!   pre-edit structure for differential work.
//! * [`DirtyRows`] — a dense bitset over row indices with the small
//!   set-algebra (union, iteration, counting) delta propagation needs.

use crate::{ColIdx, Csr, SparseError};

/// A set of row indices, stored as a dense bitset over `0..nrows`.
///
/// This is the currency of incremental recomputation: every patch
/// yields one, every plan-layer delta operation consumes and produces
/// them. The universe size (`nrows`) travels with the set so that
/// mismatched universes are caught instead of silently mis-indexed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DirtyRows {
    nrows: usize,
    words: Vec<u64>,
    count: usize,
}

impl DirtyRows {
    /// The empty set over `0..nrows`.
    pub fn new(nrows: usize) -> Self {
        DirtyRows {
            nrows,
            words: vec![0u64; nrows.div_ceil(64)],
            count: 0,
        }
    }

    /// The full set (every row dirty) over `0..nrows`.
    pub fn all(nrows: usize) -> Self {
        let mut s = Self::new(nrows);
        for i in 0..nrows {
            s.insert(i);
        }
        s
    }

    /// Build from an iterator of row indices (duplicates are fine).
    pub fn from_rows(nrows: usize, rows: impl IntoIterator<Item = usize>) -> Self {
        let mut s = Self::new(nrows);
        for i in rows {
            s.insert(i);
        }
        s
    }

    /// Size of the universe (`nrows` of the matrix the set indexes).
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of rows in the set.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// `count / nrows` (0 for an empty universe) — the "fraction of
    /// rows touched" figure delta benchmarks report.
    pub fn fraction(&self) -> f64 {
        if self.nrows == 0 {
            0.0
        } else {
            self.count as f64 / self.nrows as f64
        }
    }

    /// Add row `i`; returns `true` if it was not already present.
    ///
    /// # Panics
    /// If `i` is outside the universe.
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(i < self.nrows, "row {i} outside universe 0..{}", self.nrows);
        let (w, b) = (i / 64, i % 64);
        let fresh = self.words[w] & (1u64 << b) == 0;
        if fresh {
            self.words[w] |= 1u64 << b;
            self.count += 1;
        }
        fresh
    }

    /// Whether row `i` is in the set (`false` when out of universe).
    pub fn contains(&self, i: usize) -> bool {
        i < self.nrows && self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// In-place union with another set over the same universe.
    ///
    /// # Panics
    /// If the universes differ.
    pub fn union_with(&mut self, other: &DirtyRows) {
        assert_eq!(
            self.nrows, other.nrows,
            "union of DirtyRows over different universes"
        );
        let mut count = 0usize;
        for (w, &o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
            count += w.count_ones() as usize;
        }
        self.count = count;
    }

    /// Iterate the set's rows in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }
}

/// One edit of a [`RowPatch`].
#[derive(Clone, Copy, Debug, PartialEq)]
enum Edit<T> {
    /// Upsert: overwrite the entry if present, create it otherwise.
    Insert(T),
    /// Overwrite an entry that must already exist.
    Update(T),
    /// Remove the entry if present (absent entries are a no-op).
    Delete,
}

/// An ordered batch of edge edits against a sparse matrix.
///
/// Edits are applied in insertion order within each row, so a later
/// edit of the same coordinate wins. `insert` is an upsert; `update`
/// requires the entry to exist (guarding against typo'd coordinates
/// in workloads that only ever reweight existing edges); `delete` of
/// an absent entry is a no-op (idempotent edge removal).
///
/// ```
/// use spgemm_sparse::{Csr, RowPatch};
///
/// let a = Csr::<f64>::identity(4);
/// let mut p = RowPatch::new();
/// p.insert(0, 2, 5.0).update(1, 1, -1.0).delete(3, 3);
/// let (b, dirty) = a.apply_patch(&p)?;
/// assert_eq!(b.get(0, 2), Some(&5.0));
/// assert_eq!(b.get(1, 1), Some(&-1.0));
/// assert_eq!(b.get(3, 3), None);
/// assert_eq!(dirty.count(), 3);
/// assert_eq!(a.nnz(), 4, "the source version is untouched");
/// # Ok::<(), spgemm_sparse::SparseError>(())
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RowPatch<T> {
    edits: Vec<(usize, ColIdx, Edit<T>)>,
}

impl<T> RowPatch<T> {
    /// An empty patch.
    pub fn new() -> Self {
        RowPatch { edits: Vec::new() }
    }

    /// Upsert entry `(row, col)` to `val`.
    pub fn insert(&mut self, row: usize, col: ColIdx, val: T) -> &mut Self {
        self.edits.push((row, col, Edit::Insert(val)));
        self
    }

    /// Overwrite existing entry `(row, col)` with `val`; applying the
    /// patch fails with [`SparseError::PlanMismatch`] if it is absent.
    pub fn update(&mut self, row: usize, col: ColIdx, val: T) -> &mut Self {
        self.edits.push((row, col, Edit::Update(val)));
        self
    }

    /// Remove entry `(row, col)` if present.
    pub fn delete(&mut self, row: usize, col: ColIdx) -> &mut Self {
        self.edits.push((row, col, Edit::Delete));
        self
    }

    /// Number of edits in the patch.
    pub fn len(&self) -> usize {
        self.edits.len()
    }

    /// Whether the patch contains no edits.
    pub fn is_empty(&self) -> bool {
        self.edits.is_empty()
    }

    /// The distinct rows the patch touches, as a set over `0..nrows`.
    pub fn dirty_rows(&self, nrows: usize) -> DirtyRows {
        DirtyRows::from_rows(nrows, self.edits.iter().map(|&(r, _, _)| r))
    }
}

impl<T: Copy + PartialEq> Csr<T> {
    /// Apply a [`RowPatch`], returning the edited matrix (a new
    /// version; `self` is unchanged) and the [`DirtyRows`] set of rows
    /// the patch touched.
    ///
    /// Sortedness is preserved: edited rows of a sorted matrix come
    /// out sorted; in an unsorted matrix, surviving entries keep their
    /// relative order and inserts append at the row's end in edit
    /// order. Coordinates are validated up front — a row or column out
    /// of bounds fails with [`SparseError::BadPartition`] /
    /// [`SparseError::ColumnOutOfBounds`], and an `update` of an
    /// absent entry with [`SparseError::PlanMismatch`] — before any
    /// work is done, so errors never yield a half-applied version.
    pub fn apply_patch(&self, patch: &RowPatch<T>) -> Result<(Csr<T>, DirtyRows), SparseError> {
        for &(row, col, _) in &patch.edits {
            if row >= self.nrows() {
                return Err(SparseError::BadPartition {
                    detail: format!(
                        "apply_patch: row {row} out of bounds for {} rows",
                        self.nrows()
                    ),
                });
            }
            if (col as usize) >= self.ncols() {
                return Err(SparseError::ColumnOutOfBounds {
                    row,
                    col,
                    ncols: self.ncols(),
                });
            }
        }
        let dirty = patch.dirty_rows(self.nrows());

        // Edit each dirty row as a (col, val) list, then reassemble.
        let mut edited: Vec<(usize, Vec<(ColIdx, T)>)> = dirty
            .iter()
            .map(|i| {
                let row: Vec<(ColIdx, T)> = self
                    .row_cols(i)
                    .iter()
                    .copied()
                    .zip(self.row_vals(i).iter().copied())
                    .collect();
                (i, row)
            })
            .collect();
        for &(row, col, ref edit) in &patch.edits {
            let slot = edited
                .binary_search_by_key(&row, |&(i, _)| i)
                .expect("every patched row collected above");
            let entries = &mut edited[slot].1;
            let pos = entries.iter().position(|&(c, _)| c == col);
            match (edit, pos) {
                (Edit::Insert(v) | Edit::Update(v), Some(p)) => entries[p].1 = *v,
                (Edit::Insert(v), None) => entries.push((col, *v)),
                (Edit::Update(_), None) => {
                    return Err(SparseError::PlanMismatch {
                        detail: format!(
                            "apply_patch: update of absent entry ({row}, {col}); \
                             use insert to create new entries"
                        ),
                    });
                }
                (Edit::Delete, Some(p)) => {
                    entries.remove(p);
                }
                (Edit::Delete, None) => {}
            }
        }
        if self.is_sorted() {
            for (_, entries) in edited.iter_mut() {
                entries.sort_unstable_by_key(|&(c, _)| c);
            }
        }

        let delta_nnz: isize = edited
            .iter()
            .map(|&(i, ref e)| e.len() as isize - self.row_nnz(i) as isize)
            .sum();
        let new_nnz = (self.nnz() as isize + delta_nnz) as usize;
        let mut rpts = Vec::with_capacity(self.nrows() + 1);
        rpts.push(0usize);
        let mut cols = Vec::with_capacity(new_nnz);
        let mut vals = Vec::with_capacity(new_nnz);
        let mut next_edited = 0usize;
        for i in 0..self.nrows() {
            if next_edited < edited.len() && edited[next_edited].0 == i {
                for &(c, v) in &edited[next_edited].1 {
                    cols.push(c);
                    vals.push(v);
                }
                next_edited += 1;
            } else {
                cols.extend_from_slice(self.row_cols(i));
                vals.extend_from_slice(self.row_vals(i));
            }
            rpts.push(cols.len());
        }
        Ok((
            Csr::from_parts_unchecked(self.nrows(), self.ncols(), rpts, cols, vals, {
                self.is_sorted()
            }),
            dirty,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr<f64> {
        Csr::from_triplets(
            4,
            5,
            &[
                (0, 0, 1.0),
                (0, 3, 2.0),
                (1, 1, 3.0),
                (2, 0, 4.0),
                (2, 2, 5.0),
                (2, 4, 6.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn dirty_rows_set_algebra() {
        let mut s = DirtyRows::new(130);
        assert!(s.is_empty());
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64), "reinsertion reports absent");
        assert_eq!(s.count(), 3);
        assert!(s.contains(129) && !s.contains(128));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 64, 129]);

        let t = DirtyRows::from_rows(130, [64, 65]);
        let mut u = s.clone();
        u.union_with(&t);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![0, 64, 65, 129]);
        assert_eq!(u.count(), 4);
        assert!((u.fraction() - 4.0 / 130.0).abs() < 1e-12);

        assert_eq!(DirtyRows::all(70).count(), 70);
    }

    #[test]
    fn patch_insert_update_delete() {
        let a = sample();
        let mut p = RowPatch::new();
        p.insert(0, 1, 9.0) // new entry
            .insert(0, 3, -2.0) // upsert over existing
            .update(1, 1, 7.0) // overwrite
            .delete(2, 2) // remove
            .delete(3, 4); // absent: no-op
        let (b, dirty) = a.apply_patch(&p).unwrap();
        assert!(b.validate().is_ok());
        assert!(b.is_sorted(), "sorted input stays sorted");
        assert_eq!(b.get(0, 1), Some(&9.0));
        assert_eq!(b.get(0, 3), Some(&-2.0));
        assert_eq!(b.get(1, 1), Some(&7.0));
        assert_eq!(b.get(2, 2), None);
        assert_eq!(b.nnz(), a.nnz(), "one insert, one delete");
        assert_eq!(dirty.iter().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        // the original version is untouched
        assert_eq!(a.get(2, 2), Some(&5.0));
    }

    #[test]
    fn patch_can_empty_and_refill_rows() {
        let a = sample();
        let mut p = RowPatch::new();
        p.delete(2, 0).delete(2, 2).delete(2, 4);
        let (b, _) = a.apply_patch(&p).unwrap();
        assert_eq!(b.row_nnz(2), 0);

        let mut refill = RowPatch::new();
        for c in 0..5u32 {
            refill.insert(3, c, c as f64);
        }
        let (c, dirty) = b.apply_patch(&refill).unwrap();
        assert_eq!(c.row_nnz(3), 5);
        assert_eq!(dirty.iter().collect::<Vec<_>>(), vec![3]);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn patch_preserves_unsorted_entry_order() {
        let a = Csr::from_parts(1, 4, vec![0, 3], vec![2, 0, 3], vec![1.0, 2.0, 3.0]).unwrap();
        assert!(!a.is_sorted());
        let mut p = RowPatch::new();
        p.delete(0, 0).insert(0, 1, 9.0);
        let (b, _) = a.apply_patch(&p).unwrap();
        assert_eq!(b.row_cols(0), &[2, 3, 1], "order kept, insert appended");
        assert!(!b.is_sorted());
        assert!(b.validate().is_ok());
    }

    #[test]
    fn patch_rejects_bad_coordinates_atomically() {
        let a = sample();
        let mut p = RowPatch::new();
        p.insert(0, 0, 1.0).insert(9, 0, 1.0);
        assert!(matches!(
            a.apply_patch(&p),
            Err(SparseError::BadPartition { .. })
        ));
        let mut q = RowPatch::new();
        q.insert(0, 99, 1.0);
        assert!(matches!(
            a.apply_patch(&q),
            Err(SparseError::ColumnOutOfBounds { col: 99, .. })
        ));
        let mut r = RowPatch::new();
        r.update(3, 0, 1.0);
        assert!(matches!(
            a.apply_patch(&r),
            Err(SparseError::PlanMismatch { .. })
        ));
    }

    #[test]
    fn later_edits_of_same_coordinate_win() {
        let a = sample();
        let mut p = RowPatch::new();
        p.insert(3, 2, 1.0).delete(3, 2).insert(3, 2, 4.0);
        let (b, _) = a.apply_patch(&p).unwrap();
        assert_eq!(b.get(3, 2), Some(&4.0));
        assert_eq!(b.row_nnz(3), 1);
    }
}
