//! Concurrency contracts across the stack: compile-time `Send`/`Sync`
//! assertions for every type the serving layer shares between
//! threads, and stress tests hammering one shared plan cache with
//! concurrent rebinds across disjoint sparsity patterns — the reuse
//! bug class the pooled accumulators must survive.

use parking_lot::Mutex;
use spgemm::{Algorithm, OutputOrder, PlanCache, SpgemmPlan};
use spgemm_par::{Pool, WorkspacePool};
use spgemm_serve::{
    JobHandle, MatrixStore, ProductRequest, ServeConfig, ServeEngine, StoredMatrix,
};
use spgemm_sparse::{approx_eq_f64, Csr, PlusTimes};
use std::sync::Arc;

type P = PlusTimes<f64>;

/// Compile-time assertions: if any of these types loses `Send`/`Sync`
/// (say a future refactor introduces an `Rc` or a raw pointer without
/// the right bounds), this test file stops compiling.
#[test]
fn shared_types_are_send_and_sync() {
    fn send_sync<T: Send + Sync>() {}
    fn send<T: Send>() {}

    // The data plane shared through Arcs.
    send_sync::<Csr<f64>>();
    send_sync::<Csr<u32>>();
    // Plans are shared between serve workers behind slot mutexes.
    send_sync::<SpgemmPlan<P>>();
    send_sync::<PlanCache<P>>();
    // Pooled per-thread workspaces cross the pool's worker threads.
    send_sync::<WorkspacePool<Vec<f64>>>();
    send_sync::<Pool>();
    // The serving layer's shared surface.
    send_sync::<ServeEngine>();
    send_sync::<MatrixStore>();
    send_sync::<StoredMatrix>();
    send_sync::<JobHandle>();
    send::<ProductRequest>();
}

/// Four structurally disjoint square patterns of the same shape —
/// same dims, different fingerprints — so every switch between them
/// forces a rebind (or a distinct cache entry) while the pooled
/// accumulators carry over.
fn disjoint_patterns(n: usize) -> Vec<Csr<f64>> {
    let band = |offset: usize| -> Csr<f64> {
        let mut triplets: Vec<(usize, u32, f64)> = Vec::new();
        for i in 0..n {
            triplets.push((i, ((i + offset) % n) as u32, 1.0 + i as f64));
            triplets.push((i, ((i + 2 * offset + 1) % n) as u32, 0.5));
        }
        Csr::from_triplets(n, n, &triplets).unwrap()
    };
    let pats = vec![band(1), band(3), band(7), band(11)];
    let mut fps: Vec<u64> = pats.iter().map(|p| p.structure_fingerprint()).collect();
    fps.sort_unstable();
    fps.dedup();
    assert_eq!(fps.len(), 4, "patterns must be structurally distinct");
    pats
}

/// One `PlanCache` shared behind a mutex, four threads interleaving
/// disjoint patterns: every multiply must stay correct through the
/// storm of rebinds (the cache keeps its pooled accumulators across
/// every one of them).
#[test]
fn shared_plan_cache_survives_concurrent_rebinds() {
    let patterns = Arc::new(disjoint_patterns(64));
    let expected: Arc<Vec<Csr<f64>>> = Arc::new(
        patterns
            .iter()
            .map(|a| spgemm::algos::reference::multiply::<P>(a, a))
            .collect(),
    );
    let cache = Arc::new(Mutex::new(PlanCache::<P>::new(
        Algorithm::Hash,
        OutputOrder::Sorted,
    )));
    let pool = Arc::new(Pool::new(2));
    let threads: Vec<_> = (0..4)
        .map(|t| {
            let (patterns, expected, cache, pool) = (
                Arc::clone(&patterns),
                Arc::clone(&expected),
                Arc::clone(&cache),
                Arc::clone(&pool),
            );
            std::thread::spawn(move || {
                for round in 0..30 {
                    let idx = (t + round) % patterns.len();
                    let a = &patterns[idx];
                    let c = cache.lock().multiply_in(a, a, &pool).unwrap();
                    assert!(
                        approx_eq_f64(&expected[idx], &c, 1e-12),
                        "thread {t} round {round} pattern {idx}"
                    );
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let stats = cache.lock().stats();
    assert_eq!(stats.hits + stats.rebuilds, 120);
    assert!(stats.rebuilds > 4, "interleaved patterns force rebinds");
}

/// The serve engine under the same storm, with a plan cache smaller
/// than the pattern population so entries are evicted and rebuilt
/// while other workers still execute them: multiple submitter
/// threads, every result checked against the reference oracle.
#[test]
fn serve_engine_stress_disjoint_patterns_tiny_cache() {
    let patterns = disjoint_patterns(48);
    let expected: Vec<Csr<f64>> = patterns
        .iter()
        .map(|a| spgemm::algos::reference::multiply::<P>(a, a))
        .collect();
    let engine = Arc::new(ServeEngine::new(ServeConfig {
        workers: 3,
        threads_per_worker: 2,
        plan_cache_plans: 2, // half the live patterns: constant eviction
        queue_capacity: 4096,
        ..ServeConfig::default()
    }));
    for (i, p) in patterns.iter().enumerate() {
        engine.store().insert(format!("p{i}"), p.clone());
    }
    let submitters: Vec<_> = (0..4)
        .map(|t| {
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || {
                let mut handles = Vec::new();
                for round in 0..40 {
                    let idx = (t + round) % 4;
                    let h = engine
                        .try_submit(
                            ProductRequest::new(format!("p{idx}"), format!("p{idx}"))
                                .algo(Algorithm::Hash)
                                .tenant(format!("t{t}")),
                        )
                        .expect("queue sized for the full load");
                    handles.push((idx, h));
                }
                handles
            })
        })
        .collect();
    let mut all = Vec::new();
    for s in submitters {
        all.extend(s.join().unwrap());
    }
    for (idx, h) in &all {
        let c = h.wait().unwrap();
        assert!(approx_eq_f64(&expected[*idx], &c, 1e-12), "pattern {idx}");
    }
    let engine = Arc::into_inner(engine).expect("all submitters joined");
    let m = engine.shutdown();
    assert_eq!(m.completed, 160);
    assert_eq!(m.duplicate_completions, 0);
    assert!(
        m.plan_cache.evictions > 0,
        "4 patterns through 2 slots must evict: {:?}",
        m.plan_cache
    );
}
