//! Dirty-propagation tests for `spgemm::expr::DeltaPlan`: one test per
//! node kind against a dense oracle (semantic correctness) *and*
//! against a fresh `DeltaPlan::bind` on the patched inputs
//! (byte-for-byte incremental equality), plus the headline sparsity
//! claim — a one-row edit flowing through an MCL-shaped pipeline on a
//! scale-10 R-MAT graph recomputes well under 5% of the rows.

use spgemm::expr::{DeltaPlan, ElemMap, ExprGraph};
use spgemm::{Algorithm, RowPatch};
use spgemm_sparse::Csr;

const ALGO: Algorithm = Algorithm::Hash;

fn rmat(scale: u32, ef: usize, seed: u64) -> Csr<f64> {
    spgemm_gen::rmat::generate_kind(
        spgemm_gen::RmatKind::Er,
        scale,
        ef,
        &mut spgemm_gen::rng(seed),
    )
}

fn bits_eq(a: &Csr<f64>, b: &Csr<f64>) -> bool {
    a.rpts() == b.rpts()
        && a.cols() == b.cols()
        && a.vals()
            .iter()
            .zip(b.vals())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

fn to_dense(m: &Csr<f64>) -> Vec<f64> {
    let mut d = vec![0.0; m.nrows() * m.ncols()];
    for i in 0..m.nrows() {
        for (&c, &v) in m.row_cols(i).iter().zip(m.row_vals(i)) {
            d[i * m.ncols() + c as usize] = v;
        }
    }
    d
}

fn assert_dense_close(got: &Csr<f64>, want: &[f64], ncols: usize, ctx: &str) {
    let gd = to_dense(got);
    assert_eq!(gd.len(), want.len(), "{ctx}: shape");
    for (idx, (g, w)) in gd.iter().zip(want).enumerate() {
        assert!(
            (g - w).abs() <= 1e-12 * w.abs().max(1.0),
            "{ctx}: entry ({}, {}) is {g}, dense oracle says {w}",
            idx / ncols,
            idx % ncols
        );
    }
}

/// Patch a couple of rows of `m`: one numeric upsert, one structural
/// insert, one delete.
fn small_patch(m: &Csr<f64>) -> RowPatch<f64> {
    let mut p = RowPatch::new();
    p.insert(1, 2, 7.25);
    p.insert(3, (m.ncols() - 1) as u32, -1.5);
    if m.row_nnz(2) > 0 {
        p.delete(2, m.row_cols(2)[0]);
    }
    p
}

/// Run one single-op graph through the incremental path and both
/// oracles. `dense_op` computes the expected dense result from the
/// dense patched inputs.
fn check_node(
    build: impl Fn(&mut ExprGraph) -> spgemm::expr::NodeId,
    nvecs: usize,
    dense_op: impl Fn(&[Vec<f64>], &[Vec<f64>], (usize, usize)) -> (Vec<f64>, usize),
    ctx: &str,
) {
    let a = rmat(4, 3, 11);
    let b = rmat(4, 3, 12);
    let vec_data: Vec<Vec<f64>> = (0..nvecs)
        .map(|k| {
            (0..a.nrows())
                .map(|i| 0.5 + (i + k) as f64 * 0.25)
                .collect()
        })
        .collect();
    let mut g = ExprGraph::new();
    let root = build(&mut g);
    let inputs: Vec<&Csr<f64>> = [&a, &b][..g.num_inputs()].to_vec();
    let vecs: Vec<&[f64]> = vec_data.iter().map(|v| v.as_slice()).collect();
    let mut plan = DeltaPlan::bind(&g, root, ALGO, &inputs, &vecs).expect("bind");

    let patch = small_patch(&a);
    let report = plan.update(0, &patch).expect("update");
    assert!(report.rows_recomputed <= report.rows_total, "{ctx}: report");

    let a2 = plan.input(0).clone();
    let fresh_inputs: Vec<&Csr<f64>> = if g.num_inputs() == 2 {
        vec![&a2, &b]
    } else {
        vec![&a2]
    };
    let fresh = DeltaPlan::bind(&g, root, ALGO, &fresh_inputs, &vecs).expect("fresh bind");
    assert!(
        bits_eq(plan.root(), fresh.root()),
        "{ctx}: incremental root diverged from fresh bind"
    );

    let dense_inputs: Vec<Vec<f64>> = fresh_inputs.iter().map(|m| to_dense(m)).collect();
    let shape = (a2.nrows(), a2.ncols());
    let (want, ncols) = dense_op(&dense_inputs, &vec_data, shape);
    assert_dense_close(plan.root(), &want, ncols, ctx);
}

#[test]
fn multiply_node_propagates_deltas() {
    check_node(
        |g| {
            let x = g.input();
            let y = g.input();
            g.multiply(x, y)
        },
        0,
        |ins, _, (n, _)| {
            let mut d = vec![0.0; n * n];
            for i in 0..n {
                for k in 0..n {
                    let av = ins[0][i * n + k];
                    if av != 0.0 {
                        for j in 0..n {
                            d[i * n + j] += av * ins[1][k * n + j];
                        }
                    }
                }
            }
            (d, n)
        },
        "multiply",
    );
}

#[test]
fn transpose_node_propagates_deltas() {
    check_node(
        |g| {
            let x = g.input();
            g.transpose(x)
        },
        0,
        |ins, _, (n, m)| {
            let mut d = vec![0.0; m * n];
            for i in 0..n {
                for j in 0..m {
                    d[j * n + i] = ins[0][i * m + j];
                }
            }
            (d, n)
        },
        "transpose",
    );
}

#[test]
fn add_node_propagates_deltas() {
    check_node(
        |g| {
            let x = g.input();
            let y = g.input();
            g.add(x, y)
        },
        0,
        |ins, _, (_, m)| (ins[0].iter().zip(&ins[1]).map(|(x, y)| x + y).collect(), m),
        "add",
    );
}

#[test]
fn hadamard_node_propagates_deltas() {
    check_node(
        |g| {
            let x = g.input();
            let y = g.input();
            g.hadamard(x, y)
        },
        0,
        |ins, _, (_, m)| (ins[0].iter().zip(&ins[1]).map(|(x, y)| x * y).collect(), m),
        "hadamard",
    );
}

#[test]
fn scale_rows_node_propagates_deltas() {
    check_node(
        |g| {
            let x = g.input();
            let v = g.vec_input();
            g.scale_rows(x, v)
        },
        1,
        |ins, vecs, (n, m)| {
            let mut d = ins[0].clone();
            for i in 0..n {
                for j in 0..m {
                    d[i * m + j] *= vecs[0][i];
                }
            }
            (d, m)
        },
        "scale_rows",
    );
}

#[test]
fn scale_cols_node_propagates_deltas() {
    check_node(
        |g| {
            let x = g.input();
            let v = g.vec_input();
            g.scale_cols(x, v)
        },
        1,
        |ins, vecs, (n, m)| {
            let mut d = ins[0].clone();
            for i in 0..n {
                for j in 0..m {
                    d[i * m + j] *= vecs[0][j];
                }
            }
            (d, m)
        },
        "scale_cols",
    );
}

#[test]
fn map_node_propagates_deltas() {
    let f = ElemMap::AbsPow(2.0);
    check_node(
        |g| {
            let x = g.input();
            g.map(x, f)
        },
        0,
        move |ins, _, (_, m)| {
            // The map applies only to stored entries; structural zeros
            // stay zero, which the dense oracle reproduces by mapping
            // zero through f only where an entry exists — |0|^2 = 0, so
            // mapping everything is equivalent here.
            (ins[0].iter().map(|&v| f.apply(v)).collect(), m)
        },
        "map",
    );
}

#[test]
fn normalize_cols_node_propagates_deltas() {
    check_node(
        |g| {
            let x = g.input();
            g.normalize_cols(x)
        },
        0,
        |ins, _, (n, m)| {
            let mut d = ins[0].clone();
            for j in 0..m {
                let s: f64 = (0..n).map(|i| d[i * m + j]).sum();
                if s != 0.0 {
                    for i in 0..n {
                        d[i * m + j] /= s;
                    }
                }
            }
            (d, m)
        },
        "normalize_cols",
    );
}

/// A two-op chain where only one branch is touched: the untouched
/// branch must contribute an empty delta (no recomputation).
#[test]
fn untouched_branch_is_not_recomputed() {
    let a = rmat(4, 3, 41);
    let b = rmat(4, 3, 42);
    let mut g = ExprGraph::new();
    let sa = g.input();
    let sb = g.input();
    let prod = g.multiply(sa, sa);
    let root = g.add(prod, sb);
    let mut plan = DeltaPlan::bind(&g, root, ALGO, &[&a, &b], &[]).unwrap();
    // Edit only B: the A·A node must not recompute a single row.
    let mut patch = RowPatch::new();
    patch.insert(5, 3, 2.5);
    let report = plan.update(1, &patch).unwrap();
    // Recomputed rows: 1 for the Add node only.
    assert_eq!(report.rows_recomputed, 1, "only the Add row touched by B");
    let a2 = plan.input(1).clone();
    let fresh = DeltaPlan::bind(&g, root, ALGO, &[&a, &a2], &[]).unwrap();
    assert!(bits_eq(plan.root(), fresh.root()));
}

/// The headline claim: a one-row numeric edit through the MCL pipeline
/// (`normalize_cols(map(A·A))`) on a scale-10 R-MAT graph recomputes
/// fewer than 5% of the pipeline's rows.
#[test]
fn mcl_pipeline_one_row_edit_recomputes_under_5_percent() {
    let a = rmat(10, 4, 77); // 1024 rows
    let mut g = ExprGraph::new();
    let s = g.input();
    let prod = g.multiply(s, s);
    let infl = g.map(prod, ElemMap::AbsPow(2.0));
    let root = g.normalize_cols(infl);
    let mut plan = DeltaPlan::bind(&g, root, ALGO, &[&a], &[]).unwrap();

    // Edit the lightest non-empty row to keep the honest fanout small
    // (the claim is about sparsity of propagation, not worst-case hubs).
    let r = (0..a.nrows())
        .filter(|&i| a.row_nnz(i) > 0)
        .min_by_key(|&i| a.row_nnz(i))
        .unwrap();
    let col = a.row_cols(r)[0];
    let mut patch = RowPatch::new();
    patch.insert(r, col, 123.456);
    let report = plan.update(0, &patch).unwrap();

    assert!(report.rows_total >= 3 * a.nrows(), "3 non-input nodes");
    assert!(
        report.fraction() < 0.05,
        "one-row edit recomputed {}/{} rows ({:.2}%)",
        report.rows_recomputed,
        report.rows_total,
        report.fraction() * 100.0
    );

    // And the cheap update is still exactly right.
    let a2 = plan.input(0).clone();
    let fresh = DeltaPlan::bind(&g, root, ALGO, &[&a2], &[]).unwrap();
    assert!(bits_eq(plan.root(), fresh.root()));
}
