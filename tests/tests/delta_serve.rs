//! Streaming row updates through the serving engine: concurrent
//! submitters racing `try_submit_row_update` against multiply jobs
//! (every job result oracle-checked against a reconstructed version
//! history), patch-vs-re-registration equivalence, and the cached
//! expression result patch-in-place path with its metrics accounting.

use spgemm::{multiply_f64, Algorithm, OutputOrder, RowPatch};
use spgemm_serve::{ExprRequest, ProductRequest, ServeConfig, ServeEngine};
use spgemm_sparse::Csr;

fn rmat(scale: u32, ef: usize, seed: u64) -> Csr<f64> {
    spgemm_gen::rmat::generate_kind(
        spgemm_gen::RmatKind::Er,
        scale,
        ef,
        &mut spgemm_gen::rng(seed),
    )
}

fn bits_eq(a: &Csr<f64>, b: &Csr<f64>) -> bool {
    a.nrows() == b.nrows()
        && a.ncols() == b.ncols()
        && a.rpts() == b.rpts()
        && a.cols() == b.cols()
        && a.vals()
            .iter()
            .zip(b.vals())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

/// The (deterministic) patch submitter thread `t` applies at `step`:
/// threads edit disjoint row classes (`row % 4 == t`), so any
/// interleaving of the serialized updates converges to the same
/// matrix, and the receipt order reconstructs every intermediate
/// version exactly.
fn patch_for(t: usize, step: usize) -> RowPatch<f64> {
    let row = t + 4 * step;
    let mut p = RowPatch::new();
    p.insert(
        row,
        ((7 * step + t) % 32) as u32,
        1.0 + (t * 10 + step) as f64,
    );
    p
}

#[test]
fn concurrent_updates_and_products_match_some_version() {
    const THREADS: usize = 4;
    const STEPS: usize = 4;
    let a0 = rmat(5, 4, 91); // 32x32
    let b = rmat(5, 4, 92);
    let engine = ServeEngine::new(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    });
    engine.store().insert("a", a0.clone());
    engine.store().insert("b", b.clone());

    // Each submitter interleaves row updates with product submissions.
    let mut log: Vec<(u64, usize, usize)> = Vec::new(); // (new_version, t, step)
    let mut handles = Vec::new();
    std::thread::scope(|s| {
        let joins: Vec<_> = (0..THREADS)
            .map(|t| {
                let engine = &engine;
                s.spawn(move || {
                    let mut receipts = Vec::new();
                    let mut jobs = Vec::new();
                    for step in 0..STEPS {
                        let r = engine
                            .try_submit_row_update("a", &patch_for(t, step))
                            .expect("row update");
                        assert_eq!(r.rows_dirtied, 1);
                        assert!(r.new_version > r.old_version);
                        receipts.push((r.new_version, t, step));
                        jobs.push(
                            engine
                                .try_submit(ProductRequest::new("a", "b").algo(Algorithm::Hash))
                                .expect("submit product"),
                        );
                    }
                    (receipts, jobs)
                })
            })
            .collect();
        for j in joins {
            let (receipts, jobs) = j.join().expect("submitter");
            log.extend(receipts);
            handles.extend(jobs);
        }
    });

    // Updates serialize inside the engine, so sorting the receipts by
    // version replays the exact global history of "a".
    log.sort_unstable();
    let mut versions = vec![a0.clone()];
    let mut cur = a0;
    for &(_, t, step) in &log {
        let (next, _) = cur.apply_patch(&patch_for(t, step)).expect("replay");
        versions.push(next.clone());
        cur = next;
    }
    assert!(
        bits_eq(engine.store().get("a").unwrap().csr(), &cur),
        "store must converge to the replayed history"
    );

    // Oracle: every product is the Hash product of *some* snapshot in
    // the history (never a torn or stale-mixed matrix).
    let oracles: Vec<Csr<f64>> = versions
        .iter()
        .map(|v| multiply_f64(v, &b, Algorithm::Hash, OutputOrder::Sorted).unwrap())
        .collect();
    for (k, h) in handles.into_iter().enumerate() {
        let c = h.wait().expect("job result");
        assert!(
            oracles.iter().any(|want| bits_eq(&c, want)),
            "job {k} matches no version of the history"
        );
    }

    let m = engine.shutdown();
    assert_eq!(m.row_updates, (THREADS * STEPS) as u64);
    assert_eq!(m.rows_dirtied, (THREADS * STEPS) as u64);
    assert_eq!(m.completed, (THREADS * STEPS) as u64);
    assert_eq!(m.duplicate_completions, 0);
}

#[test]
fn patch_and_reregistration_are_equivalent() {
    let base = rmat(5, 4, 17);
    let mut patch = RowPatch::new();
    patch
        .insert(3, 9, 2.5)
        .delete(4, base.row_cols(4)[0])
        .insert(8, 0, -1.0);
    let (patched_local, _) = base.apply_patch(&patch).unwrap();

    let engine = ServeEngine::new(ServeConfig::default());
    engine.store().insert("p", base.clone());
    engine.store().insert("r", patched_local.clone());
    let receipt = engine.try_submit_row_update("p", &patch).unwrap();
    assert_eq!(receipt.rows_dirtied, 3);

    // The stored matrix after the streaming update is byte-identical
    // to registering the patched matrix wholesale...
    assert!(bits_eq(
        engine.store().get("p").unwrap().csr(),
        &patched_local
    ));

    // ...and products against either registration agree bitwise.
    let via_patch = engine
        .try_submit(ProductRequest::new("p", "p").algo(Algorithm::Hash))
        .unwrap()
        .wait()
        .unwrap();
    let via_rereg = engine
        .try_submit(ProductRequest::new("r", "r").algo(Algorithm::Hash))
        .unwrap()
        .wait()
        .unwrap();
    assert!(bits_eq(&via_patch, &via_rereg));
    engine.shutdown();
}

#[test]
fn expr_results_are_patched_in_place_and_counted() {
    use spgemm::expr::{ExprGraph, ExprSpec};

    let a = rmat(5, 4, 61);
    let b = rmat(5, 4, 62);
    let engine = ServeEngine::new(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    });
    engine.store().insert("a", a.clone());
    engine.store().insert("b", b.clone());

    let mut g = ExprGraph::new();
    let sa = g.input();
    let sb = g.input();
    let root = g.multiply(sa, sb);
    let spec = ExprSpec::new(g, root);

    // First evaluation computes and caches the product.
    let r1 = engine
        .try_submit_expr(ExprRequest::new(spec.clone(), ["a", "b"]).algo(Algorithm::Hash))
        .unwrap()
        .wait()
        .unwrap();
    assert!(bits_eq(
        &r1,
        &multiply_f64(&a, &b, Algorithm::Hash, OutputOrder::Sorted).unwrap()
    ));

    // Row-update A, then resubmit: the node fingerprint misses, but
    // the engine must recover the old cached product and patch it.
    let mut patch = RowPatch::new();
    patch.insert(6, 11, 3.75).insert(20, 2, -0.5);
    let receipt = engine.try_submit_row_update("a", &patch).unwrap();
    assert_eq!(receipt.rows_dirtied, 2);
    let a2 = engine.store().get("a").unwrap().csr().clone();

    let r2 = engine
        .try_submit_expr(ExprRequest::new(spec.clone(), ["a", "b"]).algo(Algorithm::Hash))
        .unwrap()
        .wait()
        .unwrap();
    assert!(
        bits_eq(
            &r2,
            &multiply_f64(&a2, &b, Algorithm::Hash, OutputOrder::Sorted).unwrap()
        ),
        "patched-in-place result must equal a from-scratch evaluation"
    );

    let m = engine.shutdown();
    assert_eq!(m.row_updates, 1);
    assert_eq!(m.rows_dirtied, 2);
    assert!(
        m.expr_results_patched >= 1,
        "the second evaluation must be served by patch-in-place: {m:?}"
    );
    assert_eq!(m.expr_jobs, 2);
}

#[test]
fn unknown_name_and_bad_patch_leave_the_store_untouched() {
    let engine = ServeEngine::new(ServeConfig::default());
    let mut p = RowPatch::new();
    p.insert(0, 0, 1.0);
    assert!(engine.try_submit_row_update("ghost", &p).is_err());

    engine.store().insert("m", Csr::<f64>::identity(4));
    let v0 = engine.store().get("m").unwrap().version();
    let mut bad = RowPatch::new();
    bad.insert(99, 0, 1.0); // row out of bounds
    assert!(engine.try_submit_row_update("m", &bad).is_err());
    assert_eq!(
        engine.store().get("m").unwrap().version(),
        v0,
        "a rejected patch must not register a new version"
    );
    let m = engine.shutdown();
    assert_eq!(m.row_updates, 0);
    assert_eq!(m.rows_dirtied, 0);
}
