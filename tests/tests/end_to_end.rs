//! End-to-end integration: generators → kernels → verification,
//! across crates exactly as the bench harness wires them.

use spgemm::{multiply_in, Algorithm, OutputOrder};
use spgemm_integration::arrow4;
use spgemm_par::Pool;
use spgemm_sparse::{approx_eq_f64, ops, stats, PlusTimes};

type P = PlusTimes<f64>;

fn all_concrete() -> [Algorithm; 8] {
    [
        Algorithm::Hash,
        Algorithm::HashVec,
        Algorithm::Heap,
        Algorithm::Spa,
        Algorithm::Merge,
        Algorithm::Inspector,
        Algorithm::KkHash,
        Algorithm::Ikj,
    ]
}

#[test]
fn fixture_squares_consistently() {
    let a = arrow4();
    let pool = Pool::new(2);
    let oracle = spgemm::algos::reference::multiply::<P>(&a, &a);
    for algo in all_concrete() {
        let c = multiply_in::<P>(&a, &a, algo, OutputOrder::Sorted, &pool).unwrap();
        assert!(approx_eq_f64(&oracle, &c, 1e-12), "{algo}");
    }
}

#[test]
fn rmat_pipeline_all_algorithms_all_threads() {
    for kind in [spgemm_gen::RmatKind::Er, spgemm_gen::RmatKind::G500] {
        let a = spgemm_gen::rmat::generate_kind(kind, 9, 8, &mut spgemm_gen::rng(11));
        let oracle = spgemm::algos::reference::multiply::<P>(&a, &a);
        for nt in [1usize, 2, 4] {
            let pool = Pool::new(nt);
            for algo in all_concrete() {
                let c = multiply_in::<P>(&a, &a, algo, OutputOrder::Sorted, &pool).unwrap();
                assert!(
                    approx_eq_f64(&oracle, &c, 1e-9),
                    "{algo} nt={nt} {kind:?} diverged"
                );
            }
        }
    }
}

#[test]
fn unsorted_protocol_matches_sorted_results() {
    // the §5.1 protocol: randomly permute columns, multiply unsorted,
    // then verify the result is the permuted version of the sorted one
    let a =
        spgemm_gen::rmat::generate_kind(spgemm_gen::RmatKind::G500, 8, 8, &mut spgemm_gen::rng(3));
    let perm = spgemm_gen::perm::random_col_permutation(a.ncols(), &mut spgemm_gen::rng(4));
    let pa = ops::permute_cols(&a, &perm).unwrap();
    let pool = Pool::new(2);
    // C' = A · (P A) where both operands consistent: permute rows of
    // the right operand by the same permutation to keep the product
    // related: (A P)(Pᵀ A P) ... simpler identity: (P-permuted A)
    // squared equals P applied to rows and columns appropriately only
    // for symmetric permutation — so here just verify unsorted kernels
    // agree with each other on the permuted operand.
    let baseline =
        multiply_in::<P>(&pa, &pa, Algorithm::Hash, OutputOrder::Unsorted, &pool).unwrap();
    for algo in [
        Algorithm::HashVec,
        Algorithm::Spa,
        Algorithm::KkHash,
        Algorithm::Inspector,
    ] {
        let c = multiply_in::<P>(&pa, &pa, algo, OutputOrder::Unsorted, &pool).unwrap();
        assert!(approx_eq_f64(&baseline, &c, 1e-9), "{algo}");
    }
}

#[test]
fn tall_skinny_pipeline() {
    let g =
        spgemm_gen::rmat::generate_kind(spgemm_gen::RmatKind::G500, 9, 16, &mut spgemm_gen::rng(5));
    let ts = spgemm_gen::tallskinny::tall_skinny(&g, 32, &mut spgemm_gen::rng(6)).unwrap();
    let pool = Pool::new(2);
    let oracle = spgemm::algos::reference::multiply::<P>(&g, &ts);
    for algo in all_concrete() {
        let c = multiply_in::<P>(&g, &ts, algo, OutputOrder::Sorted, &pool).unwrap();
        assert!(approx_eq_f64(&oracle, &c, 1e-9), "{algo}");
        assert_eq!(c.ncols(), 32);
    }
}

#[test]
fn suite_standins_multiply_cleanly() {
    // every Table 2 stand-in class squares without error and all
    // kernels agree (tiny divisor keeps this fast)
    let suite = spgemm_gen::suite::standin_suite(100_000, 9);
    let pool = Pool::new(2);
    for (name, m) in suite.iter().take(8) {
        let baseline = multiply_in::<P>(m, m, Algorithm::Hash, OutputOrder::Sorted, &pool).unwrap();
        for algo in [Algorithm::Heap, Algorithm::Merge, Algorithm::KkHash] {
            let c = multiply_in::<P>(m, m, algo, OutputOrder::Sorted, &pool).unwrap();
            assert!(approx_eq_f64(&baseline, &c, 1e-9), "{algo} on {name}");
        }
    }
}

#[test]
fn flop_accounting_consistent_across_crates() {
    let a =
        spgemm_gen::rmat::generate_kind(spgemm_gen::RmatKind::Er, 9, 8, &mut spgemm_gen::rng(7));
    let pool = Pool::new(2);
    let plan = spgemm::exec_plan(&a, &a, &pool);
    assert_eq!(plan.total_flop, stats::flop(&a, &a));
    assert_eq!(plan.row_flops, stats::row_flops(&a, &a));
}

#[test]
fn symbolic_nnz_matches_numeric_everywhere() {
    for kind in [spgemm_gen::RmatKind::Er, spgemm_gen::RmatKind::G500] {
        let a = spgemm_gen::rmat::generate_kind(kind, 8, 6, &mut spgemm_gen::rng(13));
        for nt in [1usize, 2, 4] {
            let pool = Pool::new(nt);
            let symbolic = spgemm::product_nnz(&a, &a, &pool);
            let numeric = multiply_in::<P>(&a, &a, Algorithm::Hash, OutputOrder::Unsorted, &pool)
                .unwrap()
                .nnz();
            assert_eq!(symbolic, numeric, "{kind:?} nt={nt}");
        }
    }
}

#[test]
fn masked_multiply_integrates_with_generators() {
    let a =
        spgemm_gen::rmat::generate_kind(spgemm_gen::RmatKind::G500, 8, 8, &mut spgemm_gen::rng(21));
    let mask = a.map(|_| 1u8);
    let pool = Pool::new(2);
    let masked =
        spgemm::multiply_masked::<P, u8>(&a, &a, &mask, OutputOrder::Sorted, &pool).unwrap();
    let full = multiply_in::<P>(&a, &a, Algorithm::Hash, OutputOrder::Sorted, &pool).unwrap();
    let expect = ops::hadamard(&full, &a.map(|_| 1.0f64)).unwrap();
    assert!(approx_eq_f64(&expect, &masked, 1e-9));
}

#[test]
fn matrix_market_round_trip_through_kernels() {
    let a = arrow4();
    let dir = std::env::temp_dir().join(format!("spgemm-int-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("arrow4.mtx");
    spgemm_sparse::io::write_matrix_market(&path, &a).unwrap();
    let back = spgemm_sparse::io::read_matrix_market(&path).unwrap();
    let pool = Pool::new(1);
    let c1 = multiply_in::<P>(&a, &a, Algorithm::Hash, OutputOrder::Sorted, &pool).unwrap();
    let c2 = multiply_in::<P>(&back, &back, Algorithm::Hash, OutputOrder::Sorted, &pool).unwrap();
    assert!(approx_eq_f64(&c1, &c2, 0.0));
    std::fs::remove_dir_all(&dir).ok();
}
