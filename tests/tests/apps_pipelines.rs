//! Integration tests of the application pipelines on generated data —
//! the workloads from the paper's §1/§5.5/§5.6 running on the real
//! kernel stack.

use spgemm::Algorithm;
use spgemm_apps::{amg, bfs, mcl, triangles};
use spgemm_gen::poisson::poisson2d;
use spgemm_par::Pool;

#[test]
fn bfs_agrees_across_kernels_and_threads() {
    let a =
        spgemm_gen::rmat::generate_kind(spgemm_gen::RmatKind::G500, 8, 8, &mut spgemm_gen::rng(1));
    let g = a.map(|_| true);
    let sources = [0usize, 17, 99];
    let seq: Vec<Vec<u32>> = sources
        .iter()
        .map(|&s| bfs::sequential_bfs(&g, s))
        .collect();
    for nt in [1usize, 3] {
        let pool = Pool::new(nt);
        for algo in [Algorithm::Hash, Algorithm::Spa, Algorithm::KkHash] {
            let l = bfs::multi_source_bfs(&g, &sources, algo, &pool).unwrap();
            for (si, lv) in seq.iter().enumerate() {
                for (v, &lvl) in lv.iter().enumerate() {
                    assert_eq!(l.level(v, si), lvl, "{algo} nt={nt} v={v}");
                }
            }
        }
    }
}

#[test]
fn triangle_counts_invariant_to_relabelling() {
    // counting must be invariant under symmetric permutation
    let a = spgemm_gen::suite::uniform_matrix(60, 500, &mut spgemm_gen::rng(2));
    let pool = Pool::new(2);
    let base = triangles::count_triangles(&a, Algorithm::Hash, &pool).unwrap();
    let perm = spgemm_gen::perm::random_permutation(60, &mut spgemm_gen::rng(3));
    let pa = spgemm_sparse::ops::permute_symmetric(&a, &perm).unwrap();
    let relabelled = triangles::count_triangles(&pa, Algorithm::Hash, &pool).unwrap();
    assert_eq!(base, relabelled);
}

#[test]
fn mcl_separates_rmat_components() {
    // two disjoint planted cliques must land in different clusters
    let mut trips = Vec::new();
    for block in 0..2usize {
        let base = block * 8;
        for u in 0..8usize {
            for v in 0..8usize {
                if u != v {
                    trips.push((base + u, (base + v) as u32, 1.0));
                }
            }
        }
    }
    let g = spgemm_sparse::Csr::from_triplets(16, 16, &trips).unwrap();
    let pool = Pool::new(2);
    let labels = mcl::cluster(&g, &mcl::MclParams::default(), &pool).unwrap();
    for u in 0..8 {
        assert_eq!(labels[u], labels[0]);
        assert_eq!(labels[8 + u], labels[8]);
    }
    assert_ne!(labels[0], labels[8]);
}

#[test]
fn amg_hierarchy_consistent_across_kernels() {
    let a = poisson2d(10);
    let pool = Pool::new(2);
    let h_hash = amg::setup_hierarchy(a.clone(), 8, 8, Algorithm::Hash, &pool).unwrap();
    let h_heap = amg::setup_hierarchy(a, 8, 8, Algorithm::Heap, &pool).unwrap();
    assert_eq!(h_hash.len(), h_heap.len());
    for (x, y) in h_hash.iter().zip(&h_heap) {
        assert!(spgemm_sparse::approx_eq_f64(x, &y.to_sorted(), 1e-9));
    }
}

#[test]
fn bfs_on_tall_skinny_matches_recipe_pick() {
    // the recipe's tall-skinny pick must produce identical BFS levels
    let a =
        spgemm_gen::rmat::generate_kind(spgemm_gen::RmatKind::G500, 8, 16, &mut spgemm_gen::rng(4));
    let g = a.map(|_| true);
    let pool = Pool::new(2);
    let auto = bfs::multi_source_bfs(&g, &[1, 2], Algorithm::Auto, &pool).unwrap();
    let hash = bfs::multi_source_bfs(&g, &[1, 2], Algorithm::Hash, &pool).unwrap();
    assert_eq!(auto, hash);
}
