//! The RowClass bind publishes its bucket occupancy and
//! compressed-index selection through the obs registry, so both are
//! visible on the `/metrics` scrape page. This file enables the
//! process-global obs switch, which is why it lives alone in its own
//! test binary.

use spgemm::{Algorithm, OutputOrder, SpgemmPlan};
use spgemm_par::Pool;
use spgemm_sparse::{Csr, PlusTimes};

type Plan = SpgemmPlan<PlusTimes<f64>>;

/// A square matrix whose self-product populates every row class:
/// row groups of 1/4/10/80 entries over 512 columns give flop counts
/// of 4–320 against `dense_cutoff(512) = 128`.
fn all_classes(n: usize) -> Csr<f64> {
    let mut tri = Vec::new();
    for i in 0..n {
        let nnz = [1usize, 4, 10, 80][i % 4];
        for t in 0..nnz {
            let j = ((i / 4 + t) % (n / 4)) * 4 + 1;
            tri.push((i, j as u32, 1.0 + (i + t) as f64));
        }
    }
    Csr::from_triplets(n, n, &tri).expect("valid triplets")
}

#[test]
fn rowclass_plan_counters_reach_the_scrape_page() {
    spgemm_obs::enable();
    let a = all_classes(512);
    let pool = Pool::new(2);
    let _plan = Plan::new_in(&a, &a, Algorithm::RowClass, OutputOrder::Sorted, &pool)
        .expect("RowClass plan");

    let page = spgemm_obs::openmetrics::render();
    // `plan.rowclass.tiny` renders as `spgemm_plan_rowclass_tiny`
    // (sanitize + NAME_PREFIX); 512 columns < 2^16, so the bind also
    // picks the compressed u16 index copies for both operands.
    for name in [
        "spgemm_plan_rowclass_tiny",
        "spgemm_plan_rowclass_short",
        "spgemm_plan_rowclass_medium",
        "spgemm_plan_rowclass_dense",
        "spgemm_plan_rowclass_cols16",
    ] {
        assert!(page.contains(name), "{name} missing from scrape:\n{page}");
    }
    assert!(page.ends_with("# EOF\n"), "scrape page must be terminated");
}
