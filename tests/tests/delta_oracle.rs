//! The differential oracle for incremental SpGEMM: random edit
//! streams drive `Csr::apply_patch` → `SpgemmPlan::rebind_rows` →
//! `SpgemmPlan::execute_rows`, and at **every** step the incrementally
//! maintained product must be *byte-for-byte* identical (row pointers,
//! column indices, and value bits) to a plan built and executed from
//! scratch on the patched operands. No tolerance, no sorting slack —
//! if any kernel's incremental path ever diverges from its full path
//! by a single bit, these tests fail.

use proptest::prelude::*;
use spgemm::{Algorithm, DirtyRows, OutputOrder, RowPatch, SpgemmPlan};
use spgemm_par::Pool;
use spgemm_sparse::{Csr, PlusTimes};

type P = PlusTimes<f64>;
type Plan = SpgemmPlan<P>;

/// Every kernel the workspace ships (Auto excluded: it resolves per
/// structure and is covered through the kernels it resolves to).
const ALL: &[Algorithm] = &[
    Algorithm::Hash,
    Algorithm::HashVec,
    Algorithm::Heap,
    Algorithm::Spa,
    Algorithm::Merge,
    Algorithm::Inspector,
    Algorithm::KkHash,
    Algorithm::Ikj,
    Algorithm::RowClass,
    Algorithm::Reference,
];

/// Kernels whose input contract admits unsorted operands.
const UNSORTED_INPUT_OK: &[Algorithm] = &[
    Algorithm::Hash,
    Algorithm::HashVec,
    Algorithm::Spa,
    Algorithm::Inspector,
    Algorithm::KkHash,
    Algorithm::Ikj,
    Algorithm::RowClass,
    Algorithm::Reference,
];

/// Bitwise equality: the contract under test. `Csr: PartialEq` would
/// already distinguish 0.0 from -0.0 via `f64::eq`, but going through
/// `to_bits` makes the intent explicit and catches NaN payloads too.
fn bits_eq(a: &Csr<f64>, b: &Csr<f64>) -> bool {
    a.nrows() == b.nrows()
        && a.ncols() == b.ncols()
        && a.is_sorted() == b.is_sorted()
        && a.rpts() == b.rpts()
        && a.cols() == b.cols()
        && a.vals().len() == b.vals().len()
        && a.vals()
            .iter()
            .zip(b.vals())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

fn assert_bits_eq(got: &Csr<f64>, want: &Csr<f64>, ctx: &str) {
    assert!(
        bits_eq(got, want),
        "{ctx}: incremental product diverged from the fresh-plan oracle \
         (got {}x{} nnz={}, want {}x{} nnz={})",
        got.nrows(),
        got.ncols(),
        got.nnz(),
        want.nrows(),
        want.ncols(),
        want.nnz()
    );
}

/// A base matrix with deliberately unsorted rows: rotate every
/// multi-entry row by one so the stored order is wrong but the set of
/// entries is unchanged.
fn scramble(m: &Csr<f64>) -> Csr<f64> {
    let mut rpts = Vec::with_capacity(m.nrows() + 1);
    rpts.push(0usize);
    let mut cols = Vec::with_capacity(m.nnz());
    let mut vals = Vec::with_capacity(m.nnz());
    for i in 0..m.nrows() {
        let (rc, rv) = (m.row_cols(i), m.row_vals(i));
        if rc.len() > 1 {
            cols.extend_from_slice(&rc[1..]);
            cols.push(rc[0]);
            vals.extend_from_slice(&rv[1..]);
            vals.push(rv[0]);
        } else {
            cols.extend_from_slice(rc);
            vals.extend_from_slice(rv);
        }
        rpts.push(cols.len());
    }
    Csr::from_parts_unchecked(m.nrows(), m.ncols(), rpts, cols, vals, false)
}

fn rmat(scale: u32, ef: usize, seed: u64) -> Csr<f64> {
    spgemm_gen::rmat::generate_kind(
        spgemm_gen::RmatKind::G500,
        scale,
        ef,
        &mut spgemm_gen::rng(seed),
    )
}

/// One scripted edit: which operand, which row/col, and what to do.
#[derive(Clone, Debug)]
struct Edit {
    on_a: bool,
    row: usize,
    col: usize,
    kind: u8, // 0 = insert/upsert, 1 = delete, 2 = value-only upsert
    val: f64,
}

fn edit_strategy(n: usize) -> impl Strategy<Value = Edit> {
    (prop::bool::ANY, 0..n, 0..n, 0u8..3, -4.0f64..4.0).prop_map(|(on_a, row, col, kind, val)| {
        Edit {
            on_a,
            row,
            col,
            kind,
            val,
        }
    })
}

/// Drive one edit stream through one (algorithm, order, sorted-base)
/// configuration, asserting oracle equality after every step.
fn run_stream(algo: Algorithm, order: OutputOrder, sorted_base: bool, edits: &[Edit], seed: u64) {
    let pool = Pool::new(2);
    let base = rmat(5, 4, seed);
    let base = if sorted_base { base } else { scramble(&base) };
    let mut a = base.clone();
    let mut b = {
        // A distinct right operand so A- and B-side edits exercise
        // different dependency paths (direct rows vs consumer rows).
        let other = rmat(5, 4, seed.wrapping_add(101));
        if sorted_base {
            other
        } else {
            scramble(&other)
        }
    };
    let mut plan = Plan::new_in(&a, &b, algo, order, &pool).expect("plan");
    let mut c = plan.execute_in(&a, &b, &pool).expect("execute");
    for (step, edit) in edits.iter().enumerate() {
        let mut patch = RowPatch::new();
        match edit.kind {
            0 | 2 => patch.insert(edit.row, edit.col as u32, edit.val),
            _ => patch.delete(edit.row, edit.col as u32),
        };
        let (dirty_a, dirty_b);
        if edit.on_a {
            let (next, dirty) = a.apply_patch(&patch).expect("patch a");
            a = next;
            dirty_a = dirty;
            dirty_b = DirtyRows::new(b.nrows());
        } else {
            let (next, dirty) = b.apply_patch(&patch).expect("patch b");
            b = next;
            dirty_b = dirty;
            dirty_a = DirtyRows::new(a.nrows());
        }
        let out = plan
            .rebind_rows_in(&a, &b, &dirty_a, &dirty_b, &pool)
            .expect("rebind_rows");
        plan.execute_rows_in(&a, &b, &out, &mut c, &pool)
            .expect("execute_rows");
        let fresh = Plan::new_in(&a, &b, algo, order, &pool)
            .expect("fresh plan")
            .execute_in(&a, &b, &pool)
            .expect("fresh execute");
        assert_bits_eq(
            &c,
            &fresh,
            &format!("step {step} ({algo:?}/{order:?}, sorted_base={sorted_base})"),
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The headline oracle: random interleaved A/B edit streams across
    /// every kernel, sorted output, sorted base.
    #[test]
    fn edit_streams_match_fresh_plans_sorted(
        seed in 0u64..500,
        edits in prop::collection::vec(edit_strategy(32), 1..10),
    ) {
        for &algo in ALL {
            run_stream(algo, OutputOrder::Sorted, true, &edits, seed);
        }
    }

    /// Unsorted output contract over a sorted base.
    #[test]
    fn edit_streams_match_fresh_plans_unsorted_output(
        seed in 0u64..500,
        edits in prop::collection::vec(edit_strategy(32), 1..8),
    ) {
        for &algo in ALL {
            run_stream(algo, OutputOrder::Unsorted, true, &edits, seed);
        }
    }

    /// Unsorted *operands* (storage order scrambled) through every
    /// kernel that accepts them, both output contracts.
    #[test]
    fn edit_streams_match_fresh_plans_unsorted_base(
        seed in 0u64..500,
        edits in prop::collection::vec(edit_strategy(32), 1..8),
    ) {
        for &algo in UNSORTED_INPUT_OK {
            run_stream(algo, OutputOrder::Unsorted, false, &edits, seed);
            run_stream(algo, OutputOrder::Sorted, false, &edits, seed);
        }
    }
}

/// Adversarial: a patch that empties rows entirely (and later refills
/// one) must splice zero-length rows without disturbing neighbours.
#[test]
fn emptied_and_refilled_rows_stay_byte_exact() {
    let pool = Pool::new(2);
    for &algo in ALL {
        let a = rmat(5, 4, 7);
        let b = rmat(5, 4, 8);
        let mut plan = Plan::new_in(&a, &b, algo, OutputOrder::Sorted, &pool).unwrap();
        let mut c = plan.execute_in(&a, &b, &pool).unwrap();
        // Empty row 3 of A completely.
        let mut wipe = RowPatch::new();
        for &col in a.row_cols(3) {
            wipe.delete(3, col);
        }
        let (a2, dirty) = a.apply_patch(&wipe).unwrap();
        assert_eq!(a2.row_nnz(3), 0);
        let none = DirtyRows::new(b.nrows());
        let out = plan.rebind_rows_in(&a2, &b, &dirty, &none, &pool).unwrap();
        plan.execute_rows_in(&a2, &b, &out, &mut c, &pool).unwrap();
        let fresh = Plan::new_in(&a2, &b, algo, OutputOrder::Sorted, &pool)
            .unwrap()
            .execute_in(&a2, &b, &pool)
            .unwrap();
        assert_bits_eq(&c, &fresh, &format!("emptied row ({algo:?})"));
        // Refill it with a different pattern.
        let mut refill = RowPatch::new();
        refill
            .insert(3, 0, 1.5)
            .insert(3, 17, -2.0)
            .insert(3, 30, 0.25);
        let (a3, dirty) = a2.apply_patch(&refill).unwrap();
        let out = plan.rebind_rows_in(&a3, &b, &dirty, &none, &pool).unwrap();
        plan.execute_rows_in(&a3, &b, &out, &mut c, &pool).unwrap();
        let fresh = Plan::new_in(&a3, &b, algo, OutputOrder::Sorted, &pool)
            .unwrap()
            .execute_in(&a3, &b, &pool)
            .unwrap();
        assert_bits_eq(&c, &fresh, &format!("refilled row ({algo:?})"));
    }
}

/// Adversarial: one row grows from a couple of entries to a dense-ish
/// stripe, pushing its flop count far past what the pooled accumulator
/// was originally sized for — `ensure` must regrow, never truncate.
#[test]
fn row_growing_past_accumulator_class_stays_byte_exact() {
    let pool = Pool::new(1);
    for &algo in ALL {
        let n = 64;
        let a = Csr::<f64>::identity(n);
        let b = rmat(6, 6, 21);
        let mut plan = Plan::new_in(&a, &b, algo, OutputOrder::Sorted, &pool).unwrap();
        let mut c = plan.execute_in(&a, &b, &pool).unwrap();
        // Row 5 of A grows from 1 entry (identity) to most of the row.
        let mut grow = RowPatch::new();
        for j in (0..n).step_by(2) {
            grow.insert(5, j as u32, 0.5 + j as f64);
        }
        let (a2, dirty) = a.apply_patch(&grow).unwrap();
        let none = DirtyRows::new(b.nrows());
        let out = plan.rebind_rows_in(&a2, &b, &dirty, &none, &pool).unwrap();
        assert!(out.contains(5));
        plan.execute_rows_in(&a2, &b, &out, &mut c, &pool).unwrap();
        let fresh = Plan::new_in(&a2, &b, algo, OutputOrder::Sorted, &pool)
            .unwrap()
            .execute_in(&a2, &b, &pool)
            .unwrap();
        assert_bits_eq(&c, &fresh, &format!("grown row ({algo:?})"));
    }
}

/// Adversarial, RowClass-specific: one row ping-pongs across the
/// tiny → dense class boundary (flop count from ~1 to far past
/// `kgen::dense_cutoff` and back) under `rebind_rows`. The per-row
/// recompute path re-derives the row's class from its *current* flop
/// count on every call, and the rebuilt bucket spec must agree — the
/// incremental product stays byte-identical to a fresh plan at every
/// step. Hash rides along as the control kernel.
#[test]
fn row_crossing_class_boundaries_stays_byte_exact() {
    let pool = Pool::new(1);
    for algo in [Algorithm::RowClass, Algorithm::Hash] {
        let n = 64; // dense_cutoff(64) = 33 flops
        let a = Csr::<f64>::identity(n);
        let b = rmat(6, 6, 21);
        let mut plan = Plan::new_in(&a, &b, algo, OutputOrder::Sorted, &pool).unwrap();
        let mut c = plan.execute_in(&a, &b, &pool).unwrap();
        let none = DirtyRows::new(b.nrows());

        // tiny → dense: row 5 grows from 1 entry to half the row, so
        // its flop count jumps from nnz(B row 5) to several hundred.
        let mut grow = RowPatch::new();
        for j in (0..n).step_by(2) {
            grow.insert(5, j as u32, 0.5 + j as f64);
        }
        let (a2, dirty) = a.apply_patch(&grow).unwrap();
        let out = plan.rebind_rows_in(&a2, &b, &dirty, &none, &pool).unwrap();
        assert!(out.contains(5));
        plan.execute_rows_in(&a2, &b, &out, &mut c, &pool).unwrap();
        let fresh = Plan::new_in(&a2, &b, algo, OutputOrder::Sorted, &pool)
            .unwrap()
            .execute_in(&a2, &b, &pool)
            .unwrap();
        assert_bits_eq(&c, &fresh, &format!("tiny->dense ({algo:?})"));

        // dense → tiny: delete everything but one entry again.
        let mut shrink = RowPatch::new();
        for &col in a2.row_cols(5) {
            if col != 5 {
                shrink.delete(5, col);
            }
        }
        let (a3, dirty) = a2.apply_patch(&shrink).unwrap();
        let out = plan.rebind_rows_in(&a3, &b, &dirty, &none, &pool).unwrap();
        plan.execute_rows_in(&a3, &b, &out, &mut c, &pool).unwrap();
        let fresh = Plan::new_in(&a3, &b, algo, OutputOrder::Sorted, &pool)
            .unwrap()
            .execute_in(&a3, &b, &pool)
            .unwrap();
        assert_bits_eq(&c, &fresh, &format!("dense->tiny ({algo:?})"));
    }
}

/// Adversarial: a patch touching every row (dirty = all) must still be
/// byte-exact — the degenerate case where "incremental" recomputes
/// everything.
#[test]
fn dirty_all_rows_stays_byte_exact() {
    let pool = Pool::new(2);
    for &algo in ALL {
        let a = rmat(5, 4, 33);
        let b = rmat(5, 4, 34);
        let mut plan = Plan::new_in(&a, &b, algo, OutputOrder::Sorted, &pool).unwrap();
        let mut c = plan.execute_in(&a, &b, &pool).unwrap();
        let mut patch = RowPatch::new();
        for i in 0..a.nrows() {
            patch.insert(i, (i % a.ncols()) as u32, i as f64 + 0.5);
        }
        let (a2, dirty) = a.apply_patch(&patch).unwrap();
        assert_eq!(dirty.count(), a.nrows(), "every row is dirty");
        let none = DirtyRows::new(b.nrows());
        let out = plan.rebind_rows_in(&a2, &b, &dirty, &none, &pool).unwrap();
        plan.execute_rows_in(&a2, &b, &out, &mut c, &pool).unwrap();
        let fresh = Plan::new_in(&a2, &b, algo, OutputOrder::Sorted, &pool)
            .unwrap()
            .execute_in(&a2, &b, &pool)
            .unwrap();
        assert_bits_eq(&c, &fresh, &format!("dirty=all ({algo:?})"));
    }
}

/// B-side edits must invalidate exactly the consumer rows: a row of B
/// nobody references leaves the dirty set empty (and the product
/// unchanged).
#[test]
fn unconsumed_b_row_edit_recomputes_nothing() {
    let pool = Pool::new(1);
    let n = 16;
    // A references only columns 0..8, so editing B rows 8.. is free.
    let a = Csr::from_triplets(
        n,
        n,
        &(0..n)
            .map(|i| (i, (i % 8) as u32, 1.0 + i as f64))
            .collect::<Vec<_>>(),
    )
    .unwrap();
    let b = rmat(4, 4, 55);
    let mut plan = Plan::new_in(&a, &b, Algorithm::Hash, OutputOrder::Sorted, &pool).unwrap();
    let mut c = plan.execute_in(&a, &b, &pool).unwrap();
    let before = c.clone();
    let mut patch = RowPatch::new();
    patch.insert(12, 3, 9.0);
    let (b2, dirty_b) = b.apply_patch(&patch).unwrap();
    let none = DirtyRows::new(a.nrows());
    let out = plan
        .rebind_rows_in(&a, &b2, &none, &dirty_b, &pool)
        .unwrap();
    assert!(out.is_empty(), "no output row consumes B row 12");
    plan.execute_rows_in(&a, &b2, &out, &mut c, &pool).unwrap();
    assert_bits_eq(&c, &before, "unconsumed edit");
}
