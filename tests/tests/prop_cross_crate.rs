//! Cross-crate property tests: generator-produced inputs through the
//! full kernel roster, checking semantic invariants rather than
//! oracle equality (covered in the core crate's own proptests).

use proptest::prelude::*;
use spgemm::{multiply_in, Algorithm, OutputOrder};
use spgemm_par::Pool;
use spgemm_sparse::{stats, PlusTimes};

type P = PlusTimes<f64>;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn nnz_bounded_by_flop_and_dims(
        scale in 5u32..8,
        ef in 1usize..8,
        seed in 0u64..1000,
        skew in prop::bool::ANY,
    ) {
        let kind = if skew { spgemm_gen::RmatKind::G500 } else { spgemm_gen::RmatKind::Er };
        let a = spgemm_gen::rmat::generate_kind(kind, scale, ef, &mut spgemm_gen::rng(seed));
        let flop = stats::flop(&a, &a);
        let pool = Pool::new(2);
        let c = multiply_in::<P>(&a, &a, Algorithm::Hash, OutputOrder::Unsorted, &pool).unwrap();
        // structural upper bounds from first principles
        prop_assert!(c.nnz() as u64 <= flop, "nnz(C) cannot exceed flop");
        prop_assert!(c.nnz() <= a.nrows() * a.ncols());
        for i in 0..c.nrows() {
            prop_assert!(c.row_nnz(i) <= a.ncols());
            prop_assert!(c.row_nnz(i) as u64 <= stats::row_flops(&a, &a)[i]);
        }
    }

    #[test]
    fn sorted_and_unsorted_outputs_have_identical_structure(
        scale in 5u32..8,
        seed in 0u64..1000,
    ) {
        let a = spgemm_gen::rmat::generate_kind(spgemm_gen::RmatKind::G500, scale, 4, &mut spgemm_gen::rng(seed));
        let pool = Pool::new(2);
        let s = multiply_in::<P>(&a, &a, Algorithm::Hash, OutputOrder::Sorted, &pool).unwrap();
        let u = multiply_in::<P>(&a, &a, Algorithm::Hash, OutputOrder::Unsorted, &pool).unwrap();
        prop_assert_eq!(s.nnz(), u.nnz());
        prop_assert_eq!(s.rpts(), u.rpts());
        prop_assert!(spgemm_sparse::approx_eq_f64(&s, &u, 1e-12));
    }

    #[test]
    fn thread_count_never_changes_results(
        scale in 5u32..8,
        seed in 0u64..500,
    ) {
        let a = spgemm_gen::rmat::generate_kind(spgemm_gen::RmatKind::Er, scale, 6, &mut spgemm_gen::rng(seed));
        let c1 = multiply_in::<P>(&a, &a, Algorithm::Heap, OutputOrder::Sorted, &Pool::new(1)).unwrap();
        let c4 = multiply_in::<P>(&a, &a, Algorithm::Heap, OutputOrder::Sorted, &Pool::new(4)).unwrap();
        // heap merges in deterministic column order, so even float
        // results are bitwise equal across thread counts
        prop_assert_eq!(c1, c4);
    }

    #[test]
    fn associativity_with_identity_chain(
        scale in 5u32..7,
        seed in 0u64..500,
    ) {
        let a = spgemm_gen::rmat::generate_kind(spgemm_gen::RmatKind::Er, scale, 4, &mut spgemm_gen::rng(seed));
        let i = spgemm_sparse::Csr::<f64>::identity(a.nrows());
        let pool = Pool::new(2);
        let ai = multiply_in::<P>(&a, &i, Algorithm::Hash, OutputOrder::Sorted, &pool).unwrap();
        let ia = multiply_in::<P>(&i, &a, Algorithm::Hash, OutputOrder::Sorted, &pool).unwrap();
        prop_assert!(spgemm_sparse::approx_eq_f64(&a, &ai, 0.0));
        prop_assert!(spgemm_sparse::approx_eq_f64(&a, &ia, 0.0));
    }
}
