//! Helper utilities shared by the cross-crate integration tests.
//!
//! The actual tests live in `tests/tests/*.rs`; this library only hosts
//! small fixtures used by several of them.

use spgemm_sparse::Csr;

/// Deterministic tiny matrix used as a smoke fixture across integration
/// tests: the 4x4 arrow matrix
/// ```text
/// [ 1 2 0 3 ]
/// [ 4 5 0 0 ]
/// [ 0 0 6 0 ]
/// [ 7 0 0 8 ]
/// ```
pub fn arrow4() -> Csr<f64> {
    Csr::from_triplets(
        4,
        4,
        &[
            (0, 0, 1.0),
            (0, 1, 2.0),
            (0, 3, 3.0),
            (1, 0, 4.0),
            (1, 1, 5.0),
            (2, 2, 6.0),
            (3, 0, 7.0),
            (3, 3, 8.0),
        ],
    )
    .expect("valid triplets")
}
